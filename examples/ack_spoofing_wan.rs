//! ACK spoofing against downloads from remote Internet servers.
//!
//! Both clients download from servers behind a wired backbone (the
//! paper's Fig. 15 topology). The greedy client spoofs MAC ACKs for its
//! neighbor's frames: lost frames are no longer repaired by cheap MAC
//! retransmissions but by expensive end-to-end TCP recovery across the
//! WAN — the longer the wire, the worse the damage. GRC's RSSI vetting
//! then recovers fairness. Run with:
//!
//! ```sh
//! cargo run --release --example ack_spoofing_wan
//! ```

use greedy80211_repro::{GreedyConfig, Run, Scenario};
use sim::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Two TCP downloads from remote servers (BER 2e-5 on the WLAN);\n\
         client 1 spoofs MAC ACKs for client 0.\n"
    );
    println!(
        "wire latency   victim (no GR)  greedy (no GR)   victim (GR)   greedy (GR)   victim (GRC)"
    );

    for wire_ms in [2u64, 50, 100, 200, 400] {
        let mut s = Scenario {
            byte_error_rate: 2e-5,
            wire_delay: Some(SimDuration::from_millis(wire_ms)),
            duration: SimDuration::from_secs(20),
            ..Scenario::default()
        };
        let base = Run::plan(&s).execute()?;
        let victim = base.receivers[0];
        s.greedy = vec![(1, GreedyConfig::ack_spoofing(vec![victim], 1.0))];
        let attacked = Run::plan(&s).execute()?;
        s.grc = Some(true);
        let guarded = Run::plan(&s).execute()?;
        println!(
            "   {wire_ms:>4} ms      {:>7.3}        {:>7.3}        {:>7.3}       {:>7.3}       {:>7.3}",
            base.goodput_mbps(0),
            base.goodput_mbps(1),
            attacked.goodput_mbps(0),
            attacked.goodput_mbps(1),
            guarded.goodput_mbps(0),
        );
    }

    println!(
        "\nEnd-to-end recovery across the WAN is what makes spoofing sting\n\
         (paper Fig. 15); GRC ignores RSSI-anomalous ACKs so the MAC\n\
         retransmits locally again (paper Fig. 24)."
    );
    Ok(())
}
