//! A café hotspot with eight TCP downloads and one greedy customer.
//!
//! The scenario the paper's introduction motivates: an AP-backed hotspot
//! where most traffic flows *to* clients, and a single misbehaving
//! receiver can tax everyone. Eight sender→receiver TCP pairs share the
//! channel; receiver 7 sweeps its CTS-NAV inflation from 0 to 31 ms
//! (paper Fig. 6 / Fig. 9 territory). Run with:
//!
//! ```sh
//! cargo run --release --example hotspot_cafe
//! ```

use greedy80211_repro::{GreedyConfig, NavInflationConfig, Run, Scenario};
use sim::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const PAIRS: usize = 8;
    const GREEDY: usize = 7;
    println!("8 TCP flows on 802.11b; receiver {GREEDY} inflates CTS NAV.\n");
    println!("inflation   greedy goodput   avg honest goodput   worst honest");

    for inflate_ms in [0u32, 1, 2, 5, 10, 20, 31] {
        let mut s = Scenario {
            pairs: PAIRS,
            duration: SimDuration::from_secs(10),
            ..Scenario::default()
        };
        if inflate_ms > 0 {
            s.greedy = vec![(
                GREEDY,
                GreedyConfig::nav_inflation(NavInflationConfig::cts_only(inflate_ms * 1_000, 1.0)),
            )];
        }
        let out = Run::plan(&s).execute()?;
        let greedy = out.goodput_mbps(GREEDY);
        let honest: Vec<f64> = (0..PAIRS)
            .filter(|&i| i != GREEDY)
            .map(|i| out.goodput_mbps(i))
            .collect();
        let avg = honest.iter().sum::<f64>() / honest.len() as f64;
        let worst = honest.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "  +{inflate_ms:>2} ms     {greedy:>7.3} Mb/s        {avg:>7.3} Mb/s     {worst:>7.3} Mb/s"
        );
    }

    println!(
        "\nWith enough inflation one customer monopolizes the hotspot\n\
         (paper Fig. 6: ~10 ms dominates an 8-flow cell)."
    );
    Ok(())
}
