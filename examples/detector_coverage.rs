//! Who catches whom: DOMINO (sender-side baseline) vs GRC.
//!
//! Runs four hotspots — honest, backoff-cheating *sender*, NAV-inflating
//! *receiver*, ACK-spoofing *receiver* — with both detectors armed, and
//! prints the coverage matrix plus the airtime shares the frame trace
//! reveals. This is the paper's motivation in one run: sender-side
//! monitors cannot see receiver misbehavior.
//!
//! ```sh
//! cargo run --release --example detector_coverage
//! ```

use greedy80211_repro::{
    DominoDetector, GrcObserver, GreedyConfig, GreedySenderPolicy, NavInflationConfig,
};
use net::NetworkBuilder;
use phy::{ErrorModel, ErrorUnit, PhyParams, Position};
use sim::SimDuration;

#[derive(Clone, Copy, PartialEq)]
enum Attack {
    None,
    GreedySender,
    NavInflation,
    AckSpoof,
}

fn run(attack: Attack) -> (f64, f64, usize, u64, u64) {
    let params = PhyParams::dot11b();
    let mut b = NetworkBuilder::new(params).seed(7);
    if attack == Attack::AckSpoof {
        b = b.default_error(ErrorModel::new(ErrorUnit::Byte, 2e-4).expect("rate"));
    }
    let mut handles = Vec::new();
    let mut honest = |b: &mut NetworkBuilder, pos| {
        let (obs, h) = GrcObserver::new(params, true);
        let id = b.add_node_with_observer(pos, obs);
        handles.push(h);
        id
    };
    let s0 = honest(&mut b, Position::new(0.0, 0.0));
    let r0 = honest(&mut b, Position::new(20.0, 0.0));
    let s1 = if attack == Attack::GreedySender {
        b.add_node_with_policy(Position::new(0.0, 20.0), GreedySenderPolicy::new(0.1))
    } else {
        honest(&mut b, Position::new(0.0, 20.0))
    };
    let r1 = match attack {
        Attack::NavInflation => b.add_node_with_policy(
            Position::new(45.0, 20.0),
            GreedyConfig::nav_inflation(NavInflationConfig::cts_only(10_000, 1.0)).into_policy(),
        ),
        Attack::AckSpoof => b.add_node_with_policy(
            Position::new(45.0, 20.0),
            GreedyConfig::ack_spoofing(vec![r0], 1.0).into_policy(),
        ),
        _ => honest(&mut b, Position::new(45.0, 20.0)),
    };
    let f0 = b.udp_flow(s0, r0, 1024, 10_000_000);
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let mut net = b.build();
    net.enable_trace(2_000_000);
    let m = net.run(SimDuration::from_secs(10));
    let trace = net.trace().expect("trace on");
    let report = DominoDetector::new(params).analyze(&trace);
    let nav: u64 = handles
        .iter()
        .map(|h| h.nav.borrow().total_detections())
        .sum();
    let spoof: u64 = handles.iter().map(|h| h.spoof.borrow().flagged).sum();
    (
        m.goodput_mbps(f0),
        m.goodput_mbps(f1),
        report.flagged.len(),
        nav,
        spoof,
    )
}

fn main() {
    println!("attack           honest   attacker  DOMINO  GRC-NAV  GRC-spoof");
    for (name, attack) in [
        ("none          ", Attack::None),
        ("greedy sender ", Attack::GreedySender),
        ("NAV inflation ", Attack::NavInflation),
        ("ACK spoofing  ", Attack::AckSpoof),
    ] {
        let (g0, g1, domino, nav, spoof) = run(attack);
        println!("{name}  {g0:>6.3}   {g1:>7.3}   {domino:>4}   {nav:>6}   {spoof:>7}");
    }
    println!(
        "\nDOMINO (timing-based, sender-side) flags only the backoff cheat;\n\
         GRC's NAV reconstruction and RSSI vetting cover the receiver side\n\
         — the complementarity the paper argues for (related work, §III)."
    );
}
