//! Fake ACKs: survival technique or self-destruction?
//!
//! The paper's most nuanced finding (§V-C): acknowledging corrupted
//! frames helps a receiver under *inherent* channel loss (backoff would
//! not have prevented those losses anyway), but under *collision-induced*
//! loss it removes exactly the backoff that kept collisions in check.
//! This example shows both regimes, plus the probing detector that
//! catches the faker. Run with:
//!
//! ```sh
//! cargo run --release --example fake_ack_survival
//! ```

use greedy80211_repro::{FakeAckDetector, GreedyConfig, Run, Scenario, TransportKind};
use net::NetworkBuilder;
use phy::{ChannelModel, PhyParams, Position};
use sim::SimDuration;

fn inherent_loss() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- Inherent channel loss (frame error rate 0.5, 2 APs) --");
    let p = 1.0 - (1.0f64 - 0.5).powf(1.0 / 1104.0); // per-byte rate for FER 0.5
    let mut s = Scenario {
        transport: TransportKind::SATURATING_UDP,
        rts: false,
        byte_error_rate: p,
        probes: true,
        duration: SimDuration::from_secs(10),
        ..Scenario::default()
    };
    let base = Run::plan(&s).execute()?;
    s.greedy = vec![(1, GreedyConfig::fake_acks(1.0))];
    let out = Run::plan(&s).execute()?;
    println!(
        "   honest/honest: {:.3} / {:.3} Mb/s",
        base.goodput_mbps(0),
        base.goodput_mbps(1)
    );
    println!(
        "   honest/faker : {:.3} / {:.3} Mb/s   <- faking survives the noise",
        out.goodput_mbps(0),
        out.goodput_mbps(1)
    );

    // The detector: the faker's sender sees ~zero MAC loss while probes
    // reveal the true application loss.
    let detector = FakeAckDetector::default();
    let greedy_sender = out.senders[1];
    let mac_loss =
        FakeAckDetector::mac_loss_from_counters(&out.metrics.node(greedy_sender).unwrap().counters);
    let app_loss = out
        .metrics
        .flow(out.probe_flows[1])
        .unwrap()
        .probe_app_loss
        .unwrap();
    println!(
        "   detector: MAC loss {:.4}, probed app loss {:.3} -> greedy = {}",
        mac_loss,
        app_loss,
        detector.is_greedy_round_trip(mac_loss, app_loss)
    );
    Ok(())
}

fn collision_loss() {
    println!("\n-- Collision-induced loss (hidden terminals, no RTS/CTS) --");
    // S1 and S2 cannot sense each other; R1/R2 sit between them.
    let build = |greedy: &[usize]| {
        let mut b = NetworkBuilder::new(PhyParams::dot11b())
            .seed(5)
            .rts(false)
            .channel(ChannelModel::with_ranges(60.0, 60.0));
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let s2 = b.add_node(Position::new(102.0, 0.0));
        let mk_rx = |b: &mut NetworkBuilder, pos, greedy: bool| {
            if greedy {
                b.add_node_with_policy(pos, GreedyConfig::fake_acks(1.0).into_policy())
            } else {
                b.add_node(pos)
            }
        };
        let r1 = mk_rx(&mut b, Position::new(50.0, 0.0), greedy.contains(&0));
        let r2 = mk_rx(&mut b, Position::new(52.0, 0.0), greedy.contains(&1));
        let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
        let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
        let mut net = b.build();
        let m = net.run(SimDuration::from_secs(10));
        (m.goodput_mbps(f1), m.goodput_mbps(f2))
    };
    let (a0, b0) = build(&[]);
    let (a1, b1) = build(&[1]);
    let (a2, b2) = build(&[0, 1]);
    println!("   honest/honest: {a0:.3} / {b0:.3} Mb/s");
    println!("   honest/faker : {a1:.3} / {b1:.3} Mb/s   <- faker wins big");
    println!("   faker /faker : {a2:.3} / {b2:.3} Mb/s   <- mutual destruction");
    println!(
        "\nDisabling backoff under traffic-induced loss floods the channel\n\
         with collisions when everyone does it (paper Fig. 18, Table IV)."
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    inherent_loss()?;
    collision_loss();
    Ok(())
}
