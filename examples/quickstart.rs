//! Quickstart: one greedy receiver inflating its CTS NAV.
//!
//! Two sender→receiver pairs saturate an 802.11b channel with UDP.
//! Receiver 1 is greedy: it adds 10 ms to the Duration field of every
//! CTS it sends, silencing the competing pair while its own sender keeps
//! transmitting. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use greedy80211_repro::{GreedyConfig, NavInflationConfig, Run, Scenario};
use sim::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Two UDP pairs on 802.11b; receiver 1 inflates CTS NAV by 10 ms.\n");

    // Baseline: everyone honest.
    let mut honest = Scenario::two_pair_udp(GreedyConfig::default());
    honest.greedy.clear();
    honest.duration = SimDuration::from_secs(10);
    let base = Run::plan(&honest).execute()?;

    // Attack: receiver 1 greedy.
    let mut attack = Scenario::two_pair_udp(GreedyConfig::nav_inflation(
        NavInflationConfig::cts_only(10_000, 1.0),
    ));
    attack.duration = SimDuration::from_secs(10);
    let out = Run::plan(&attack).execute()?;

    println!("                 normal receiver   greedy receiver");
    println!(
        "honest network     {:>8.3} Mb/s     {:>8.3} Mb/s",
        base.goodput_mbps(0),
        base.goodput_mbps(1)
    );
    println!(
        "with greedy R1     {:>8.3} Mb/s     {:>8.3} Mb/s",
        out.goodput_mbps(0),
        out.goodput_mbps(1)
    );
    println!(
        "\nThe greedy receiver grabs the channel: its sender never honors the\n\
         inflated NAV (frames addressed to you don't set your NAV), while\n\
         everyone else defers — paper §IV-A, Fig. 1."
    );

    // Turn on the GRC countermeasures and watch fairness return.
    attack.grc = Some(true);
    let guarded = Run::plan(&attack).execute()?;
    println!(
        "\nwith GRC enabled   {:>8.3} Mb/s     {:>8.3} Mb/s   ({} NAV detections)",
        guarded.goodput_mbps(0),
        guarded.goodput_mbps(1),
        guarded.nav_detections()
    );
    Ok(())
}
