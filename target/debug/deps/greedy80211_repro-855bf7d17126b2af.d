/root/repo/target/debug/deps/greedy80211_repro-855bf7d17126b2af.d: src/lib.rs

/root/repo/target/debug/deps/libgreedy80211_repro-855bf7d17126b2af.rlib: src/lib.rs

/root/repo/target/debug/deps/libgreedy80211_repro-855bf7d17126b2af.rmeta: src/lib.rs

src/lib.rs:
