/root/repo/target/debug/deps/medium-9cb51ede277d6fee.d: crates/net/tests/medium.rs Cargo.toml

/root/repo/target/debug/deps/libmedium-9cb51ede277d6fee.rmeta: crates/net/tests/medium.rs Cargo.toml

crates/net/tests/medium.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
