/root/repo/target/debug/deps/parallel_determinism-a6d420464fcf5c47.d: crates/bench/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-a6d420464fcf5c47: crates/bench/tests/parallel_determinism.rs

crates/bench/tests/parallel_determinism.rs:
