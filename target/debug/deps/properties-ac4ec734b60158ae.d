/root/repo/target/debug/deps/properties-ac4ec734b60158ae.d: crates/mac/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ac4ec734b60158ae.rmeta: crates/mac/tests/properties.rs Cargo.toml

crates/mac/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
