/root/repo/target/debug/deps/medium-e1dc04865e0ca58a.d: crates/net/tests/medium.rs

/root/repo/target/debug/deps/medium-e1dc04865e0ca58a: crates/net/tests/medium.rs

crates/net/tests/medium.rs:
