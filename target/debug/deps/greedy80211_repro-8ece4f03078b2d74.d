/root/repo/target/debug/deps/greedy80211_repro-8ece4f03078b2d74.d: src/lib.rs

/root/repo/target/debug/deps/libgreedy80211_repro-8ece4f03078b2d74.rmeta: src/lib.rs

src/lib.rs:
