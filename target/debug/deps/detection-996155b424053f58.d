/root/repo/target/debug/deps/detection-996155b424053f58.d: tests/detection.rs Cargo.toml

/root/repo/target/debug/deps/libdetection-996155b424053f58.rmeta: tests/detection.rs Cargo.toml

tests/detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
