/root/repo/target/debug/deps/medium-750bbadd4628c6da.d: crates/net/tests/medium.rs Cargo.toml

/root/repo/target/debug/deps/libmedium-750bbadd4628c6da.rmeta: crates/net/tests/medium.rs Cargo.toml

crates/net/tests/medium.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
