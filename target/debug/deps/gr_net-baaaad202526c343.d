/root/repo/target/debug/deps/gr_net-baaaad202526c343.d: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libgr_net-baaaad202526c343.rlib: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libgr_net-baaaad202526c343.rmeta: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/builder.rs:
crates/net/src/metrics.rs:
crates/net/src/network.rs:
crates/net/src/stats.rs:
crates/net/src/trace.rs:
