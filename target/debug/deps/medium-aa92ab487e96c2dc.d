/root/repo/target/debug/deps/medium-aa92ab487e96c2dc.d: crates/net/tests/medium.rs

/root/repo/target/debug/deps/medium-aa92ab487e96c2dc: crates/net/tests/medium.rs

crates/net/tests/medium.rs:
