/root/repo/target/debug/deps/greedy80211_repro-0b37eec1982a35ef.d: src/lib.rs

/root/repo/target/debug/deps/greedy80211_repro-0b37eec1982a35ef: src/lib.rs

src/lib.rs:
