/root/repo/target/debug/deps/gr_cli-4ea8cfa518ce26cc.d: src/bin/gr-cli.rs

/root/repo/target/debug/deps/gr_cli-4ea8cfa518ce26cc: src/bin/gr-cli.rs

src/bin/gr-cli.rs:
