/root/repo/target/debug/deps/repro-98950bca1ad93b79.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-98950bca1ad93b79: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
