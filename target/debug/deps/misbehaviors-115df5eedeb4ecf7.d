/root/repo/target/debug/deps/misbehaviors-115df5eedeb4ecf7.d: tests/misbehaviors.rs Cargo.toml

/root/repo/target/debug/deps/libmisbehaviors-115df5eedeb4ecf7.rmeta: tests/misbehaviors.rs Cargo.toml

tests/misbehaviors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
