/root/repo/target/debug/deps/obs_determinism-be531117decc8954.d: crates/bench/tests/obs_determinism.rs

/root/repo/target/debug/deps/obs_determinism-be531117decc8954: crates/bench/tests/obs_determinism.rs

crates/bench/tests/obs_determinism.rs:
