/root/repo/target/debug/deps/gr_cli-f36098c3395c99b9.d: src/bin/gr-cli.rs Cargo.toml

/root/repo/target/debug/deps/libgr_cli-f36098c3395c99b9.rmeta: src/bin/gr-cli.rs Cargo.toml

src/bin/gr-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
