/root/repo/target/debug/deps/gr_runner-1d5d18400468cfd5.d: crates/runner/src/lib.rs

/root/repo/target/debug/deps/libgr_runner-1d5d18400468cfd5.rlib: crates/runner/src/lib.rs

/root/repo/target/debug/deps/libgr_runner-1d5d18400468cfd5.rmeta: crates/runner/src/lib.rs

crates/runner/src/lib.rs:
