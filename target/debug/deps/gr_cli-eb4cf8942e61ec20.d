/root/repo/target/debug/deps/gr_cli-eb4cf8942e61ec20.d: src/bin/gr-cli.rs

/root/repo/target/debug/deps/gr_cli-eb4cf8942e61ec20: src/bin/gr-cli.rs

src/bin/gr-cli.rs:
