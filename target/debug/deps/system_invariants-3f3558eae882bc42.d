/root/repo/target/debug/deps/system_invariants-3f3558eae882bc42.d: tests/system_invariants.rs

/root/repo/target/debug/deps/system_invariants-3f3558eae882bc42: tests/system_invariants.rs

tests/system_invariants.rs:
