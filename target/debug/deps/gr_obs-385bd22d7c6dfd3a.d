/root/repo/target/debug/deps/gr_obs-385bd22d7c6dfd3a.d: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

/root/repo/target/debug/deps/gr_obs-385bd22d7c6dfd3a: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

crates/obs/src/lib.rs:
crates/obs/src/ambient.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/profile.rs:
crates/obs/src/recorder.rs:
crates/obs/src/shared.rs:
