/root/repo/target/debug/deps/properties-34a551d4f84ea49d.d: crates/mac/tests/properties.rs

/root/repo/target/debug/deps/properties-34a551d4f84ea49d: crates/mac/tests/properties.rs

crates/mac/tests/properties.rs:
