/root/repo/target/debug/deps/detection-88a3b9e246bd8056.d: tests/detection.rs Cargo.toml

/root/repo/target/debug/deps/libdetection-88a3b9e246bd8056.rmeta: tests/detection.rs Cargo.toml

tests/detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
