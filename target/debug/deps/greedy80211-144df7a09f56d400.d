/root/repo/target/debug/deps/greedy80211-144df7a09f56d400.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/corruption.rs crates/core/src/detect/mod.rs crates/core/src/detect/cross_layer.rs crates/core/src/detect/domino.rs crates/core/src/detect/fake_guard.rs crates/core/src/detect/grc.rs crates/core/src/detect/nav_guard.rs crates/core/src/detect/shared.rs crates/core/src/detect/spoof_guard.rs crates/core/src/misbehavior/mod.rs crates/core/src/misbehavior/ack_spoof.rs crates/core/src/misbehavior/fake_ack.rs crates/core/src/misbehavior/greedy_sender.rs crates/core/src/misbehavior/nav_inflation.rs crates/core/src/model.rs crates/core/src/rssi_study.rs crates/core/src/runplan.rs crates/core/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libgreedy80211-144df7a09f56d400.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/corruption.rs crates/core/src/detect/mod.rs crates/core/src/detect/cross_layer.rs crates/core/src/detect/domino.rs crates/core/src/detect/fake_guard.rs crates/core/src/detect/grc.rs crates/core/src/detect/nav_guard.rs crates/core/src/detect/shared.rs crates/core/src/detect/spoof_guard.rs crates/core/src/misbehavior/mod.rs crates/core/src/misbehavior/ack_spoof.rs crates/core/src/misbehavior/fake_ack.rs crates/core/src/misbehavior/greedy_sender.rs crates/core/src/misbehavior/nav_inflation.rs crates/core/src/model.rs crates/core/src/rssi_study.rs crates/core/src/runplan.rs crates/core/src/scenario.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/corruption.rs:
crates/core/src/detect/mod.rs:
crates/core/src/detect/cross_layer.rs:
crates/core/src/detect/domino.rs:
crates/core/src/detect/fake_guard.rs:
crates/core/src/detect/grc.rs:
crates/core/src/detect/nav_guard.rs:
crates/core/src/detect/shared.rs:
crates/core/src/detect/spoof_guard.rs:
crates/core/src/misbehavior/mod.rs:
crates/core/src/misbehavior/ack_spoof.rs:
crates/core/src/misbehavior/fake_ack.rs:
crates/core/src/misbehavior/greedy_sender.rs:
crates/core/src/misbehavior/nav_inflation.rs:
crates/core/src/model.rs:
crates/core/src/rssi_study.rs:
crates/core/src/runplan.rs:
crates/core/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
