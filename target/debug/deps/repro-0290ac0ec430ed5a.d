/root/repo/target/debug/deps/repro-0290ac0ec430ed5a.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0290ac0ec430ed5a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
