/root/repo/target/debug/deps/misbehaviors-2f7884b5ae35f6dc.d: tests/misbehaviors.rs Cargo.toml

/root/repo/target/debug/deps/libmisbehaviors-2f7884b5ae35f6dc.rmeta: tests/misbehaviors.rs Cargo.toml

tests/misbehaviors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
