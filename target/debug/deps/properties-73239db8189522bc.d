/root/repo/target/debug/deps/properties-73239db8189522bc.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-73239db8189522bc.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
