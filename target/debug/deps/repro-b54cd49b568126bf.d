/root/repo/target/debug/deps/repro-b54cd49b568126bf.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-b54cd49b568126bf.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
