/root/repo/target/debug/deps/gr_cli-556c1708b1f2434b.d: src/bin/gr-cli.rs

/root/repo/target/debug/deps/libgr_cli-556c1708b1f2434b.rmeta: src/bin/gr-cli.rs

src/bin/gr-cli.rs:
