/root/repo/target/debug/deps/misbehaviors-a36c8a576a92a6bc.d: tests/misbehaviors.rs

/root/repo/target/debug/deps/misbehaviors-a36c8a576a92a6bc: tests/misbehaviors.rs

tests/misbehaviors.rs:
