/root/repo/target/debug/deps/repro-fadcd3d75756f2e3.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-fadcd3d75756f2e3.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
