/root/repo/target/debug/deps/properties-7f7e90de37fd7461.d: crates/transport/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7f7e90de37fd7461.rmeta: crates/transport/tests/properties.rs Cargo.toml

crates/transport/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
