/root/repo/target/debug/deps/gr_cli-8c870ce4143f41a0.d: src/bin/gr-cli.rs Cargo.toml

/root/repo/target/debug/deps/libgr_cli-8c870ce4143f41a0.rmeta: src/bin/gr-cli.rs Cargo.toml

src/bin/gr-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
