/root/repo/target/debug/deps/gr_sim-c8f1b8b424362c48.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libgr_sim-c8f1b8b424362c48.rmeta: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
