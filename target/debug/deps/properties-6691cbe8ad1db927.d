/root/repo/target/debug/deps/properties-6691cbe8ad1db927.d: crates/mac/tests/properties.rs

/root/repo/target/debug/deps/properties-6691cbe8ad1db927: crates/mac/tests/properties.rs

crates/mac/tests/properties.rs:
