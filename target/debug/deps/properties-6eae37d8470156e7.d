/root/repo/target/debug/deps/properties-6eae37d8470156e7.d: crates/mac/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6eae37d8470156e7.rmeta: crates/mac/tests/properties.rs Cargo.toml

crates/mac/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
