/root/repo/target/debug/deps/properties-c48561e1845b0a8a.d: crates/phy/tests/properties.rs

/root/repo/target/debug/deps/properties-c48561e1845b0a8a: crates/phy/tests/properties.rs

crates/phy/tests/properties.rs:
