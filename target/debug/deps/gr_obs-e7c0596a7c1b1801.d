/root/repo/target/debug/deps/gr_obs-e7c0596a7c1b1801.d: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

/root/repo/target/debug/deps/libgr_obs-e7c0596a7c1b1801.rmeta: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

crates/obs/src/lib.rs:
crates/obs/src/ambient.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/profile.rs:
crates/obs/src/recorder.rs:
crates/obs/src/shared.rs:
