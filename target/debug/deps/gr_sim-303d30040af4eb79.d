/root/repo/target/debug/deps/gr_sim-303d30040af4eb79.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libgr_sim-303d30040af4eb79.rlib: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libgr_sim-303d30040af4eb79.rmeta: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
