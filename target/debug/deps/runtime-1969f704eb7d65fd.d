/root/repo/target/debug/deps/runtime-1969f704eb7d65fd.d: crates/net/tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-1969f704eb7d65fd.rmeta: crates/net/tests/runtime.rs Cargo.toml

crates/net/tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
