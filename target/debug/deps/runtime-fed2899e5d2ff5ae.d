/root/repo/target/debug/deps/runtime-fed2899e5d2ff5ae.d: crates/net/tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-fed2899e5d2ff5ae.rmeta: crates/net/tests/runtime.rs Cargo.toml

crates/net/tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
