/root/repo/target/debug/deps/properties-bafe69a662a1b033.d: crates/transport/tests/properties.rs

/root/repo/target/debug/deps/properties-bafe69a662a1b033: crates/transport/tests/properties.rs

crates/transport/tests/properties.rs:
