/root/repo/target/debug/deps/repro-8b8fe605e044f9c5.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-8b8fe605e044f9c5: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
