/root/repo/target/debug/deps/gr_transport-082cbb084e5f18e1.d: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libgr_transport-082cbb084e5f18e1.rmeta: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/obs.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
