/root/repo/target/debug/deps/gr_runner-b069d8c14cc5bad9.d: crates/runner/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgr_runner-b069d8c14cc5bad9.rmeta: crates/runner/src/lib.rs Cargo.toml

crates/runner/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
