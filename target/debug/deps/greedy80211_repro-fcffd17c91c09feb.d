/root/repo/target/debug/deps/greedy80211_repro-fcffd17c91c09feb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgreedy80211_repro-fcffd17c91c09feb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
