/root/repo/target/debug/deps/baselines_and_extensions-0425cbab4c5569f9.d: tests/baselines_and_extensions.rs

/root/repo/target/debug/deps/baselines_and_extensions-0425cbab4c5569f9: tests/baselines_and_extensions.rs

tests/baselines_and_extensions.rs:
