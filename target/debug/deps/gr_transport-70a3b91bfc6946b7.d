/root/repo/target/debug/deps/gr_transport-70a3b91bfc6946b7.d: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libgr_transport-70a3b91bfc6946b7.rmeta: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/obs.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
