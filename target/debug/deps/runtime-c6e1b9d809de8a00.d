/root/repo/target/debug/deps/runtime-c6e1b9d809de8a00.d: crates/net/tests/runtime.rs

/root/repo/target/debug/deps/runtime-c6e1b9d809de8a00: crates/net/tests/runtime.rs

crates/net/tests/runtime.rs:
