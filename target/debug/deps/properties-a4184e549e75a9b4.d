/root/repo/target/debug/deps/properties-a4184e549e75a9b4.d: crates/phy/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a4184e549e75a9b4.rmeta: crates/phy/tests/properties.rs Cargo.toml

crates/phy/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
