/root/repo/target/debug/deps/gr_cli-cd07b4c981577a33.d: src/bin/gr-cli.rs

/root/repo/target/debug/deps/gr_cli-cd07b4c981577a33: src/bin/gr-cli.rs

src/bin/gr-cli.rs:
