/root/repo/target/debug/deps/gr_net-05c2c8ad347ba5ef.d: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/gr_net-05c2c8ad347ba5ef: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/builder.rs:
crates/net/src/metrics.rs:
crates/net/src/network.rs:
crates/net/src/stats.rs:
crates/net/src/trace.rs:
