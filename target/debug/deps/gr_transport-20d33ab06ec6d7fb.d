/root/repo/target/debug/deps/gr_transport-20d33ab06ec6d7fb.d: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/gr_transport-20d33ab06ec6d7fb: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
