/root/repo/target/debug/deps/gr_mac-b742cda8607b1085.d: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

/root/repo/target/debug/deps/gr_mac-b742cda8607b1085: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

crates/mac/src/lib.rs:
crates/mac/src/arf.rs:
crates/mac/src/backoff.rs:
crates/mac/src/counters.rs:
crates/mac/src/dcf.rs:
crates/mac/src/dedup.rs:
crates/mac/src/frame.rs:
crates/mac/src/nav.rs:
crates/mac/src/obs.rs:
crates/mac/src/policy.rs:
