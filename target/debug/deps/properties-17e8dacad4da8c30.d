/root/repo/target/debug/deps/properties-17e8dacad4da8c30.d: crates/phy/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-17e8dacad4da8c30.rmeta: crates/phy/tests/properties.rs Cargo.toml

crates/phy/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
