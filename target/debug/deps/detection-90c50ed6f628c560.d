/root/repo/target/debug/deps/detection-90c50ed6f628c560.d: tests/detection.rs

/root/repo/target/debug/deps/detection-90c50ed6f628c560: tests/detection.rs

tests/detection.rs:
