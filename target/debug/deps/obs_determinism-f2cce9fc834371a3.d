/root/repo/target/debug/deps/obs_determinism-f2cce9fc834371a3.d: crates/bench/tests/obs_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libobs_determinism-f2cce9fc834371a3.rmeta: crates/bench/tests/obs_determinism.rs Cargo.toml

crates/bench/tests/obs_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
