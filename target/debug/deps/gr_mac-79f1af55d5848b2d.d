/root/repo/target/debug/deps/gr_mac-79f1af55d5848b2d.d: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

/root/repo/target/debug/deps/libgr_mac-79f1af55d5848b2d.rlib: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

/root/repo/target/debug/deps/libgr_mac-79f1af55d5848b2d.rmeta: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

crates/mac/src/lib.rs:
crates/mac/src/arf.rs:
crates/mac/src/backoff.rs:
crates/mac/src/counters.rs:
crates/mac/src/dcf.rs:
crates/mac/src/dedup.rs:
crates/mac/src/frame.rs:
crates/mac/src/nav.rs:
crates/mac/src/obs.rs:
crates/mac/src/policy.rs:
