/root/repo/target/debug/deps/gr_runner-c00d773a265de01b.d: crates/runner/src/lib.rs

/root/repo/target/debug/deps/gr_runner-c00d773a265de01b: crates/runner/src/lib.rs

crates/runner/src/lib.rs:
