/root/repo/target/debug/deps/gr_transport-66954c1a60f60fd3.d: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libgr_transport-66954c1a60f60fd3.rmeta: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
