/root/repo/target/debug/deps/gr_transport-1b6f3215df024c7c.d: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libgr_transport-1b6f3215df024c7c.rlib: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libgr_transport-1b6f3215df024c7c.rmeta: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
