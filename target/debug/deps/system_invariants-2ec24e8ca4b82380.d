/root/repo/target/debug/deps/system_invariants-2ec24e8ca4b82380.d: tests/system_invariants.rs

/root/repo/target/debug/deps/system_invariants-2ec24e8ca4b82380: tests/system_invariants.rs

tests/system_invariants.rs:
