/root/repo/target/debug/deps/baselines_and_extensions-5f0c65dbc87a6f36.d: tests/baselines_and_extensions.rs

/root/repo/target/debug/deps/baselines_and_extensions-5f0c65dbc87a6f36: tests/baselines_and_extensions.rs

tests/baselines_and_extensions.rs:
