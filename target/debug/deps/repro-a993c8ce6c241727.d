/root/repo/target/debug/deps/repro-a993c8ce6c241727.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a993c8ce6c241727: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
