/root/repo/target/debug/deps/runtime-c4d305466a258634.d: crates/net/tests/runtime.rs

/root/repo/target/debug/deps/runtime-c4d305466a258634: crates/net/tests/runtime.rs

crates/net/tests/runtime.rs:
