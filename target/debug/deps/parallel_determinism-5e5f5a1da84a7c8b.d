/root/repo/target/debug/deps/parallel_determinism-5e5f5a1da84a7c8b.d: crates/bench/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-5e5f5a1da84a7c8b.rmeta: crates/bench/tests/parallel_determinism.rs Cargo.toml

crates/bench/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
