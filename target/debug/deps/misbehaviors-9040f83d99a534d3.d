/root/repo/target/debug/deps/misbehaviors-9040f83d99a534d3.d: tests/misbehaviors.rs

/root/repo/target/debug/deps/misbehaviors-9040f83d99a534d3: tests/misbehaviors.rs

tests/misbehaviors.rs:
