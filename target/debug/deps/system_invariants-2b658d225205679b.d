/root/repo/target/debug/deps/system_invariants-2b658d225205679b.d: tests/system_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_invariants-2b658d225205679b.rmeta: tests/system_invariants.rs Cargo.toml

tests/system_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
