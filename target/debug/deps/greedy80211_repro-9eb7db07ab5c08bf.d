/root/repo/target/debug/deps/greedy80211_repro-9eb7db07ab5c08bf.d: src/lib.rs

/root/repo/target/debug/deps/libgreedy80211_repro-9eb7db07ab5c08bf.rlib: src/lib.rs

/root/repo/target/debug/deps/libgreedy80211_repro-9eb7db07ab5c08bf.rmeta: src/lib.rs

src/lib.rs:
