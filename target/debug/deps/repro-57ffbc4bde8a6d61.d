/root/repo/target/debug/deps/repro-57ffbc4bde8a6d61.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-57ffbc4bde8a6d61.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
