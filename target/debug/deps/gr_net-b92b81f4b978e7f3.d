/root/repo/target/debug/deps/gr_net-b92b81f4b978e7f3.d: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/gr_net-b92b81f4b978e7f3: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/builder.rs:
crates/net/src/metrics.rs:
crates/net/src/network.rs:
crates/net/src/stats.rs:
crates/net/src/trace.rs:
