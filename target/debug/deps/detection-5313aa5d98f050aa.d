/root/repo/target/debug/deps/detection-5313aa5d98f050aa.d: tests/detection.rs

/root/repo/target/debug/deps/detection-5313aa5d98f050aa: tests/detection.rs

tests/detection.rs:
