/root/repo/target/debug/deps/properties-5669c18db43d4b5e.d: crates/phy/tests/properties.rs

/root/repo/target/debug/deps/properties-5669c18db43d4b5e: crates/phy/tests/properties.rs

crates/phy/tests/properties.rs:
