/root/repo/target/debug/deps/repro-46fe43774874a5ed.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-46fe43774874a5ed.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
