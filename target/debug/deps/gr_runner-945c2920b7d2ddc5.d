/root/repo/target/debug/deps/gr_runner-945c2920b7d2ddc5.d: crates/runner/src/lib.rs

/root/repo/target/debug/deps/libgr_runner-945c2920b7d2ddc5.rmeta: crates/runner/src/lib.rs

crates/runner/src/lib.rs:
