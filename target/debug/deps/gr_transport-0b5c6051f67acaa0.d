/root/repo/target/debug/deps/gr_transport-0b5c6051f67acaa0.d: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/gr_transport-0b5c6051f67acaa0: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/obs.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
