/root/repo/target/debug/deps/gr_phy-f2694fc637cfe69c.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/obs.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs Cargo.toml

/root/repo/target/debug/deps/libgr_phy-f2694fc637cfe69c.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/obs.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs Cargo.toml

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/capture.rs:
crates/phy/src/channel.rs:
crates/phy/src/error_model.rs:
crates/phy/src/obs.rs:
crates/phy/src/params.rs:
crates/phy/src/position.rs:
crates/phy/src/rssi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
