/root/repo/target/debug/deps/parallel_determinism-a5c9d6178688060a.d: crates/bench/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-a5c9d6178688060a: crates/bench/tests/parallel_determinism.rs

crates/bench/tests/parallel_determinism.rs:
