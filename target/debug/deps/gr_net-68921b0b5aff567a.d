/root/repo/target/debug/deps/gr_net-68921b0b5aff567a.d: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libgr_net-68921b0b5aff567a.rmeta: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/builder.rs:
crates/net/src/metrics.rs:
crates/net/src/network.rs:
crates/net/src/stats.rs:
crates/net/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
