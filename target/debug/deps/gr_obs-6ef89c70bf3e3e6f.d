/root/repo/target/debug/deps/gr_obs-6ef89c70bf3e3e6f.d: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

/root/repo/target/debug/deps/libgr_obs-6ef89c70bf3e3e6f.rlib: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

/root/repo/target/debug/deps/libgr_obs-6ef89c70bf3e3e6f.rmeta: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

crates/obs/src/lib.rs:
crates/obs/src/ambient.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/profile.rs:
crates/obs/src/recorder.rs:
crates/obs/src/shared.rs:
