/root/repo/target/debug/deps/greedy80211_repro-34fedb60ec6c4707.d: src/lib.rs

/root/repo/target/debug/deps/libgreedy80211_repro-34fedb60ec6c4707.rmeta: src/lib.rs

src/lib.rs:
