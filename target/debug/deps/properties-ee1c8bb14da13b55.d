/root/repo/target/debug/deps/properties-ee1c8bb14da13b55.d: crates/transport/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ee1c8bb14da13b55.rmeta: crates/transport/tests/properties.rs Cargo.toml

crates/transport/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
