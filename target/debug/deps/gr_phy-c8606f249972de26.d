/root/repo/target/debug/deps/gr_phy-c8606f249972de26.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/obs.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

/root/repo/target/debug/deps/libgr_phy-c8606f249972de26.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/obs.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/capture.rs:
crates/phy/src/channel.rs:
crates/phy/src/error_model.rs:
crates/phy/src/obs.rs:
crates/phy/src/params.rs:
crates/phy/src/position.rs:
crates/phy/src/rssi.rs:
