/root/repo/target/debug/deps/gr_mac-8d29cbb3732f1303.d: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libgr_mac-8d29cbb3732f1303.rmeta: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs Cargo.toml

crates/mac/src/lib.rs:
crates/mac/src/arf.rs:
crates/mac/src/backoff.rs:
crates/mac/src/counters.rs:
crates/mac/src/dcf.rs:
crates/mac/src/dedup.rs:
crates/mac/src/frame.rs:
crates/mac/src/nav.rs:
crates/mac/src/obs.rs:
crates/mac/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
