/root/repo/target/debug/deps/gr_cli-79b1242e8dbd2b30.d: src/bin/gr-cli.rs

/root/repo/target/debug/deps/gr_cli-79b1242e8dbd2b30: src/bin/gr-cli.rs

src/bin/gr-cli.rs:
