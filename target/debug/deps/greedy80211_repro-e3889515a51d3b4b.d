/root/repo/target/debug/deps/greedy80211_repro-e3889515a51d3b4b.d: src/lib.rs

/root/repo/target/debug/deps/greedy80211_repro-e3889515a51d3b4b: src/lib.rs

src/lib.rs:
