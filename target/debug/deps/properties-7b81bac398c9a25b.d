/root/repo/target/debug/deps/properties-7b81bac398c9a25b.d: crates/transport/tests/properties.rs

/root/repo/target/debug/deps/properties-7b81bac398c9a25b: crates/transport/tests/properties.rs

crates/transport/tests/properties.rs:
