/root/repo/target/debug/deps/gr_sim-a07c2419bd21357a.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/gr_sim-a07c2419bd21357a: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
