/root/repo/target/debug/deps/gr_obs-1ea029559dd38ca9.d: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs Cargo.toml

/root/repo/target/debug/deps/libgr_obs-1ea029559dd38ca9.rmeta: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/ambient.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/profile.rs:
crates/obs/src/recorder.rs:
crates/obs/src/shared.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
