/root/repo/target/debug/deps/system_invariants-5208dfdba6d1f501.d: tests/system_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_invariants-5208dfdba6d1f501.rmeta: tests/system_invariants.rs Cargo.toml

tests/system_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
