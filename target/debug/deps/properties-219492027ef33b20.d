/root/repo/target/debug/deps/properties-219492027ef33b20.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-219492027ef33b20: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
