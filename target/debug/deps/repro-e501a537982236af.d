/root/repo/target/debug/deps/repro-e501a537982236af.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-e501a537982236af.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
