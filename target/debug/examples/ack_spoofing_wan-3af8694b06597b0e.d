/root/repo/target/debug/examples/ack_spoofing_wan-3af8694b06597b0e.d: examples/ack_spoofing_wan.rs

/root/repo/target/debug/examples/ack_spoofing_wan-3af8694b06597b0e: examples/ack_spoofing_wan.rs

examples/ack_spoofing_wan.rs:
