/root/repo/target/debug/examples/fake_ack_survival-2158144cf140b269.d: examples/fake_ack_survival.rs

/root/repo/target/debug/examples/fake_ack_survival-2158144cf140b269: examples/fake_ack_survival.rs

examples/fake_ack_survival.rs:
