/root/repo/target/debug/examples/detector_coverage-da790acb48fe9b83.d: examples/detector_coverage.rs

/root/repo/target/debug/examples/detector_coverage-da790acb48fe9b83: examples/detector_coverage.rs

examples/detector_coverage.rs:
