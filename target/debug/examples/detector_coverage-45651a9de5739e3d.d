/root/repo/target/debug/examples/detector_coverage-45651a9de5739e3d.d: examples/detector_coverage.rs Cargo.toml

/root/repo/target/debug/examples/libdetector_coverage-45651a9de5739e3d.rmeta: examples/detector_coverage.rs Cargo.toml

examples/detector_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
