/root/repo/target/debug/examples/quickstart-c86b6f94c890f8e0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c86b6f94c890f8e0: examples/quickstart.rs

examples/quickstart.rs:
