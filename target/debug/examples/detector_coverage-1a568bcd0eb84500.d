/root/repo/target/debug/examples/detector_coverage-1a568bcd0eb84500.d: examples/detector_coverage.rs Cargo.toml

/root/repo/target/debug/examples/libdetector_coverage-1a568bcd0eb84500.rmeta: examples/detector_coverage.rs Cargo.toml

examples/detector_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
