/root/repo/target/debug/examples/ack_spoofing_wan-4ecacd73f58c2d7c.d: examples/ack_spoofing_wan.rs

/root/repo/target/debug/examples/ack_spoofing_wan-4ecacd73f58c2d7c: examples/ack_spoofing_wan.rs

examples/ack_spoofing_wan.rs:
