/root/repo/target/debug/examples/hotspot_cafe-04cde60f508538c4.d: examples/hotspot_cafe.rs Cargo.toml

/root/repo/target/debug/examples/libhotspot_cafe-04cde60f508538c4.rmeta: examples/hotspot_cafe.rs Cargo.toml

examples/hotspot_cafe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
