/root/repo/target/debug/examples/hotspot_cafe-9304e6686260acf8.d: examples/hotspot_cafe.rs

/root/repo/target/debug/examples/hotspot_cafe-9304e6686260acf8: examples/hotspot_cafe.rs

examples/hotspot_cafe.rs:
