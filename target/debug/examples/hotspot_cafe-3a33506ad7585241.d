/root/repo/target/debug/examples/hotspot_cafe-3a33506ad7585241.d: examples/hotspot_cafe.rs

/root/repo/target/debug/examples/hotspot_cafe-3a33506ad7585241: examples/hotspot_cafe.rs

examples/hotspot_cafe.rs:
