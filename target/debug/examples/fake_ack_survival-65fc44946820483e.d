/root/repo/target/debug/examples/fake_ack_survival-65fc44946820483e.d: examples/fake_ack_survival.rs Cargo.toml

/root/repo/target/debug/examples/libfake_ack_survival-65fc44946820483e.rmeta: examples/fake_ack_survival.rs Cargo.toml

examples/fake_ack_survival.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
