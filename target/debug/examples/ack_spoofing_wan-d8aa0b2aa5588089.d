/root/repo/target/debug/examples/ack_spoofing_wan-d8aa0b2aa5588089.d: examples/ack_spoofing_wan.rs Cargo.toml

/root/repo/target/debug/examples/liback_spoofing_wan-d8aa0b2aa5588089.rmeta: examples/ack_spoofing_wan.rs Cargo.toml

examples/ack_spoofing_wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
