/root/repo/target/debug/examples/detector_coverage-f730c2837d6b961d.d: examples/detector_coverage.rs

/root/repo/target/debug/examples/detector_coverage-f730c2837d6b961d: examples/detector_coverage.rs

examples/detector_coverage.rs:
