/root/repo/target/debug/examples/ack_spoofing_wan-022ef6a2da0ce3e7.d: examples/ack_spoofing_wan.rs Cargo.toml

/root/repo/target/debug/examples/liback_spoofing_wan-022ef6a2da0ce3e7.rmeta: examples/ack_spoofing_wan.rs Cargo.toml

examples/ack_spoofing_wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
