/root/repo/target/debug/examples/quickstart-cdfe6ad1fe805567.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cdfe6ad1fe805567: examples/quickstart.rs

examples/quickstart.rs:
