/root/repo/target/debug/examples/fake_ack_survival-5a07892738104cf8.d: examples/fake_ack_survival.rs

/root/repo/target/debug/examples/fake_ack_survival-5a07892738104cf8: examples/fake_ack_survival.rs

examples/fake_ack_survival.rs:
