(function() {
    const implementors = Object.fromEntries([["gr_mac",[]],["gr_transport",[["impl Msdu for <a class=\"enum\" href=\"gr_transport/packet/enum.Segment.html\" title=\"enum gr_transport::packet::Segment\">Segment</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[13,161]}