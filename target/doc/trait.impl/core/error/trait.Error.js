(function() {
    const implementors = Object.fromEntries([["gr_sim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"gr_sim/error/enum.SimError.html\" title=\"enum gr_sim::error::SimError\">SimError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[272]}