(function() {
    const implementors = Object.fromEntries([["gr_sim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"gr_sim/time/struct.SimDuration.html\" title=\"struct gr_sim::time::SimDuration\">SimDuration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"gr_sim/time/struct.SimTime.html\" title=\"struct gr_sim::time::SimTime\">SimTime</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a>&lt;<a class=\"struct\" href=\"gr_sim/time/struct.SimDuration.html\" title=\"struct gr_sim::time::SimDuration\">SimDuration</a>&gt; for <a class=\"struct\" href=\"gr_sim/time/struct.SimTime.html\" title=\"struct gr_sim::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[947]}