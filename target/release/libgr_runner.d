/root/repo/target/release/libgr_runner.rlib: /root/repo/crates/runner/src/lib.rs
