/root/repo/target/release/deps/greedy80211-7a335efe57ddcaf6.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/corruption.rs crates/core/src/detect/mod.rs crates/core/src/detect/cross_layer.rs crates/core/src/detect/domino.rs crates/core/src/detect/fake_guard.rs crates/core/src/detect/grc.rs crates/core/src/detect/nav_guard.rs crates/core/src/detect/shared.rs crates/core/src/detect/spoof_guard.rs crates/core/src/misbehavior/mod.rs crates/core/src/misbehavior/ack_spoof.rs crates/core/src/misbehavior/fake_ack.rs crates/core/src/misbehavior/greedy_sender.rs crates/core/src/misbehavior/nav_inflation.rs crates/core/src/model.rs crates/core/src/rssi_study.rs crates/core/src/runplan.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libgreedy80211-7a335efe57ddcaf6.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/corruption.rs crates/core/src/detect/mod.rs crates/core/src/detect/cross_layer.rs crates/core/src/detect/domino.rs crates/core/src/detect/fake_guard.rs crates/core/src/detect/grc.rs crates/core/src/detect/nav_guard.rs crates/core/src/detect/shared.rs crates/core/src/detect/spoof_guard.rs crates/core/src/misbehavior/mod.rs crates/core/src/misbehavior/ack_spoof.rs crates/core/src/misbehavior/fake_ack.rs crates/core/src/misbehavior/greedy_sender.rs crates/core/src/misbehavior/nav_inflation.rs crates/core/src/model.rs crates/core/src/rssi_study.rs crates/core/src/runplan.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libgreedy80211-7a335efe57ddcaf6.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/corruption.rs crates/core/src/detect/mod.rs crates/core/src/detect/cross_layer.rs crates/core/src/detect/domino.rs crates/core/src/detect/fake_guard.rs crates/core/src/detect/grc.rs crates/core/src/detect/nav_guard.rs crates/core/src/detect/shared.rs crates/core/src/detect/spoof_guard.rs crates/core/src/misbehavior/mod.rs crates/core/src/misbehavior/ack_spoof.rs crates/core/src/misbehavior/fake_ack.rs crates/core/src/misbehavior/greedy_sender.rs crates/core/src/misbehavior/nav_inflation.rs crates/core/src/model.rs crates/core/src/rssi_study.rs crates/core/src/runplan.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/corruption.rs:
crates/core/src/detect/mod.rs:
crates/core/src/detect/cross_layer.rs:
crates/core/src/detect/domino.rs:
crates/core/src/detect/fake_guard.rs:
crates/core/src/detect/grc.rs:
crates/core/src/detect/nav_guard.rs:
crates/core/src/detect/shared.rs:
crates/core/src/detect/spoof_guard.rs:
crates/core/src/misbehavior/mod.rs:
crates/core/src/misbehavior/ack_spoof.rs:
crates/core/src/misbehavior/fake_ack.rs:
crates/core/src/misbehavior/greedy_sender.rs:
crates/core/src/misbehavior/nav_inflation.rs:
crates/core/src/model.rs:
crates/core/src/rssi_study.rs:
crates/core/src/runplan.rs:
crates/core/src/scenario.rs:
