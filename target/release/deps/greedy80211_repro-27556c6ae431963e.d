/root/repo/target/release/deps/greedy80211_repro-27556c6ae431963e.d: src/lib.rs

/root/repo/target/release/deps/libgreedy80211_repro-27556c6ae431963e.rlib: src/lib.rs

/root/repo/target/release/deps/libgreedy80211_repro-27556c6ae431963e.rmeta: src/lib.rs

src/lib.rs:
