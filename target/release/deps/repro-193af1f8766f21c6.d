/root/repo/target/release/deps/repro-193af1f8766f21c6.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-193af1f8766f21c6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
