/root/repo/target/release/deps/gr_mac-3be2f551670bb69a.d: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

/root/repo/target/release/deps/libgr_mac-3be2f551670bb69a.rlib: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

/root/repo/target/release/deps/libgr_mac-3be2f551670bb69a.rmeta: crates/mac/src/lib.rs crates/mac/src/arf.rs crates/mac/src/backoff.rs crates/mac/src/counters.rs crates/mac/src/dcf.rs crates/mac/src/dedup.rs crates/mac/src/frame.rs crates/mac/src/nav.rs crates/mac/src/obs.rs crates/mac/src/policy.rs

crates/mac/src/lib.rs:
crates/mac/src/arf.rs:
crates/mac/src/backoff.rs:
crates/mac/src/counters.rs:
crates/mac/src/dcf.rs:
crates/mac/src/dedup.rs:
crates/mac/src/frame.rs:
crates/mac/src/nav.rs:
crates/mac/src/obs.rs:
crates/mac/src/policy.rs:
