/root/repo/target/release/deps/gr_cli-d69433f44e4d4de7.d: src/bin/gr-cli.rs

/root/repo/target/release/deps/gr_cli-d69433f44e4d4de7: src/bin/gr-cli.rs

src/bin/gr-cli.rs:
