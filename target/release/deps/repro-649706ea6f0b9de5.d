/root/repo/target/release/deps/repro-649706ea6f0b9de5.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-649706ea6f0b9de5: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
