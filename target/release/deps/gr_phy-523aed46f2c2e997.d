/root/repo/target/release/deps/gr_phy-523aed46f2c2e997.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/obs.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

/root/repo/target/release/deps/libgr_phy-523aed46f2c2e997.rlib: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/obs.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

/root/repo/target/release/deps/libgr_phy-523aed46f2c2e997.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/obs.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/capture.rs:
crates/phy/src/channel.rs:
crates/phy/src/error_model.rs:
crates/phy/src/obs.rs:
crates/phy/src/params.rs:
crates/phy/src/position.rs:
crates/phy/src/rssi.rs:
