/root/repo/target/release/deps/gr_runner-d74e315d92249dd2.d: crates/runner/src/lib.rs

/root/repo/target/release/deps/libgr_runner-d74e315d92249dd2.rlib: crates/runner/src/lib.rs

/root/repo/target/release/deps/libgr_runner-d74e315d92249dd2.rmeta: crates/runner/src/lib.rs

crates/runner/src/lib.rs:
