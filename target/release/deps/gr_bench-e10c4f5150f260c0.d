/root/repo/target/release/deps/gr_bench-e10c4f5150f260c0.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/abl01.rs crates/bench/src/experiments/abl02.rs crates/bench/src/experiments/abl03.rs crates/bench/src/experiments/ext01.rs crates/bench/src/experiments/ext02.rs crates/bench/src/experiments/fig01.rs crates/bench/src/experiments/fig02.rs crates/bench/src/experiments/fig03.rs crates/bench/src/experiments/fig04.rs crates/bench/src/experiments/fig05.rs crates/bench/src/experiments/fig06.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig09.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig21.rs crates/bench/src/experiments/fig22.rs crates/bench/src/experiments/fig23.rs crates/bench/src/experiments/fig24.rs crates/bench/src/experiments/tab01.rs crates/bench/src/experiments/tab02.rs crates/bench/src/experiments/tab03.rs crates/bench/src/experiments/tab04.rs crates/bench/src/experiments/tab05.rs crates/bench/src/experiments/tab06.rs crates/bench/src/experiments/tab07.rs crates/bench/src/experiments/tab08.rs crates/bench/src/experiments/tab09.rs crates/bench/src/quality.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/release/deps/gr_bench-e10c4f5150f260c0: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/abl01.rs crates/bench/src/experiments/abl02.rs crates/bench/src/experiments/abl03.rs crates/bench/src/experiments/ext01.rs crates/bench/src/experiments/ext02.rs crates/bench/src/experiments/fig01.rs crates/bench/src/experiments/fig02.rs crates/bench/src/experiments/fig03.rs crates/bench/src/experiments/fig04.rs crates/bench/src/experiments/fig05.rs crates/bench/src/experiments/fig06.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig09.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig21.rs crates/bench/src/experiments/fig22.rs crates/bench/src/experiments/fig23.rs crates/bench/src/experiments/fig24.rs crates/bench/src/experiments/tab01.rs crates/bench/src/experiments/tab02.rs crates/bench/src/experiments/tab03.rs crates/bench/src/experiments/tab04.rs crates/bench/src/experiments/tab05.rs crates/bench/src/experiments/tab06.rs crates/bench/src/experiments/tab07.rs crates/bench/src/experiments/tab08.rs crates/bench/src/experiments/tab09.rs crates/bench/src/quality.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/abl01.rs:
crates/bench/src/experiments/abl02.rs:
crates/bench/src/experiments/abl03.rs:
crates/bench/src/experiments/ext01.rs:
crates/bench/src/experiments/ext02.rs:
crates/bench/src/experiments/fig01.rs:
crates/bench/src/experiments/fig02.rs:
crates/bench/src/experiments/fig03.rs:
crates/bench/src/experiments/fig04.rs:
crates/bench/src/experiments/fig05.rs:
crates/bench/src/experiments/fig06.rs:
crates/bench/src/experiments/fig07.rs:
crates/bench/src/experiments/fig08.rs:
crates/bench/src/experiments/fig09.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig12.rs:
crates/bench/src/experiments/fig13.rs:
crates/bench/src/experiments/fig14.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig16.rs:
crates/bench/src/experiments/fig17.rs:
crates/bench/src/experiments/fig18.rs:
crates/bench/src/experiments/fig19.rs:
crates/bench/src/experiments/fig21.rs:
crates/bench/src/experiments/fig22.rs:
crates/bench/src/experiments/fig23.rs:
crates/bench/src/experiments/fig24.rs:
crates/bench/src/experiments/tab01.rs:
crates/bench/src/experiments/tab02.rs:
crates/bench/src/experiments/tab03.rs:
crates/bench/src/experiments/tab04.rs:
crates/bench/src/experiments/tab05.rs:
crates/bench/src/experiments/tab06.rs:
crates/bench/src/experiments/tab07.rs:
crates/bench/src/experiments/tab08.rs:
crates/bench/src/experiments/tab09.rs:
crates/bench/src/quality.rs:
crates/bench/src/sweep.rs:
crates/bench/src/table.rs:
