/root/repo/target/release/deps/repro-1ae80a302e1ced9d.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-1ae80a302e1ced9d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
