/root/repo/target/release/deps/gr_cli-5acbae84d70074f4.d: src/bin/gr-cli.rs

/root/repo/target/release/deps/gr_cli-5acbae84d70074f4: src/bin/gr-cli.rs

src/bin/gr-cli.rs:
