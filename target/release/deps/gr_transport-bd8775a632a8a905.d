/root/repo/target/release/deps/gr_transport-bd8775a632a8a905.d: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libgr_transport-bd8775a632a8a905.rlib: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libgr_transport-bd8775a632a8a905.rmeta: crates/transport/src/lib.rs crates/transport/src/obs.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/obs.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
