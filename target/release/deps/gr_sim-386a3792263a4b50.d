/root/repo/target/release/deps/gr_sim-386a3792263a4b50.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libgr_sim-386a3792263a4b50.rlib: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libgr_sim-386a3792263a4b50.rmeta: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
