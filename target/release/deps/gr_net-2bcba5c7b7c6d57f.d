/root/repo/target/release/deps/gr_net-2bcba5c7b7c6d57f.d: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libgr_net-2bcba5c7b7c6d57f.rlib: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libgr_net-2bcba5c7b7c6d57f.rmeta: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/builder.rs:
crates/net/src/metrics.rs:
crates/net/src/network.rs:
crates/net/src/stats.rs:
crates/net/src/trace.rs:
