/root/repo/target/release/deps/gr_phy-585f366e14887bd2.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

/root/repo/target/release/deps/libgr_phy-585f366e14887bd2.rlib: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

/root/repo/target/release/deps/libgr_phy-585f366e14887bd2.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/capture.rs crates/phy/src/channel.rs crates/phy/src/error_model.rs crates/phy/src/params.rs crates/phy/src/position.rs crates/phy/src/rssi.rs

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/capture.rs:
crates/phy/src/channel.rs:
crates/phy/src/error_model.rs:
crates/phy/src/params.rs:
crates/phy/src/position.rs:
crates/phy/src/rssi.rs:
