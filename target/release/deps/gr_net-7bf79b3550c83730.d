/root/repo/target/release/deps/gr_net-7bf79b3550c83730.d: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libgr_net-7bf79b3550c83730.rlib: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libgr_net-7bf79b3550c83730.rmeta: crates/net/src/lib.rs crates/net/src/builder.rs crates/net/src/metrics.rs crates/net/src/network.rs crates/net/src/stats.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/builder.rs:
crates/net/src/metrics.rs:
crates/net/src/network.rs:
crates/net/src/stats.rs:
crates/net/src/trace.rs:
