/root/repo/target/release/deps/greedy80211_repro-199d6336cabc051c.d: src/lib.rs

/root/repo/target/release/deps/libgreedy80211_repro-199d6336cabc051c.rlib: src/lib.rs

/root/repo/target/release/deps/libgreedy80211_repro-199d6336cabc051c.rmeta: src/lib.rs

src/lib.rs:
