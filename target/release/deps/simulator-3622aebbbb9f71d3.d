/root/repo/target/release/deps/simulator-3622aebbbb9f71d3.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-3622aebbbb9f71d3: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
