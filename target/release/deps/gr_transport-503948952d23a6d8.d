/root/repo/target/release/deps/gr_transport-503948952d23a6d8.d: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libgr_transport-503948952d23a6d8.rlib: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libgr_transport-503948952d23a6d8.rmeta: crates/transport/src/lib.rs crates/transport/src/packet.rs crates/transport/src/rto.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/packet.rs:
crates/transport/src/rto.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
