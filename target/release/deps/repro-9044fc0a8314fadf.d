/root/repo/target/release/deps/repro-9044fc0a8314fadf.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-9044fc0a8314fadf: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
