/root/repo/target/release/deps/gr_obs-7fd85f6383da5be2.d: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

/root/repo/target/release/deps/libgr_obs-7fd85f6383da5be2.rlib: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

/root/repo/target/release/deps/libgr_obs-7fd85f6383da5be2.rmeta: crates/obs/src/lib.rs crates/obs/src/ambient.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/profile.rs crates/obs/src/recorder.rs crates/obs/src/shared.rs

crates/obs/src/lib.rs:
crates/obs/src/ambient.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/profile.rs:
crates/obs/src/recorder.rs:
crates/obs/src/shared.rs:
