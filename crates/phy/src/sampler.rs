//! Precomputed sampling tables for the event-dispatch hot path.
//!
//! The simulator's inner loop used to recompute three pure functions per
//! event: log-distance received power (`log10` + `sqrt` per node pair),
//! frame error rate (`ln`/`exp` per reception) and frame airtime (wide
//! integer division per transmission). All three depend only on values
//! fixed at network-assembly time — node positions, the configured error
//! models, the PHY's rates — so the network builds these tables once and
//! the hot path reduces to indexed loads plus the *same RNG draws in the
//! same order* as the direct computation (DESIGN.md §16).

use sim::{SimDuration, SimRng};

use crate::airtime;
use crate::channel::{ChannelModel, Reach};
use crate::error_model::ErrorModel;
use crate::params::PhyParams;
use crate::position::Position;

/// Dense per-link propagation table: reach classification and median
/// received power for every ordered `(src, dst)` node pair.
///
/// Positions are static after assembly, so both quantities are pure
/// functions of the pair. `power_dbm` stores exactly
/// [`ChannelModel::rx_power_dbm`] of the pair distance — the value the
/// capture comparison and the RSSI jitter center on — so lookups are
/// bit-identical to the direct computation.
#[derive(Debug, Clone)]
pub struct LinkTable {
    n: usize,
    reach: Vec<Reach>,
    power_dbm: Vec<f64>,
}

impl LinkTable {
    /// Builds the table for `positions` under `channel`.
    pub fn build(channel: &ChannelModel, positions: &[Position]) -> Self {
        let n = positions.len();
        let mut reach = Vec::with_capacity(n * n);
        let mut power_dbm = Vec::with_capacity(n * n);
        for a in positions {
            for b in positions {
                let d = a.distance_to(*b);
                reach.push(channel.reach(d));
                power_dbm.push(channel.rx_power_dbm(d));
            }
        }
        LinkTable {
            n,
            reach,
            power_dbm,
        }
    }

    /// Number of nodes the table covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// How `src`'s transmissions reach `dst`.
    #[inline]
    pub fn reach(&self, src: usize, dst: usize) -> Reach {
        self.reach[src * self.n + dst]
    }

    /// Median received power in dBm at `dst` for a transmission from
    /// `src`.
    #[inline]
    pub fn power_dbm(&self, src: usize, dst: usize) -> f64 {
        self.power_dbm[src * self.n + dst]
    }
}

/// Cap on memoized `(size, value)` pairs per model / per rate. Real
/// campaigns see a handful of distinct frame sizes (three control sizes
/// plus one data size per flow payload); anything past the cap falls
/// back to the direct computation instead of growing the scan.
const CACHE_CAP: usize = 64;

/// Interned error models with per-model FER memoization.
///
/// [`ErrorModel::fer`] costs an `ln` and an `exp` per call; frame sizes
/// repeat endlessly, so the table caches the *exact* `fer` output per
/// `(model, size)` and feeds it to the same single `rng.chance(p)` draw
/// the direct path makes — corruption verdicts are bit-identical.
#[derive(Debug, Clone, Default)]
pub struct FerTable {
    models: Vec<ErrorModel>,
    caches: Vec<Vec<(u32, f64)>>,
}

impl FerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FerTable::default()
    }

    /// Interns `em`, returning its dense index; equal models share one
    /// entry (and one cache).
    pub fn intern(&mut self, em: ErrorModel) -> u32 {
        if let Some(i) = self.models.iter().position(|m| *m == em) {
            return i as u32;
        }
        self.models.push(em);
        self.caches.push(Vec::new());
        (self.models.len() - 1) as u32
    }

    /// The interned model at `idx`.
    pub fn model(&self, idx: u32) -> &ErrorModel {
        &self.models[idx as usize]
    }

    /// Memoized frame error rate; exact [`ErrorModel::fer`] output.
    #[inline]
    pub fn fer(&mut self, idx: u32, frame_bytes: usize) -> f64 {
        let cache = &mut self.caches[idx as usize];
        let key = frame_bytes as u32;
        if let Some(&(_, p)) = cache.iter().find(|&&(b, _)| b == key) {
            return p;
        }
        let p = self.models[idx as usize].fer(frame_bytes);
        if cache.len() < CACHE_CAP {
            cache.push((key, p));
        }
        p
    }

    /// Samples corruption of one frame: one `chance` draw at the
    /// memoized FER — the same draw [`ErrorModel::corrupts`] makes.
    #[inline]
    pub fn corrupts(&mut self, idx: u32, frame_bytes: usize, rng: &mut SimRng) -> bool {
        rng.chance(self.fer(idx, frame_bytes))
    }

    /// Prefills the cache for `idx` with a batch of expected frame
    /// sizes via [`ErrorModel::fer_batch`], so the first reception of
    /// each size already hits the cache.
    pub fn prefill(&mut self, idx: u32, sizes: &[usize]) {
        let mut fers = Vec::with_capacity(sizes.len());
        self.models[idx as usize].fer_batch(sizes, &mut fers);
        let cache = &mut self.caches[idx as usize];
        for (&b, &p) in sizes.iter().zip(&fers) {
            let key = b as u32;
            if cache.len() < CACHE_CAP && !cache.iter().any(|&(k, _)| k == key) {
                cache.push((key, p));
            }
        }
    }
}

/// Memoized frame airtimes per `(size, rate)`.
///
/// [`airtime::tx_duration_at`] does exact wide-integer division (DSSS)
/// or symbol rounding (OFDM) per call; the distinct `(size, rate)` set
/// in a run is tiny, so a linear-scan memo makes airtime a load.
#[derive(Debug, Clone)]
pub struct AirtimeTable {
    params: PhyParams,
    entries: Vec<(u32, u64, SimDuration)>,
}

impl AirtimeTable {
    /// Creates an empty table for `params`.
    pub fn new(params: PhyParams) -> Self {
        AirtimeTable {
            params,
            entries: Vec::new(),
        }
    }

    /// The PHY parameters the table computes against.
    pub fn params(&self) -> &PhyParams {
        &self.params
    }

    /// Memoized airtime of a `bytes`-long frame at `rate_bps`; exact
    /// [`airtime::tx_duration_at`] output.
    #[inline]
    pub fn at(&mut self, bytes: usize, rate_bps: u64) -> SimDuration {
        let key = bytes as u32;
        if let Some(&(_, _, d)) = self
            .entries
            .iter()
            .find(|&&(b, r, _)| b == key && r == rate_bps)
        {
            return d;
        }
        let d = airtime::tx_duration_at(&self.params, bytes, rate_bps);
        if self.entries.len() < CACHE_CAP {
            self.entries.push((key, rate_bps, d));
        }
        d
    }

    /// Memoized airtime at the PHY's basic (control-frame) rate.
    #[inline]
    pub fn basic(&mut self, bytes: usize) -> SimDuration {
        self.at(bytes, self.params.basic_rate_bps)
    }

    /// Memoized airtime at the PHY's default data rate.
    #[inline]
    pub fn data(&mut self, bytes: usize) -> SimDuration {
        self.at(bytes, self.params.data_rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::ErrorUnit;

    #[test]
    fn link_table_matches_direct_computation() {
        let ch = ChannelModel::with_ranges(55.0, 99.0);
        let pos = [
            Position::new(0.0, 0.0),
            Position::new(50.0, 0.0),
            Position::new(80.0, 30.0),
            Position::new(200.0, 0.0),
        ];
        let t = LinkTable::build(&ch, &pos);
        assert_eq!(t.nodes(), 4);
        for a in 0..pos.len() {
            for b in 0..pos.len() {
                let d = pos[a].distance_to(pos[b]);
                assert_eq!(t.reach(a, b), ch.reach(d), "reach {a}->{b}");
                assert_eq!(
                    t.power_dbm(a, b).to_bits(),
                    ch.rx_power_dbm(d).to_bits(),
                    "power {a}->{b} must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn fer_table_interns_and_matches_exactly() {
        let em_a = ErrorModel::new(ErrorUnit::Byte, 2e-4).unwrap();
        let em_b = ErrorModel::new(ErrorUnit::Byte, 8e-4).unwrap();
        let mut t = FerTable::new();
        let ia = t.intern(em_a);
        let ib = t.intern(em_b);
        assert_eq!(t.intern(em_a), ia, "equal models share an entry");
        assert_ne!(ia, ib);
        for bytes in [38, 44, 1052, 1102, 38] {
            assert_eq!(
                t.fer(ia, bytes).to_bits(),
                em_a.fer(bytes).to_bits(),
                "memoized FER must be bit-identical at {bytes}"
            );
        }
        // Verdicts consume the RNG stream identically to the direct path.
        let mut r1 = sim::SimRng::new(9);
        let mut r2 = sim::SimRng::new(9);
        for bytes in [38, 1102, 44, 1102, 38, 38] {
            assert_eq!(
                t.corrupts(ib, bytes, &mut r1),
                em_b.corrupts(bytes, &mut r2)
            );
        }
        assert_eq!(r1.next_u64(), r2.next_u64(), "stream positions agree");
    }

    #[test]
    fn fer_batch_and_prefill_match_sequential() {
        let em = ErrorModel::new(ErrorUnit::Bit, 1e-5).unwrap();
        let sizes = [38usize, 44, 1052, 38, 2304];
        let mut batch = Vec::new();
        em.fer_batch(&sizes, &mut batch);
        for (&b, &p) in sizes.iter().zip(&batch) {
            assert_eq!(p.to_bits(), em.fer(b).to_bits());
        }
        let mut t = FerTable::new();
        let i = t.intern(em);
        t.prefill(i, &sizes);
        for &b in &sizes {
            assert_eq!(t.fer(i, b).to_bits(), em.fer(b).to_bits());
        }
        // Batch corruption draws in slice order ≡ per-frame draws.
        let mut r1 = sim::SimRng::new(3);
        let mut r2 = sim::SimRng::new(3);
        let mut verdicts = Vec::new();
        em.corrupts_batch(&sizes, &mut r1, &mut verdicts);
        let sequential: Vec<bool> = sizes.iter().map(|&b| em.corrupts(b, &mut r2)).collect();
        assert_eq!(verdicts, sequential);
    }

    #[test]
    fn airtime_table_matches_direct_computation() {
        for params in [PhyParams::dot11b(), PhyParams::dot11a()] {
            let mut t = AirtimeTable::new(params);
            for bytes in [14usize, 20, 28, 1052, 14, 1052] {
                assert_eq!(t.basic(bytes), airtime::tx_duration_basic(&params, bytes));
                assert_eq!(t.data(bytes), airtime::tx_duration(&params, bytes));
                assert_eq!(
                    t.at(bytes, 5_500_000),
                    airtime::tx_duration_at(&params, bytes, 5_500_000)
                );
            }
        }
    }
}
