//! Per-standard PHY timing parameters and rates.
//!
//! The paper evaluates 802.11b at 11 Mb/s and 802.11a at 6 Mb/s with fixed
//! rates (no rate adaptation). Timing constants follow IEEE 802.11-1999 and
//! 802.11a-1999; they match the ns-2 defaults the paper used.

use sim::SimDuration;

/// Which 802.11 PHY is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyStandard {
    /// 802.11b DSSS, 11 Mb/s data rate, 1 Mb/s basic (control) rate,
    /// long PLCP preamble.
    Dot11b,
    /// 802.11a OFDM, 6 Mb/s data and control rate.
    Dot11a,
}

impl std::fmt::Display for PhyStandard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhyStandard::Dot11b => write!(f, "802.11b"),
            PhyStandard::Dot11a => write!(f, "802.11a"),
        }
    }
}

/// Timing and rate parameters of one 802.11 PHY configuration.
///
/// Construct via [`PhyParams::dot11b`], [`PhyParams::dot11a`] or
/// [`PhyParams::for_standard`]. All durations are exact per the standard.
///
/// # Examples
///
/// ```
/// use gr_phy::PhyParams;
///
/// let b = PhyParams::dot11b();
/// assert_eq!(b.slot.as_micros(), 20);
/// assert_eq!(b.difs.as_micros(), 50);
/// assert_eq!(b.cw_min, 31);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyParams {
    /// Which standard these parameters describe.
    pub standard: PhyStandard,
    /// Slot time (aSlotTime).
    pub slot: SimDuration,
    /// Short inter-frame space.
    pub sifs: SimDuration,
    /// DCF inter-frame space = SIFS + 2·slot.
    pub difs: SimDuration,
    /// Minimum contention window (aCWmin), in slots; backoff is uniform on
    /// `[0, cw]`.
    pub cw_min: u32,
    /// Maximum contention window (aCWmax), in slots.
    pub cw_max: u32,
    /// Data rate in bits per second (payload-bearing frames).
    pub data_rate_bps: u64,
    /// Basic rate in bits per second (RTS/CTS/ACK control frames).
    pub basic_rate_bps: u64,
    /// PLCP preamble + header airtime prepended to every frame.
    /// For 802.11a this is preamble (16 µs) + SIGNAL (4 µs); payload bits
    /// additionally round up to 4 µs OFDM symbols (see [`crate::airtime`]).
    pub plcp_overhead: SimDuration,
    /// OFDM data bits per symbol at the data rate (0 for DSSS, where bits
    /// stream at the nominal rate without symbol rounding).
    pub bits_per_symbol: u32,
    /// OFDM symbol duration (zero for DSSS).
    pub symbol: SimDuration,
}

impl PhyParams {
    /// 802.11b DSSS at 11 Mb/s (long preamble), the paper's default.
    pub const fn dot11b() -> Self {
        PhyParams {
            standard: PhyStandard::Dot11b,
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            cw_min: 31,
            cw_max: 1023,
            data_rate_bps: 11_000_000,
            basic_rate_bps: 1_000_000,
            // Long PLCP preamble (144 µs) + PLCP header (48 µs) at 1 Mb/s.
            plcp_overhead: SimDuration::from_micros(192),
            bits_per_symbol: 0,
            symbol: SimDuration::ZERO,
        }
    }

    /// 802.11a OFDM at 6 Mb/s, used by the paper for comparison and for the
    /// testbed experiments.
    pub const fn dot11a() -> Self {
        PhyParams {
            standard: PhyStandard::Dot11a,
            slot: SimDuration::from_micros(9),
            sifs: SimDuration::from_micros(16),
            difs: SimDuration::from_micros(34),
            cw_min: 15,
            cw_max: 1023,
            data_rate_bps: 6_000_000,
            basic_rate_bps: 6_000_000,
            // 16 µs preamble + 4 µs SIGNAL field.
            plcp_overhead: SimDuration::from_micros(20),
            // 6 Mb/s OFDM: 24 data bits per 4 µs symbol.
            bits_per_symbol: 24,
            symbol: SimDuration::from_micros(4),
        }
    }

    /// Parameters for a given [`PhyStandard`].
    pub const fn for_standard(standard: PhyStandard) -> Self {
        match standard {
            PhyStandard::Dot11b => Self::dot11b(),
            PhyStandard::Dot11a => Self::dot11a(),
        }
    }

    /// Extended inter-frame space used after receiving a corrupted frame:
    /// `EIFS = SIFS + DIFS + ACK airtime at the basic rate`.
    pub fn eifs(&self, ack_bytes: usize) -> SimDuration {
        self.sifs + self.difs + crate::airtime::tx_duration_at(self, ack_bytes, self.basic_rate_bps)
    }

    /// How long a transmitter waits for a CTS or ACK before concluding the
    /// exchange failed: SIFS + slot + the response's airtime at the basic
    /// rate, plus one slot of margin (ns-2 uses a comparable timeout).
    pub fn response_timeout(&self, response_bytes: usize) -> SimDuration {
        self.sifs
            + self.slot
            + crate::airtime::tx_duration_at(self, response_bytes, self.basic_rate_bps)
            + self.slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot11b_constants() {
        let p = PhyParams::dot11b();
        assert_eq!(p.slot.as_micros(), 20);
        assert_eq!(p.sifs.as_micros(), 10);
        assert_eq!(p.difs.as_micros(), 50);
        assert_eq!(p.difs, p.sifs + p.slot * 2);
        assert_eq!(p.cw_min, 31);
        assert_eq!(p.cw_max, 1023);
        assert_eq!(p.data_rate_bps, 11_000_000);
        assert_eq!(p.plcp_overhead.as_micros(), 192);
    }

    #[test]
    fn dot11a_constants() {
        let p = PhyParams::dot11a();
        assert_eq!(p.slot.as_micros(), 9);
        assert_eq!(p.sifs.as_micros(), 16);
        assert_eq!(p.difs.as_micros(), 34);
        assert_eq!(p.difs, p.sifs + p.slot * 2);
        assert_eq!(p.cw_min, 15);
        assert_eq!(p.bits_per_symbol, 24);
    }

    #[test]
    fn for_standard_matches_constructors() {
        assert_eq!(
            PhyParams::for_standard(PhyStandard::Dot11b),
            PhyParams::dot11b()
        );
        assert_eq!(
            PhyParams::for_standard(PhyStandard::Dot11a),
            PhyParams::dot11a()
        );
    }

    #[test]
    fn eifs_exceeds_difs() {
        for p in [PhyParams::dot11b(), PhyParams::dot11a()] {
            assert!(
                p.eifs(14) > p.difs,
                "EIFS must exceed DIFS for {}",
                p.standard
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PhyStandard::Dot11b.to_string(), "802.11b");
        assert_eq!(PhyStandard::Dot11a.to_string(), "802.11a");
    }
}
