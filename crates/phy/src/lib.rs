//! IEEE 802.11a/b physical layer and channel models.
//!
//! This crate provides everything the MAC and the network runtime need to
//! know about the radio:
//!
//! * [`params`] — per-standard timing constants (slot, SIFS, DIFS, CWmin…)
//!   and PHY rates for 802.11b (DSSS, 11 Mb/s) and 802.11a (OFDM, 6 Mb/s),
//!   the two configurations evaluated in the paper;
//! * [`airtime`] — exact frame transmission durations, including PLCP
//!   preamble/header overhead and OFDM symbol rounding;
//! * [`position`] / [`channel`] — node placement and ns-2-style threshold
//!   propagation (communication range vs. carrier-sense range), plus a
//!   log-distance RSSI model;
//! * [`error_model`] — ns-2 `ErrorModel` equivalent with bit / byte /
//!   packet error units (the paper's BER→FER table is a per-byte process);
//! * [`capture`] — the capture effect used both by the ACK-spoofing
//!   misbehavior and by its RSSI-based detection;
//! * [`rssi`] — RSSI observation model with shadowing jitter, calibrated to
//!   the paper's testbed measurement (≈95 % of samples within 1 dB of the
//!   link median).

#![warn(missing_docs)]
pub mod airtime;
pub mod capture;
pub mod channel;
pub mod error_model;
pub mod obs;
pub mod params;
pub mod position;
pub mod rssi;
pub mod sampler;

pub use airtime::tx_duration;
pub use capture::CaptureModel;
pub use channel::{ChannelIndex, ChannelModel};
pub use error_model::{ErrorModel, ErrorUnit};
pub use params::{PhyParams, PhyStandard};
pub use position::Position;
pub use rssi::RssiModel;
pub use sampler::{AirtimeTable, FerTable, LinkTable};
