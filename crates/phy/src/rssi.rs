//! RSSI observation model.
//!
//! The paper's spoofed-ACK detector keys on received signal strength: for a
//! stationary pair, per-packet RSSI varies little around the link median
//! (their 16-node office testbed showed ≈95 % of samples within 1 dB of the
//! median, Fig. 21). We model the median with log-distance path loss and
//! per-packet samples with zero-mean Gaussian shadowing jitter whose default
//! σ is calibrated so that P(|X| ≤ 1 dB) ≈ 0.95 (σ = 1/1.96 ≈ 0.51 dB).

use sim::SimRng;

/// Log-distance path-loss RSSI model with per-packet Gaussian jitter.
///
/// `median(d) = tx_power − pl0 − 10·n·log10(max(d, d0)/d0)`
///
/// # Examples
///
/// ```
/// use gr_phy::RssiModel;
/// use sim::SimRng;
///
/// let m = RssiModel::default();
/// let mut rng = SimRng::new(1);
/// let median = m.median_dbm(10.0);
/// let sample = m.sample_dbm(10.0, &mut rng);
/// assert!((sample - median).abs() < 5.0); // jitter is sub-dB scale
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RssiModel {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance, in dB.
    pub pl0_db: f64,
    /// Reference distance in meters.
    pub d0_m: f64,
    /// Path-loss exponent (≈2 free space, 3–4 indoors).
    pub exponent: f64,
    /// Standard deviation of per-packet jitter, in dB.
    pub jitter_sigma_db: f64,
}

impl Default for RssiModel {
    /// Indoor-office defaults: 15 dBm transmit power, 40 dB loss at 1 m,
    /// exponent 3.0, jitter σ = 0.51 dB (95 % of samples within 1 dB).
    fn default() -> Self {
        RssiModel {
            tx_power_dbm: 15.0,
            pl0_db: 40.0,
            d0_m: 1.0,
            exponent: 3.0,
            jitter_sigma_db: 1.0 / 1.96,
        }
    }
}

impl RssiModel {
    /// Median RSSI in dBm at distance `d` meters. Distances below the
    /// reference distance clamp to it.
    pub fn median_dbm(&self, d: f64) -> f64 {
        let d = d.max(self.d0_m);
        self.tx_power_dbm - self.pl0_db - 10.0 * self.exponent * (d / self.d0_m).log10()
    }

    /// One per-packet RSSI observation at distance `d`: median plus
    /// Gaussian jitter.
    pub fn sample_dbm(&self, d: f64, rng: &mut SimRng) -> f64 {
        self.median_dbm(d) + rng.normal(self.jitter_sigma_db)
    }

    /// One per-packet RSSI observation around a *precomputed* link
    /// median. Bit-identical (same value, same single RNG draw) to
    /// [`RssiModel::sample_dbm`] when `median_dbm` came from
    /// [`RssiModel::median_dbm`] at the same distance — the form the
    /// hot path uses with the per-link power table.
    pub fn sample_from_median(&self, median_dbm: f64, rng: &mut SimRng) -> f64 {
        median_dbm + rng.normal(self.jitter_sigma_db)
    }

    /// Ratio of two received powers in dB (`a − b`), the quantity compared
    /// against the capture threshold.
    pub fn power_ratio_db(a_dbm: f64, b_dbm: f64) -> f64 {
        a_dbm - b_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_monotone_decreasing() {
        let m = RssiModel::default();
        let mut last = f64::INFINITY;
        for d in [1.0, 2.0, 5.0, 10.0, 50.0, 100.0] {
            let r = m.median_dbm(d);
            assert!(r < last);
            last = r;
        }
    }

    #[test]
    fn below_reference_distance_clamps() {
        let m = RssiModel::default();
        assert_eq!(m.median_dbm(0.1), m.median_dbm(1.0));
    }

    #[test]
    fn log_distance_slope() {
        let m = RssiModel::default();
        // Every 10x distance costs 10·n dB.
        let drop = m.median_dbm(1.0) - m.median_dbm(10.0);
        assert!((drop - 30.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_calibration_95pct_within_1db() {
        let m = RssiModel::default();
        let mut rng = SimRng::new(42);
        let median = m.median_dbm(20.0);
        let n = 50_000;
        let within = (0..n)
            .filter(|_| (m.sample_dbm(20.0, &mut rng) - median).abs() <= 1.0)
            .count();
        let frac = within as f64 / n as f64;
        assert!(
            (frac - 0.95).abs() < 0.01,
            "fraction within 1 dB = {frac}, expected ≈0.95"
        );
    }

    #[test]
    fn power_ratio() {
        assert_eq!(RssiModel::power_ratio_db(-40.0, -50.0), 10.0);
    }
}
