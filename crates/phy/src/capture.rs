//! The capture effect.
//!
//! When two frames overlap at a receiver, the stronger one is demodulated
//! correctly if its received power exceeds the other's by at least the
//! capture threshold; otherwise both are lost (a collision). ns-2 models
//! this with `CPThresh_ = 10` (10 dB), which we adopt as the default.
//!
//! Capture is central to the paper's ACK-spoofing analysis: when both the
//! genuine receiver and the greedy receiver transmit a MAC ACK, capture at
//! the sender decides which ACK is heard (§IV-B), and the detector's
//! recovery rule ("ignore ACKs the true receiver would have captured")
//! inverts the same relation (§VII-B).

/// Outcome of two overlapping receptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureOutcome {
    /// The first frame is received; the second is lost.
    FirstCaptures,
    /// The second frame is received; the first is lost.
    SecondCaptures,
    /// Neither dominates: both frames are corrupted.
    Collision,
}

/// Capture decision rule parameterized by a power-ratio threshold in dB.
///
/// # Examples
///
/// ```
/// use gr_phy::CaptureModel;
/// use gr_phy::capture::CaptureOutcome;
///
/// let cap = CaptureModel::default(); // 10 dB
/// assert_eq!(cap.decide(-40.0, -55.0), CaptureOutcome::FirstCaptures);
/// assert_eq!(cap.decide(-55.0, -40.0), CaptureOutcome::SecondCaptures);
/// assert_eq!(cap.decide(-45.0, -40.0), CaptureOutcome::Collision);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureModel {
    /// Minimum power advantage, in dB, for the stronger frame to survive.
    pub threshold_db: f64,
}

impl Default for CaptureModel {
    /// ns-2's `CPThresh_` default of 10 dB.
    fn default() -> Self {
        CaptureModel { threshold_db: 10.0 }
    }
}

impl CaptureModel {
    /// Creates a model with an explicit threshold in dB.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_db` is negative.
    pub fn new(threshold_db: f64) -> Self {
        assert!(
            threshold_db >= 0.0,
            "capture threshold must be non-negative"
        );
        CaptureModel { threshold_db }
    }

    /// Decides the fate of two overlapping frames with received powers
    /// `first_dbm` and `second_dbm`.
    pub fn decide(&self, first_dbm: f64, second_dbm: f64) -> CaptureOutcome {
        let diff = first_dbm - second_dbm;
        if diff >= self.threshold_db {
            CaptureOutcome::FirstCaptures
        } else if -diff >= self.threshold_db {
            CaptureOutcome::SecondCaptures
        } else {
            CaptureOutcome::Collision
        }
    }

    /// Reduces a set of overlapping received powers to the surviving frame
    /// index, if any: the strongest frame survives iff it beats the sum of
    /// the rest... — conservatively, iff it beats the *second strongest* by
    /// the threshold (pairwise rule, matching ns-2's behaviour).
    pub fn survivor(&self, powers_dbm: &[f64]) -> Option<usize> {
        match powers_dbm.len() {
            0 => None,
            1 => Some(0),
            _ => {
                let mut best = 0;
                for (i, &p) in powers_dbm.iter().enumerate() {
                    if p > powers_dbm[best] {
                        best = i;
                    }
                }
                let second = powers_dbm
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != best)
                    .map(|(_, &p)| p)
                    .fold(f64::NEG_INFINITY, f64::max);
                (powers_dbm[best] - second >= self.threshold_db).then_some(best)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_inclusive() {
        let cap = CaptureModel::new(10.0);
        assert_eq!(cap.decide(-40.0, -50.0), CaptureOutcome::FirstCaptures);
        assert_eq!(cap.decide(-40.0, -49.9), CaptureOutcome::Collision);
    }

    #[test]
    fn symmetric() {
        let cap = CaptureModel::default();
        assert_eq!(cap.decide(-30.0, -50.0), CaptureOutcome::FirstCaptures);
        assert_eq!(cap.decide(-50.0, -30.0), CaptureOutcome::SecondCaptures);
    }

    #[test]
    fn zero_threshold_always_captures_on_any_difference() {
        let cap = CaptureModel::new(0.0);
        assert_eq!(cap.decide(-40.0, -40.0), CaptureOutcome::FirstCaptures);
    }

    #[test]
    fn survivor_of_many() {
        let cap = CaptureModel::default();
        assert_eq!(cap.survivor(&[]), None);
        assert_eq!(cap.survivor(&[-40.0]), Some(0));
        assert_eq!(cap.survivor(&[-40.0, -60.0, -70.0]), Some(0));
        assert_eq!(cap.survivor(&[-40.0, -45.0, -70.0]), None);
        assert_eq!(cap.survivor(&[-60.0, -40.0, -55.0]), Some(1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        let _ = CaptureModel::new(-1.0);
    }
}
