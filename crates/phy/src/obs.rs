//! PHY-layer flight-recorder events.
//!
//! The runtime (which owns the medium) calls [`record_tx_start`] when a
//! station keys up and [`record_rx`] when a reception resolves, so the
//! recorded stream captures exactly what the paper's frame traces show:
//! every transmission, and for every in-range listener whether the frame
//! decoded, was corrupted by noise, or lost the capture race.
//!
//! Frame kinds travel as compact codes (see [`frame code`](FRAME_RTS)
//! constants) because the PHY does not know the MAC's `FrameKind` enum;
//! the `net::trace` adapter maps codes back.

use ::obs::{EventKind, Layer, RecorderHandle};
use sim::{SimDuration, SimTime};

/// Frame code for RTS in event payloads.
pub const FRAME_RTS: u8 = 0;
/// Frame code for CTS in event payloads.
pub const FRAME_CTS: u8 = 1;
/// Frame code for DATA in event payloads.
pub const FRAME_DATA: u8 = 2;
/// Frame code for ACK in event payloads.
pub const FRAME_ACK: u8 = 3;

/// Human-readable name for a frame code in event payloads.
pub fn frame_name(code: u8) -> &'static str {
    match code {
        FRAME_RTS => "RTS",
        FRAME_CTS => "CTS",
        FRAME_DATA => "DATA",
        FRAME_ACK => "ACK",
        _ => "UNKNOWN",
    }
}

/// A station began transmitting. Node = transmitter.
pub static TX_START: EventKind = EventKind {
    name: "tx_start",
    layer: Layer::Phy,
    fields: &["dst", "frame", "airtime_us"],
};

/// A station decoded a frame. Node = receiver.
pub static RX_OK: EventKind = EventKind {
    name: "rx_ok",
    layer: Layer::Phy,
    fields: &["tx", "dst", "frame", "airtime_us"],
};

/// A station received a frame corrupted by channel noise (headers still
/// readable — the paper's Table I measurement). Node = receiver.
pub static RX_NOISE: EventKind = EventKind {
    name: "rx_noise",
    layer: Layer::Phy,
    fields: &["tx", "dst", "frame", "airtime_us"],
};

/// A station lost the capture race: overlapping frames within the
/// capture threshold. Node = receiver.
pub static RX_COLLISION: EventKind = EventKind {
    name: "rx_collision",
    layer: Layer::Phy,
    fields: &["tx", "dst", "frame", "airtime_us"],
};

/// How a reception resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// Decoded correctly.
    Ok,
    /// Corrupted by the link error model.
    Noise,
    /// Lost the capture decision among overlapping frames.
    Collision,
}

/// Records a transmission start.
pub fn record_tx_start(
    rec: &RecorderHandle,
    at: SimTime,
    tx: u16,
    dst: u16,
    frame: u8,
    airtime: SimDuration,
) {
    rec.borrow_mut().emit(
        at,
        tx,
        &TX_START,
        &[dst as f64, frame as f64, airtime.as_micros() as f64],
    );
}

/// Records a reception outcome at `node`.
#[allow(clippy::too_many_arguments)] // mirrors the trace-record tuple
pub fn record_rx(
    rec: &RecorderHandle,
    at: SimTime,
    node: u16,
    tx: u16,
    dst: u16,
    frame: u8,
    outcome: RxOutcome,
    airtime: SimDuration,
) {
    let kind = match outcome {
        RxOutcome::Ok => &RX_OK,
        RxOutcome::Noise => &RX_NOISE,
        RxOutcome::Collision => &RX_COLLISION,
    };
    rec.borrow_mut().emit(
        at,
        node,
        kind,
        &[
            tx as f64,
            dst as f64,
            frame as f64,
            airtime.as_micros() as f64,
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ::obs::ObsSpec;

    #[test]
    fn phy_events_carry_frame_codes() {
        let rec = ObsSpec::default().recorder();
        record_tx_start(
            &rec,
            SimTime::from_micros(10),
            0,
            1,
            FRAME_RTS,
            SimDuration::from_micros(352),
        );
        record_rx(
            &rec,
            SimTime::from_micros(362),
            1,
            0,
            1,
            FRAME_RTS,
            RxOutcome::Ok,
            SimDuration::from_micros(352),
        );
        let report = rec.borrow_mut().drain_report();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].kind.name, "tx_start");
        assert_eq!(report.events[1].kind.name, "rx_ok");
        assert_eq!(report.events[1].vals[2], FRAME_RTS as f64);
    }
}
