//! Threshold propagation model (ns-2 style).
//!
//! A transmission is *decodable* within the communication range and
//! *sensed* (raises carrier sense, causes interference) within the larger
//! carrier-sense range. The paper's GRC evaluation (Fig. 23) uses 55 m
//! communication and 99 m interference ranges; most other experiments place
//! all nodes within communication range of each other.

use crate::position::Position;
use crate::rssi::RssiModel;

/// A logical 802.11 channel number.
///
/// The multi-cell world pins each cell to one channel; transmissions on
/// different channels never couple (adjacent-channel leakage is not
/// modeled — hotspot deployments assign the orthogonal channels 1/6/11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ChannelIndex(pub u8);

impl std::fmt::Display for ChannelIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// How one node's transmission reaches another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reach {
    /// Close enough to decode the frame (also implies carrier sense).
    Decode,
    /// Only close enough to sense energy / be interfered with.
    Sense,
    /// Out of range entirely.
    None,
}

/// Distance-threshold propagation plus a log-distance RSSI model.
///
/// # Examples
///
/// ```
/// use gr_phy::ChannelModel;
/// use gr_phy::channel::Reach;
///
/// let ch = ChannelModel::with_ranges(55.0, 99.0);
/// assert_eq!(ch.reach(10.0), Reach::Decode);
/// assert_eq!(ch.reach(70.0), Reach::Sense);
/// assert_eq!(ch.reach(150.0), Reach::None);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelModel {
    comm_range_m: f64,
    cs_range_m: f64,
    rssi: RssiModel,
}

impl Default for ChannelModel {
    /// A "single collision domain" channel: every node decodes every other
    /// node, as in most of the paper's scenarios.
    fn default() -> Self {
        ChannelModel::with_ranges(1.0e6, 1.0e6)
    }
}

impl ChannelModel {
    /// Creates a channel with the given communication and carrier-sense
    /// ranges in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cs_range_m < comm_range_m` or either is non-positive.
    pub fn with_ranges(comm_range_m: f64, cs_range_m: f64) -> Self {
        assert!(comm_range_m > 0.0, "communication range must be positive");
        assert!(
            cs_range_m >= comm_range_m,
            "carrier-sense range must be at least the communication range"
        );
        ChannelModel {
            comm_range_m,
            cs_range_m,
            rssi: RssiModel::default(),
        }
    }

    /// The GRC evaluation topology of the paper: 55 m communication range,
    /// 99 m interference range (Fig. 23).
    pub fn grc_evaluation() -> Self {
        ChannelModel::with_ranges(55.0, 99.0)
    }

    /// Replaces the RSSI model.
    pub fn with_rssi(mut self, rssi: RssiModel) -> Self {
        self.rssi = rssi;
        self
    }

    /// Communication (decode) range in meters.
    pub fn comm_range_m(&self) -> f64 {
        self.comm_range_m
    }

    /// Carrier-sense (interference) range in meters.
    pub fn cs_range_m(&self) -> f64 {
        self.cs_range_m
    }

    /// The RSSI model used for received-power queries.
    pub fn rssi(&self) -> &RssiModel {
        &self.rssi
    }

    /// Classifies how a transmission at distance `d` meters reaches a node.
    pub fn reach(&self, d: f64) -> Reach {
        if d <= self.comm_range_m {
            Reach::Decode
        } else if d <= self.cs_range_m {
            Reach::Sense
        } else {
            Reach::None
        }
    }

    /// Convenience: classify reach between two positions.
    pub fn reach_between(&self, a: Position, b: Position) -> Reach {
        self.reach(a.distance_to(b))
    }

    /// Median received power in dBm at distance `d` (no fading jitter).
    pub fn rx_power_dbm(&self, d: f64) -> f64 {
        self.rssi.median_dbm(d)
    }

    /// Whether a transmitter at `tx` raises carrier sense at `rx` — the
    /// cross-cell coupling predicate. Cells are independent BSSes, so a
    /// neighbor-cell frame is never decoded; within the carrier-sense
    /// range it contributes busy time (energy) only.
    pub fn couples(&self, tx: Position, rx: Position) -> bool {
        self.reach_between(tx, rx) != Reach::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_domain() {
        let ch = ChannelModel::default();
        assert_eq!(ch.reach(10_000.0), Reach::Decode);
    }

    #[test]
    fn boundary_distances_inclusive() {
        let ch = ChannelModel::with_ranges(55.0, 99.0);
        assert_eq!(ch.reach(55.0), Reach::Decode);
        assert_eq!(ch.reach(55.0001), Reach::Sense);
        assert_eq!(ch.reach(99.0), Reach::Sense);
        assert_eq!(ch.reach(99.0001), Reach::None);
    }

    #[test]
    fn reach_between_positions() {
        let ch = ChannelModel::grc_evaluation();
        let a = Position::new(0.0, 0.0);
        let b = Position::new(60.0, 0.0);
        assert_eq!(ch.reach_between(a, b), Reach::Sense);
    }

    #[test]
    fn power_decreases_with_distance() {
        let ch = ChannelModel::default();
        assert!(ch.rx_power_dbm(1.0) > ch.rx_power_dbm(10.0));
        assert!(ch.rx_power_dbm(10.0) > ch.rx_power_dbm(100.0));
    }

    #[test]
    #[should_panic(expected = "carrier-sense range")]
    fn cs_smaller_than_comm_panics() {
        let _ = ChannelModel::with_ranges(100.0, 50.0);
    }

    #[test]
    fn coupling_follows_cs_range() {
        let ch = ChannelModel::grc_evaluation();
        let a = Position::new(0.0, 0.0);
        assert!(ch.couples(a, Position::new(99.0, 0.0)));
        assert!(!ch.couples(a, Position::new(99.5, 0.0)));
    }
}
