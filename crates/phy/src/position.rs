//! Node placement on a 2-D plane, in meters.

use std::fmt;

/// A point in the plane, in meters.
///
/// # Examples
///
/// ```
/// use gr_phy::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Position {
    /// The origin.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position at `(x, y)` meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// This position translated by `delta` (vector addition) — maps a
    /// cell-local placement into world coordinates given the cell origin.
    pub fn offset_by(self, delta: Position) -> Position {
        Position::new(self.x + delta.x, self.y + delta.y)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})m", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_to_self() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(-3.0, 5.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn origin_and_display() {
        assert_eq!(Position::ORIGIN, Position::new(0.0, 0.0));
        assert_eq!(Position::new(1.25, 3.0).to_string(), "(1.2, 3.0)m");
    }
}
