//! Frame transmission durations.
//!
//! * DSSS (802.11b): `PLCP overhead + bytes·8 / rate`, no symbol rounding.
//! * OFDM (802.11a): `PLCP overhead + 4 µs · ⌈(16 + 6 + bytes·8) / N_DBPS⌉`
//!   — 16 SERVICE bits and 6 tail bits share the symbol stream with the
//!   payload, per 802.11a-1999 §17.4.3.

use sim::SimDuration;

use crate::params::PhyParams;

/// Airtime of a `bytes`-long MAC frame at the PHY's **data** rate.
///
/// # Examples
///
/// ```
/// use gr_phy::{tx_duration, PhyParams};
///
/// // 1024-byte payload frame at 11 Mb/s: 192 µs PLCP + 8192 bits / 11 Mb/s.
/// let d = tx_duration(&PhyParams::dot11b(), 1024);
/// assert_eq!(d.as_micros(), 192 + 744); // 744.7 µs truncated
/// ```
pub fn tx_duration(params: &PhyParams, bytes: usize) -> SimDuration {
    tx_duration_at(params, bytes, params.data_rate_bps)
}

/// Airtime of a `bytes`-long MAC frame at the PHY's **basic** rate
/// (control frames: RTS, CTS, ACK).
pub fn tx_duration_basic(params: &PhyParams, bytes: usize) -> SimDuration {
    tx_duration_at(params, bytes, params.basic_rate_bps)
}

/// Airtime at an explicit rate in bits per second.
///
/// For OFDM PHYs the payload duration rounds up to whole symbols; the rate
/// is mapped to bits-per-symbol via the 4 µs symbol time.
///
/// # Panics
///
/// Panics if `rate_bps` is zero.
pub fn tx_duration_at(params: &PhyParams, bytes: usize, rate_bps: u64) -> SimDuration {
    assert!(rate_bps > 0, "PHY rate must be positive");
    let bits = bytes as u64 * 8;
    if params.symbol.is_zero() {
        // DSSS: bits stream at the nominal rate; exact division in u128.
        let payload_ns = ((bits as u128 * 1_000_000_000) / rate_bps as u128) as u64;
        params.plcp_overhead + SimDuration::from_nanos(payload_ns)
    } else {
        // OFDM: 16 SERVICE + 6 tail bits, then round up to whole symbols.
        let bits_per_symbol =
            (rate_bps as u128 * params.symbol.as_nanos() as u128 / 1_000_000_000) as u64;
        let bits_per_symbol = bits_per_symbol.max(1);
        let n_sym = (16 + 6 + bits).div_ceil(bits_per_symbol);
        params.plcp_overhead + params.symbol * n_sym
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PhyParams;

    #[test]
    fn dsss_data_frame() {
        let p = PhyParams::dot11b();
        // 1024 bytes at 11 Mb/s = 8192 bits / 11e6 = 744.727 µs + 192 PLCP.
        let d = tx_duration(&p, 1024);
        assert_eq!(d.as_nanos(), 192_000 + 8192 * 1_000_000_000 / 11_000_000);
    }

    #[test]
    fn dsss_control_frame_at_basic_rate() {
        let p = PhyParams::dot11b();
        // 14-byte ACK at 1 Mb/s = 112 µs + 192 µs PLCP = 304 µs.
        let d = tx_duration_basic(&p, 14);
        assert_eq!(d.as_micros(), 304);
    }

    #[test]
    fn ofdm_symbol_rounding() {
        let p = PhyParams::dot11a();
        // 1024 bytes at 6 Mb/s: (16+6+8192) = 8214 bits / 24 = 342.25 → 343
        // symbols → 1372 µs + 20 µs PLCP.
        let d = tx_duration(&p, 1024);
        assert_eq!(d.as_micros(), 20 + 343 * 4);
    }

    #[test]
    fn ofdm_ack() {
        let p = PhyParams::dot11a();
        // 14-byte ACK: (16+6+112)=134 bits / 24 = 5.58 → 6 symbols = 24 µs
        // + 20 µs PLCP = 44 µs.
        let d = tx_duration_basic(&p, 14);
        assert_eq!(d.as_micros(), 44);
    }

    #[test]
    fn airtime_monotone_in_length() {
        for p in [PhyParams::dot11b(), PhyParams::dot11a()] {
            let mut last = SimDuration::ZERO;
            for bytes in [0, 1, 14, 20, 100, 500, 1024, 1500, 2304] {
                let d = tx_duration(&p, bytes);
                assert!(d >= last, "airtime not monotone for {}", p.standard);
                last = d;
            }
        }
    }

    #[test]
    fn zero_length_frame_is_plcp_only_for_dsss() {
        let p = PhyParams::dot11b();
        assert_eq!(tx_duration(&p, 0), p.plcp_overhead);
    }

    #[test]
    #[should_panic(expected = "PHY rate must be positive")]
    fn zero_rate_panics() {
        let p = PhyParams::dot11b();
        let _ = tx_duration_at(&p, 10, 0);
    }
}
