//! Random frame-corruption model, equivalent to ns-2's `ErrorModel`.
//!
//! The error process applies independently per *unit* — bit, byte, or whole
//! packet — and a frame is corrupted when at least one of its units is hit.
//! The paper's Table III (BER → FER) is consistent with a **per-byte**
//! process over the MAC frame plus 24 bytes of PLCP overhead; see
//! `greedy80211::corruption` and the `tab03` experiment for the exact sizes.

use sim::{SimError, SimRng};

/// Byte-equivalent of the PLCP preamble + header for the corruption
/// process. The paper's Table III FER values correspond to a per-byte
/// error process over the MAC frame plus this constant.
pub const PLCP_EQUIVALENT_BYTES: usize = 24;

/// The granularity at which the error rate applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorUnit {
    /// Each bit flips independently with the configured rate.
    Bit,
    /// Each byte is corrupted independently with the configured rate.
    Byte,
    /// The whole frame is lost with the configured rate.
    Packet,
}

/// A memoryless frame-corruption process.
///
/// # Examples
///
/// ```
/// use gr_phy::{ErrorModel, ErrorUnit};
///
/// let em = ErrorModel::new(ErrorUnit::Byte, 1e-5)?;
/// // 38-"byte" ACK frame (14 MAC + 24 PLCP): FER ≈ 3.8e-4 as in Table III.
/// let fer = em.fer(38);
/// assert!((fer - 3.799e-4).abs() < 1e-6);
/// # Ok::<(), sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    unit: ErrorUnit,
    rate: f64,
}

impl ErrorModel {
    /// Creates an error model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `rate` is not in `[0, 1]`.
    pub fn new(unit: ErrorUnit, rate: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
            return Err(SimError::invalid_config(format!(
                "error rate must be in [0, 1], got {rate}"
            )));
        }
        Ok(ErrorModel { unit, rate })
    }

    /// A model that never corrupts anything.
    pub const fn lossless() -> Self {
        ErrorModel {
            unit: ErrorUnit::Packet,
            rate: 0.0,
        }
    }

    /// The error unit.
    pub fn unit(&self) -> ErrorUnit {
        self.unit
    }

    /// The per-unit error rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// True if the rate is zero.
    pub fn is_lossless(&self) -> bool {
        self.rate == 0.0
    }

    /// Frame error rate for a frame of `frame_bytes` bytes:
    /// `1 − (1 − rate)^units`.
    pub fn fer(&self, frame_bytes: usize) -> f64 {
        let units = match self.unit {
            ErrorUnit::Bit => frame_bytes as f64 * 8.0,
            ErrorUnit::Byte => frame_bytes as f64,
            ErrorUnit::Packet => return self.rate,
        };
        // ln1p-based form is exact for tiny rates where powf would round.
        1.0 - ((1.0 - self.rate).ln() * units).exp()
    }

    /// Samples whether a frame of `frame_bytes` bytes is corrupted.
    pub fn corrupts(&self, frame_bytes: usize, rng: &mut SimRng) -> bool {
        rng.chance(self.fer(frame_bytes))
    }

    /// Frame error rates for a batch of frame sizes, appended to `out`
    /// in slice order. Each element is bit-identical to
    /// [`ErrorModel::fer`] of that size; the batch form hoists the
    /// per-model `ln(1 − rate)` out of the loop, which is what makes
    /// prefilling a [`crate::FerTable`] at assembly time cheap.
    pub fn fer_batch(&self, frame_bytes: &[usize], out: &mut Vec<f64>) {
        if self.unit == ErrorUnit::Packet {
            out.extend(std::iter::repeat_n(self.rate, frame_bytes.len()));
            return;
        }
        let ln_keep = (1.0 - self.rate).ln();
        for &b in frame_bytes {
            let units = match self.unit {
                ErrorUnit::Bit => b as f64 * 8.0,
                ErrorUnit::Byte => b as f64,
                ErrorUnit::Packet => unreachable!("handled above"),
            };
            out.push(1.0 - (ln_keep * units).exp());
        }
    }

    /// Samples a batch of frames for corruption, appending one verdict
    /// per size to `out`. Draws exactly one `chance` per element **in
    /// slice order**, so a batch over frames in dispatch order consumes
    /// the RNG stream identically to per-frame [`ErrorModel::corrupts`]
    /// calls in that order — the draw-order contract DESIGN.md §16
    /// relies on.
    pub fn corrupts_batch(&self, frame_bytes: &[usize], rng: &mut SimRng, out: &mut Vec<bool>) {
        for &b in frame_bytes {
            out.push(rng.chance(self.fer(b)));
        }
    }

    /// Samples whether a specific contiguous field of `field_bytes` bytes
    /// within a frame is hit by the error process (used by the corrupted-
    /// address study, Table I).
    pub fn field_hit(&self, field_bytes: usize, rng: &mut SimRng) -> bool {
        let p = match self.unit {
            ErrorUnit::Bit => 1.0 - ((1.0 - self.rate).ln() * field_bytes as f64 * 8.0).exp(),
            ErrorUnit::Byte => 1.0 - ((1.0 - self.rate).ln() * field_bytes as f64).exp(),
            // A packet-level loss corrupts everything, including the field.
            ErrorUnit::Packet => self.rate,
        };
        rng.chance(p)
    }
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel::lossless()
    }
}

impl snap::SnapValue for ErrorUnit {
    fn save(&self, w: &mut snap::Enc) {
        w.u8(match self {
            ErrorUnit::Bit => 0,
            ErrorUnit::Byte => 1,
            ErrorUnit::Packet => 2,
        });
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(match r.u8()? {
            0 => ErrorUnit::Bit,
            1 => ErrorUnit::Byte,
            2 => ErrorUnit::Packet,
            t => return Err(snap::SnapError::Corrupt(format!("error unit tag {t}"))),
        })
    }
}

impl snap::SnapValue for ErrorModel {
    fn save(&self, w: &mut snap::Enc) {
        self.unit.save(w);
        w.f64(self.rate);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        let unit = ErrorUnit::load(r)?;
        let rate = r.f64()?;
        ErrorModel::new(unit, rate)
            .map_err(|e| snap::SnapError::Corrupt(format!("error model: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_rates() {
        assert!(ErrorModel::new(ErrorUnit::Bit, -0.1).is_err());
        assert!(ErrorModel::new(ErrorUnit::Bit, 1.1).is_err());
        assert!(ErrorModel::new(ErrorUnit::Bit, f64::NAN).is_err());
        assert!(ErrorModel::new(ErrorUnit::Bit, 0.0).is_ok());
        assert!(ErrorModel::new(ErrorUnit::Bit, 1.0).is_ok());
    }

    #[test]
    fn lossless_never_corrupts() {
        let em = ErrorModel::lossless();
        assert!(em.is_lossless());
        assert_eq!(em.fer(1500), 0.0);
        let mut rng = SimRng::new(1);
        assert!(!em.corrupts(1500, &mut rng));
    }

    #[test]
    fn packet_unit_is_length_independent() {
        let em = ErrorModel::new(ErrorUnit::Packet, 0.3).unwrap();
        assert_eq!(em.fer(10), 0.3);
        assert_eq!(em.fer(10_000), 0.3);
    }

    #[test]
    fn table_iii_byte_process() {
        // Paper Table III, per-byte interpretation: sizes incl. 24 B PLCP.
        let cases = [
            (1e-5, 38, 3.799e-4), // ACK/CTS
            (1e-5, 44, 4.399e-4), // RTS
            (2e-4, 38, 7.519e-3), // ACK/CTS at BER 2e-4
            (8e-4, 38, 2.995e-2), // ACK/CTS at BER 8e-4
        ];
        for (rate, bytes, expected) in cases {
            let em = ErrorModel::new(ErrorUnit::Byte, rate).unwrap();
            let fer = em.fer(bytes);
            assert!(
                (fer - expected).abs() / expected < 0.01,
                "rate={rate} bytes={bytes}: fer={fer}, expected≈{expected}"
            );
        }
    }

    #[test]
    fn fer_monotone_in_rate_and_length() {
        let mut last = 0.0;
        for rate in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
            let em = ErrorModel::new(ErrorUnit::Byte, rate).unwrap();
            let fer = em.fer(100);
            assert!(fer > last);
            last = fer;
        }
        let em = ErrorModel::new(ErrorUnit::Bit, 1e-5).unwrap();
        let mut last = 0.0;
        for bytes in [1, 10, 100, 1000] {
            let fer = em.fer(bytes);
            assert!(fer > last);
            last = fer;
        }
    }

    #[test]
    fn corrupts_frequency_matches_fer() {
        let em = ErrorModel::new(ErrorUnit::Byte, 2e-4).unwrap();
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let hits = (0..n).filter(|_| em.corrupts(1102, &mut rng)).count();
        let freq = hits as f64 / n as f64;
        let fer = em.fer(1102);
        assert!(
            (freq - fer).abs() < 0.005,
            "empirical {freq} vs analytic {fer}"
        );
    }

    #[test]
    fn field_hit_probability_smaller_than_frame() {
        let em = ErrorModel::new(ErrorUnit::Byte, 1e-3).unwrap();
        let mut rng = SimRng::new(7);
        let n = 100_000;
        let field_hits = (0..n).filter(|_| em.field_hit(12, &mut rng)).count();
        let frame_hits = (0..n).filter(|_| em.corrupts(1024, &mut rng)).count();
        assert!(field_hits < frame_hits);
    }
}
