//! Property-based tests of the PHY models.

use gr_phy::{
    airtime, capture::CaptureOutcome, CaptureModel, ChannelModel, ErrorModel, ErrorUnit, PhyParams,
    Position, RssiModel,
};
use proptest::prelude::*;

proptest! {
    /// Airtime grows monotonically with frame length on both PHYs.
    #[test]
    fn airtime_monotone(len_a in 0usize..2304, len_b in 0usize..2304) {
        for p in [PhyParams::dot11b(), PhyParams::dot11a()] {
            let (lo, hi) = (len_a.min(len_b), len_a.max(len_b));
            prop_assert!(airtime::tx_duration(&p, lo) <= airtime::tx_duration(&p, hi));
        }
    }

    /// Basic-rate airtime is never shorter than data-rate airtime (the
    /// basic rate is the slower one).
    #[test]
    fn basic_rate_is_slower(len in 1usize..2304) {
        for p in [PhyParams::dot11b(), PhyParams::dot11a()] {
            prop_assert!(
                airtime::tx_duration_basic(&p, len) >= airtime::tx_duration(&p, len)
            );
        }
    }

    /// FER is a probability, monotone in both rate and length.
    #[test]
    fn fer_is_probability_and_monotone(
        rate in 0.0f64..0.01,
        len_a in 1usize..2000,
        len_b in 1usize..2000,
    ) {
        let em = ErrorModel::new(ErrorUnit::Byte, rate).unwrap();
        let (lo, hi) = (len_a.min(len_b), len_a.max(len_b));
        let f_lo = em.fer(lo);
        let f_hi = em.fer(hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!((0.0..=1.0).contains(&f_hi));
        prop_assert!(f_lo <= f_hi + 1e-15);
        let em_bit = ErrorModel::new(ErrorUnit::Bit, rate).unwrap();
        // A bit-level process at the same rate corrupts more than a
        // byte-level one (8 chances per byte).
        prop_assert!(em_bit.fer(lo) >= em.fer(lo) - 1e-15);
    }

    /// Capture is antisymmetric and consistent with its threshold.
    #[test]
    fn capture_antisymmetric(p1 in -100.0f64..0.0, p2 in -100.0f64..0.0, thr in 0.0f64..20.0) {
        let cap = CaptureModel::new(thr);
        match cap.decide(p1, p2) {
            CaptureOutcome::FirstCaptures => {
                prop_assert!(p1 - p2 >= thr);
                prop_assert_eq!(cap.decide(p2, p1), CaptureOutcome::SecondCaptures);
            }
            CaptureOutcome::SecondCaptures => {
                prop_assert!(p2 - p1 >= thr);
                prop_assert_eq!(cap.decide(p2, p1), CaptureOutcome::FirstCaptures);
            }
            CaptureOutcome::Collision => {
                prop_assert!((p1 - p2).abs() < thr || thr == 0.0);
                prop_assert_eq!(cap.decide(p2, p1), CaptureOutcome::Collision);
            }
        }
    }

    /// The capture survivor, when any, is the strongest frame.
    #[test]
    fn survivor_is_strongest(powers in proptest::collection::vec(-100.0f64..0.0, 1..8)) {
        let cap = CaptureModel::default();
        if let Some(idx) = cap.survivor(&powers) {
            let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((powers[idx] - max).abs() < 1e-12);
        }
    }

    /// Distance classification is consistent: decode ⊂ sense ⊂ anything.
    #[test]
    fn reach_nested(d in 0.0f64..200.0) {
        use gr_phy::channel::Reach;
        let ch = ChannelModel::with_ranges(55.0, 99.0);
        match ch.reach(d) {
            Reach::Decode => prop_assert!(d <= 55.0),
            Reach::Sense => prop_assert!(d > 55.0 && d <= 99.0),
            Reach::None => prop_assert!(d > 99.0),
        }
    }

    /// RSSI median decreases with distance; positions are symmetric.
    #[test]
    fn rssi_monotone_and_symmetric(
        d1 in 1.0f64..300.0,
        d2 in 1.0f64..300.0,
        x in -50.0f64..50.0,
        y in -50.0f64..50.0,
    ) {
        let m = RssiModel::default();
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(m.median_dbm(lo) >= m.median_dbm(hi));
        let a = Position::new(x, y);
        let b = Position::new(y, x);
        prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
    }
}
