//! Fluent construction of simulations.
//!
//! [`NetworkBuilder`] assembles nodes (position + MAC configuration +
//! policy/observer hooks), flows (UDP, TCP, remote-TCP, probes) and
//! channel properties into a runnable [`Network`].
//!
//! # Examples
//!
//! ```
//! use gr_net::NetworkBuilder;
//! use phy::{PhyParams, Position};
//! use sim::SimDuration;
//!
//! // Two sender→receiver pairs saturating an 802.11b channel with UDP.
//! let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(7);
//! let s1 = b.add_node(Position::new(0.0, 0.0));
//! let r1 = b.add_node(Position::new(5.0, 0.0));
//! let f1 = b.udp_flow(s1, r1, 1024, 8_000_000);
//! let mut net = b.build();
//! let metrics = net.run(SimDuration::from_millis(200));
//! assert!(metrics.goodput_mbps(f1) > 0.0);
//! ```

use std::collections::HashMap;

use mac::{Dcf, DcfConfig, NodeId, ObserverSlot, PolicySlot};
use phy::{CaptureModel, ChannelModel, ErrorModel, PhyParams, Position};
use sim::{SimDuration, SimRng};
use transport::{
    CbrSource, FlowId, ProbeStats, Segment, TcpConfig, TcpReceiver, TcpSender, UdpSink,
};

use crate::network::{FlowKindState, FlowState, Network};

struct NodeSpec {
    pos: Position,
    policy: Option<PolicySlot>,
    observer: Option<ObserverSlot>,
    no_retx_to: Vec<NodeId>,
    cw_clamp_to: Vec<NodeId>,
    auto_rate: Option<mac::ArfConfig>,
}

struct FlowSpec {
    src: NodeId,
    dst: NodeId,
    payload: usize,
    kind: FlowSpecKind,
    wire: Option<SimDuration>,
}

enum FlowSpecKind {
    Udp { rate_bps: u64 },
    Tcp { cfg: TcpConfig },
    Probe { interval: SimDuration },
}

/// Builder for [`Network`].
pub struct NetworkBuilder {
    phy: PhyParams,
    channel: ChannelModel,
    capture: CaptureModel,
    rts_enabled: bool,
    seed: u64,
    cs_latency_slots: u32,
    default_error: ErrorModel,
    nodes: Vec<NodeSpec>,
    flows: Vec<FlowSpec>,
    link_errors: Vec<(NodeId, NodeId, ErrorModel)>,
    rate_link_errors: Vec<(NodeId, NodeId, u64, ErrorModel)>,
}

impl NetworkBuilder {
    /// Starts a builder for the given PHY: all nodes in one collision
    /// domain, RTS/CTS enabled, lossless links, seed 1.
    pub fn new(phy: PhyParams) -> Self {
        NetworkBuilder {
            phy,
            channel: ChannelModel::default(),
            capture: CaptureModel::default(),
            rts_enabled: true,
            seed: 1,
            cs_latency_slots: 1,
            default_error: ErrorModel::lossless(),
            nodes: Vec::new(),
            flows: Vec::new(),
            link_errors: Vec::new(),
            rate_link_errors: Vec::new(),
        }
    }

    /// Sets the propagation model (communication/carrier-sense ranges).
    pub fn channel(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the capture model.
    pub fn capture(mut self, capture: CaptureModel) -> Self {
        self.capture = capture;
        self
    }

    /// Enables or disables the RTS/CTS exchange network-wide.
    pub fn rts(mut self, enabled: bool) -> Self {
        self.rts_enabled = enabled;
        self
    }

    /// Sets the master random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the error model applied to every link without an override.
    pub fn default_error(mut self, em: ErrorModel) -> Self {
        self.default_error = em;
        self
    }

    /// Sets the carrier-sense onset latency in slots (default 1 — the
    /// one-slot collision window the paper's analysis assumes).
    pub fn cs_latency_slots(mut self, slots: u32) -> Self {
        self.cs_latency_slots = slots;
        self
    }

    /// Adds an honest node at `pos`, returning its id.
    pub fn add_node(&mut self, pos: Position) -> NodeId {
        self.add_node_spec(pos, None, None)
    }

    /// Adds a node with a custom station policy (greedy receivers).
    pub fn add_node_with_policy(&mut self, pos: Position, policy: impl Into<PolicySlot>) -> NodeId {
        self.add_node_spec(pos, Some(policy.into()), None)
    }

    /// Adds a node with a custom observer (GRC detection/mitigation).
    pub fn add_node_with_observer(
        &mut self,
        pos: Position,
        observer: impl Into<ObserverSlot>,
    ) -> NodeId {
        self.add_node_spec(pos, None, Some(observer.into()))
    }

    /// Adds a node with both hooks.
    pub fn add_node_with(
        &mut self,
        pos: Position,
        policy: impl Into<PolicySlot>,
        observer: impl Into<ObserverSlot>,
    ) -> NodeId {
        self.add_node_spec(pos, Some(policy.into()), Some(observer.into()))
    }

    fn add_node_spec(
        &mut self,
        pos: Position,
        policy: Option<PolicySlot>,
        observer: Option<ObserverSlot>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u16);
        self.nodes.push(NodeSpec {
            pos,
            policy,
            observer,
            no_retx_to: Vec::new(),
            cw_clamp_to: Vec::new(),
            auto_rate: None,
        });
        id
    }

    /// Disables MAC retransmission from `node` toward each destination in
    /// `to` (testbed spoofing emulation, Table VIII).
    ///
    /// # Panics
    ///
    /// Panics if `node` was not added.
    pub fn set_no_retx(&mut self, node: NodeId, to: Vec<NodeId>) {
        self.nodes[node.0 as usize].no_retx_to = to;
    }

    /// Clamps `node`'s contention window to CWmin toward each destination
    /// in `to` (testbed fake-ACK emulation, Table IX).
    ///
    /// # Panics
    ///
    /// Panics if `node` was not added.
    pub fn set_cw_clamp(&mut self, node: NodeId, to: Vec<NodeId>) {
        self.nodes[node.0 as usize].cw_clamp_to = to;
    }

    /// Overrides the error model on the directed link `tx → rx`.
    pub fn link_error(&mut self, tx: NodeId, rx: NodeId, em: ErrorModel) {
        self.link_errors.push((tx, rx, em));
    }

    /// Overrides the error model on `tx → rx` for data frames sent at
    /// exactly `rate_bps` (rate-adaptation experiments: links that are
    /// clean at low rates and lossy at high ones).
    pub fn link_rate_error(&mut self, tx: NodeId, rx: NodeId, rate_bps: u64, em: ErrorModel) {
        self.rate_link_errors.push((tx, rx, rate_bps, em));
    }

    /// Enables Automatic Rate Fallback on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not added.
    pub fn set_auto_rate(&mut self, node: NodeId, cfg: mac::ArfConfig) {
        self.nodes[node.0 as usize].auto_rate = Some(cfg);
    }

    /// Adds a saturating CBR/UDP flow from `src` to `dst` with
    /// `payload`-byte datagrams offered at `rate_bps` (payload bits/s).
    pub fn udp_flow(&mut self, src: NodeId, dst: NodeId, payload: usize, rate_bps: u64) -> FlowId {
        self.push_flow(FlowSpec {
            src,
            dst,
            payload,
            kind: FlowSpecKind::Udp { rate_bps },
            wire: None,
        })
    }

    /// Adds a TCP flow from `src` to `dst` (sender co-located with the
    /// wireless transmitter, i.e. the AP).
    pub fn tcp_flow(&mut self, src: NodeId, dst: NodeId, cfg: TcpConfig) -> FlowId {
        self.push_flow(FlowSpec {
            src,
            dst,
            payload: cfg.mss,
            kind: FlowSpecKind::Tcp { cfg },
            wire: None,
        })
    }

    /// Adds a TCP flow whose sender sits behind a wired link of one-way
    /// latency `wire_delay` attached to `src` (the AP) — the paper's
    /// remote-sender topology (Fig. 15).
    pub fn tcp_flow_remote(
        &mut self,
        src: NodeId,
        dst: NodeId,
        cfg: TcpConfig,
        wire_delay: SimDuration,
    ) -> FlowId {
        self.push_flow(FlowSpec {
            src,
            dst,
            payload: cfg.mss,
            kind: FlowSpecKind::Tcp { cfg },
            wire: Some(wire_delay),
        })
    }

    /// Adds an application-layer probe (ping) flow used by the fake-ACK
    /// detector to measure true application loss.
    pub fn probe_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: usize,
        interval: SimDuration,
    ) -> FlowId {
        self.push_flow(FlowSpec {
            src,
            dst,
            payload,
            kind: FlowSpecKind::Probe { interval },
            wire: None,
        })
    }

    fn push_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(spec);
        id
    }

    /// Assembles the network.
    ///
    /// # Panics
    ///
    /// Panics if a flow references a node that was not added.
    pub fn build(self) -> Network {
        let mut master = SimRng::new(self.seed);
        let node_count = self.nodes.len();
        let nodes: Vec<(Position, Dcf<Segment>)> = self
            .nodes
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut cfg = if self.rts_enabled {
                    DcfConfig::new(self.phy)
                } else {
                    DcfConfig::without_rts(self.phy)
                };
                cfg.no_retx_to = spec.no_retx_to;
                cfg.cw_clamp_to = spec.cw_clamp_to;
                cfg.auto_rate = spec.auto_rate;
                let rng = master.fork(i as u64 + 1000);
                let dcf = match (spec.policy, spec.observer) {
                    (None, None) => Dcf::new(NodeId(i as u16), cfg, rng),
                    (p, o) => Dcf::with_hooks(
                        NodeId(i as u16),
                        cfg,
                        rng,
                        p.unwrap_or_default(),
                        o.unwrap_or_default(),
                    ),
                };
                (spec.pos, dcf)
            })
            .collect();
        let flows: Vec<FlowState> = self
            .flows
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                assert!(
                    (spec.src.0 as usize) < node_count && (spec.dst.0 as usize) < node_count,
                    "flow references unknown node"
                );
                let id = FlowId(i as u32);
                let kind = match spec.kind {
                    FlowSpecKind::Udp { rate_bps } => FlowKindState::Udp {
                        source: CbrSource::with_rate(id, spec.payload, rate_bps),
                        sink: UdpSink::new(),
                    },
                    FlowSpecKind::Tcp { cfg } => FlowKindState::Tcp {
                        sender: TcpSender::new(id, cfg),
                        receiver: TcpReceiver::new(id),
                    },
                    FlowSpecKind::Probe { interval } => FlowKindState::Probe {
                        interval,
                        payload: spec.payload,
                        next_seq: 0,
                        stats: ProbeStats::new(),
                    },
                };
                FlowState {
                    id,
                    src: spec.src,
                    dst: spec.dst,
                    payload: spec.payload,
                    kind,
                    wire: spec.wire,
                    cross: Default::default(),
                }
            })
            .collect();
        let link_error: HashMap<(u16, u16), ErrorModel> = self
            .link_errors
            .into_iter()
            .map(|(a, b, em)| ((a.0, b.0), em))
            .collect();
        let rate_link_error: HashMap<(u16, u16, u64), ErrorModel> = self
            .rate_link_errors
            .into_iter()
            .map(|(a, b, r, em)| ((a.0, b.0, r), em))
            .collect();
        let cs_latency = self.phy.slot * self.cs_latency_slots as u64;
        let mut net = Network::assemble(
            self.phy,
            self.channel,
            self.capture,
            cs_latency,
            nodes,
            flows,
            link_error,
            rate_link_error,
            self.default_error,
            master.fork(1),
        );
        // Builder-direct experiments (no `Scenario`) still honor the
        // ambient recorder, so campaign sweeps and conformance checking
        // cover them too. Recording never perturbs simulation outcomes.
        if let Some(handle) = ::obs::ambient::current() {
            net.set_recorder(handle);
        }
        net
    }
}

impl std::fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkBuilder")
            .field("nodes", &self.nodes.len())
            .field("flows", &self.flows.len())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}
