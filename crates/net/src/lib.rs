//! Network runtime: wires the 802.11 MAC, PHY/channel models and
//! transport endpoints into a deterministic event-driven simulation.
//!
//! Build a topology with [`NetworkBuilder`], run it with
//! [`Network::run`], and read goodput / contention-window / retry
//! statistics from the returned [`RunMetrics`].

#![warn(missing_docs)]
pub mod builder;
pub mod cell;
pub mod metrics;
pub mod network;
pub mod stats;
pub mod trace;

pub use builder::NetworkBuilder;
pub use cell::{Cell, TxInterval};
pub use metrics::{FlowMetrics, NodeMetrics, RunMetrics};
pub use network::{
    HookCursor, Network, RunArtifacts, RunHooks, GAUGE_CW, GAUGE_CWND, GAUGE_NAV_REMAINING_US,
    GAUGE_QUEUE_LEN,
};
pub use stats::SimStats;
pub use trace::{Trace, TraceKind, TraceRecord};
