//! Run-level metrics: per-flow goodput and per-node MAC statistics.

use std::collections::BTreeMap;

use mac::{MacCounters, NodeId};
use sim::SimDuration;
use transport::FlowId;

/// Measurements of one flow over a run.
#[derive(Debug, Clone, Default)]
pub struct FlowMetrics {
    /// Distinct (non-duplicate) data packets received by the sink.
    pub distinct_packets: u64,
    /// Payload bytes of those packets.
    pub payload_bytes: u64,
    /// Duplicate packets seen by the sink.
    pub duplicates: u64,
    /// TCP only: time-weighted average congestion window (paper Table II).
    pub avg_cwnd: Option<f64>,
    /// TCP only: total retransmissions (fast + timeout).
    pub retransmissions: u64,
    /// TCP only: RTO events.
    pub timeouts: u64,
    /// Probe flows: application-layer loss rate measured via probing.
    pub probe_app_loss: Option<f64>,
    /// TCP only: retransmissions of segments whose original transmission
    /// was MAC-acknowledged — the cross-layer spoofed-ACK signal (§VII-B).
    pub retx_of_mac_acked: u64,
}

impl FlowMetrics {
    /// Goodput in bits per second of payload over `duration`.
    pub fn goodput_bps(&self, duration: SimDuration) -> f64 {
        let secs = duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.payload_bytes as f64 * 8.0 / secs
        }
    }

    /// Goodput in Mb/s (the unit the paper plots).
    pub fn goodput_mbps(&self, duration: SimDuration) -> f64 {
        self.goodput_bps(duration) / 1e6
    }
}

/// Per-node MAC statistics snapshot.
#[derive(Debug, Clone)]
pub struct NodeMetrics {
    /// The raw MAC counters.
    pub counters: MacCounters,
    /// Time-weighted average contention window over the run.
    pub avg_cw: Option<f64>,
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Run length.
    pub duration: SimDuration,
    /// Per-flow measurements, ordered by flow id.
    pub flows: BTreeMap<u32, FlowMetrics>,
    /// Per-node measurements, ordered by node id.
    pub nodes: BTreeMap<u16, NodeMetrics>,
    /// Total events the kernel dispatched.
    pub events_processed: u64,
}

impl RunMetrics {
    /// Metrics of `flow`, if it existed.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowMetrics> {
        self.flows.get(&flow.0)
    }

    /// Metrics of `node`, if it existed.
    pub fn node(&self, node: NodeId) -> Option<&NodeMetrics> {
        self.nodes.get(&node.0)
    }

    /// Goodput of `flow` in Mb/s (0 if the flow is unknown).
    pub fn goodput_mbps(&self, flow: FlowId) -> f64 {
        self.flow(flow)
            .map_or(0.0, |f| f.goodput_mbps(self.duration))
    }
}

impl Default for NodeMetrics {
    fn default() -> Self {
        NodeMetrics {
            counters: MacCounters::new(0),
            avg_cw: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_math() {
        let m = FlowMetrics {
            distinct_packets: 1000,
            payload_bytes: 1_024_000,
            ..FlowMetrics::default()
        };
        let d = SimDuration::from_secs(8);
        assert!((m.goodput_bps(d) - 1_024_000.0).abs() < 1e-9);
        assert!((m.goodput_mbps(d) - 1.024).abs() < 1e-12);
        assert_eq!(m.goodput_bps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn lookup_by_ids() {
        let mut r = RunMetrics {
            duration: SimDuration::from_secs(1),
            ..RunMetrics::default()
        };
        r.flows.insert(
            3,
            FlowMetrics {
                payload_bytes: 125_000,
                ..FlowMetrics::default()
            },
        );
        assert!(r.flow(FlowId(3)).is_some());
        assert!(r.flow(FlowId(4)).is_none());
        assert!((r.goodput_mbps(FlowId(3)) - 1.0).abs() < 1e-12);
        assert_eq!(r.goodput_mbps(FlowId(9)), 0.0);
    }
}
