//! Process-wide simulation throughput counters.
//!
//! Every completed [`Network::run`](crate::Network::run) adds its event
//! count here, regardless of which worker thread executed it. The `repro`
//! harness snapshots these counters around each experiment to report
//! events/second — the simulator's native throughput unit — without
//! threading a metrics sink through every layer.
//!
//! The counters are monotonically increasing totals; consumers diff two
//! snapshots. Relaxed ordering suffices because the values are purely
//! informational and each run's contribution is a single atomic add.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static RUNS_COMPLETED: AtomicU64 = AtomicU64::new(0);

/// Point-in-time copy of the process-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Total scheduler events dispatched by completed runs.
    pub events_processed: u64,
    /// Total completed simulation runs.
    pub runs_completed: u64,
}

impl SimStats {
    /// Counter increases since `earlier`.
    pub fn since(&self, earlier: SimStats) -> SimStats {
        SimStats {
            events_processed: self.events_processed - earlier.events_processed,
            runs_completed: self.runs_completed - earlier.runs_completed,
        }
    }
}

/// Reads the current totals.
pub fn snapshot() -> SimStats {
    SimStats {
        events_processed: EVENTS_PROCESSED.load(Ordering::Relaxed),
        runs_completed: RUNS_COMPLETED.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_run(events: u64) {
    EVENTS_PROCESSED.fetch_add(events, Ordering::Relaxed);
    RUNS_COMPLETED.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_diff() {
        let before = snapshot();
        record_run(100);
        record_run(50);
        let delta = snapshot().since(before);
        assert_eq!(delta.events_processed, 150);
        assert_eq!(delta.runs_completed, 2);
    }
}
