//! Frame-level event tracing (the ns-2 trace-file equivalent).
//!
//! When enabled, the runtime records every transmission start and every
//! reception outcome. Traces serve three purposes:
//!
//! * debugging protocol behavior (what was on the air when);
//! * computing medium-level statistics the MAC counters cannot see —
//!   most importantly per-node airtime share and channel utilization;
//! * offline detectors that reason about *timing*, like the
//!   DOMINO-style backoff monitor in `greedy80211::detect` (the
//!   sender-side baseline the paper's related work builds on).

use mac::{FrameKind, NodeId};
use sim::{SimDuration, SimTime};

/// What happened on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A station began transmitting.
    TxStart,
    /// A station correctly decoded a frame.
    RxOk,
    /// A station received a corrupted frame (noise).
    RxCorrupt,
    /// A station received collision garbage.
    RxCollision,
}

/// One trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// When it happened (transmission start / reception end).
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// The station concerned (transmitter for `TxStart`, receiver
    /// otherwise).
    pub node: NodeId,
    /// The frame's physical transmitter.
    pub tx: NodeId,
    /// The frame's destination.
    pub dst: NodeId,
    /// Frame kind.
    pub frame: FrameKind,
    /// Airtime of the frame.
    pub airtime: SimDuration,
}

/// A bounded in-memory trace.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Records discarded after the capacity was reached.
    pub dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Rebuilds a trace from recorded PHY flight-recorder events — the
    /// compatibility path behind [`crate::Network::trace`]. Non-PHY
    /// events are skipped; `dropped` and `capacity` are carried over
    /// from the recorder's ring buffer.
    pub fn from_events<'a>(
        events: impl IntoIterator<Item = &'a ::obs::ObsEvent>,
        dropped: u64,
        capacity: usize,
    ) -> Trace {
        fn frame_of(code: f64) -> Option<FrameKind> {
            Some(match code as u8 {
                phy::obs::FRAME_RTS => FrameKind::Rts,
                phy::obs::FRAME_CTS => FrameKind::Cts,
                phy::obs::FRAME_DATA => FrameKind::Data,
                phy::obs::FRAME_ACK => FrameKind::Ack,
                _ => return None,
            })
        }
        let mut t = Trace {
            records: Vec::new(),
            capacity,
            dropped,
        };
        for ev in events {
            if ev.kind.layer != ::obs::Layer::Phy {
                continue;
            }
            let (kind, tx, dst, frame, airtime) = match ev.kind.name {
                "tx_start" => (
                    TraceKind::TxStart,
                    ev.node as f64,
                    ev.vals[0],
                    ev.vals[1],
                    ev.vals[2],
                ),
                "rx_ok" => (
                    TraceKind::RxOk,
                    ev.vals[0],
                    ev.vals[1],
                    ev.vals[2],
                    ev.vals[3],
                ),
                "rx_noise" => (
                    TraceKind::RxCorrupt,
                    ev.vals[0],
                    ev.vals[1],
                    ev.vals[2],
                    ev.vals[3],
                ),
                "rx_collision" => (
                    TraceKind::RxCollision,
                    ev.vals[0],
                    ev.vals[1],
                    ev.vals[2],
                    ev.vals[3],
                ),
                _ => continue,
            };
            let Some(frame) = frame_of(frame) else {
                continue;
            };
            t.records.push(TraceRecord {
                at: ev.at,
                kind,
                node: NodeId(ev.node),
                tx: NodeId(tx as u16),
                dst: NodeId(dst as u16),
                frame,
                airtime: SimDuration::from_micros(airtime as u64),
            });
        }
        t
    }

    /// Appends a record (public so offline analyses and tests can build
    /// synthetic traces).
    pub fn push(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Total airtime transmitted by `node` (from `TxStart` records).
    pub fn airtime_of(&self, node: NodeId) -> SimDuration {
        self.records
            .iter()
            .filter(|r| r.kind == TraceKind::TxStart && r.node == node)
            .map(|r| r.airtime)
            .sum()
    }

    /// Fraction of `window` the medium carried any transmission
    /// (an upper bound that ignores overlaps: overlapping airtime counts
    /// twice, so values may exceed 1 under heavy collisions).
    pub fn utilization(&self, window: SimDuration) -> f64 {
        let total: SimDuration = self
            .records
            .iter()
            .filter(|r| r.kind == TraceKind::TxStart)
            .map(|r| r.airtime)
            .sum();
        if window.is_zero() {
            0.0
        } else {
            total.as_secs_f64() / window.as_secs_f64()
        }
    }

    /// Number of transmissions per frame kind by `node`.
    pub fn tx_count(&self, node: NodeId, kind: FrameKind) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind == TraceKind::TxStart && r.node == node && r.frame == kind)
            .count() as u64
    }

    /// Renders the trace as CSV (for offline analysis).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_us,kind,node,tx,dst,frame,airtime_us\n");
        for r in &self.records {
            let kind = match r.kind {
                TraceKind::TxStart => "tx",
                TraceKind::RxOk => "rx_ok",
                TraceKind::RxCorrupt => "rx_corrupt",
                TraceKind::RxCollision => "rx_collision",
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                r.at.as_micros(),
                kind,
                r.node.0,
                r.tx.0,
                r.dst.0,
                r.frame,
                r.airtime.as_micros()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_us: u64, kind: TraceKind, node: u16, frame: FrameKind, air_us: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(at_us),
            kind,
            node: NodeId(node),
            tx: NodeId(node),
            dst: NodeId(99),
            frame,
            airtime: SimDuration::from_micros(air_us),
        }
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(rec(i, TraceKind::TxStart, 0, FrameKind::Data, 100));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn airtime_and_utilization() {
        let mut t = Trace::new(100);
        t.push(rec(0, TraceKind::TxStart, 0, FrameKind::Data, 1_000));
        t.push(rec(2_000, TraceKind::TxStart, 1, FrameKind::Data, 3_000));
        t.push(rec(2_000, TraceKind::RxOk, 2, FrameKind::Data, 3_000));
        assert_eq!(t.airtime_of(NodeId(0)), SimDuration::from_millis(1));
        assert_eq!(t.airtime_of(NodeId(1)), SimDuration::from_millis(3));
        let u = t.utilization(SimDuration::from_millis(10));
        assert!((u - 0.4).abs() < 1e-12);
    }

    #[test]
    fn tx_counts_by_kind() {
        let mut t = Trace::new(100);
        t.push(rec(0, TraceKind::TxStart, 0, FrameKind::Rts, 352));
        t.push(rec(1, TraceKind::TxStart, 0, FrameKind::Data, 957));
        t.push(rec(2, TraceKind::TxStart, 0, FrameKind::Rts, 352));
        assert_eq!(t.tx_count(NodeId(0), FrameKind::Rts), 2);
        assert_eq!(t.tx_count(NodeId(0), FrameKind::Data), 1);
        assert_eq!(t.tx_count(NodeId(1), FrameKind::Rts), 0);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Trace::new(10);
        t.push(rec(5, TraceKind::TxStart, 3, FrameKind::Cts, 304));
        let csv = t.to_csv();
        assert!(csv.starts_with("time_us,kind,node,tx,dst,frame,airtime_us\n"));
        assert!(csv.contains("5,tx,3,3,99,CTS,304"));
    }
}
