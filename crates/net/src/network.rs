//! The simulation runtime: medium, nodes, flows and the event loop.
//!
//! The runtime owns every [`mac::Dcf`] instance and the shared medium. It
//! translates [`mac::MacAction`]s into scheduled events and reception
//! outcomes:
//!
//! * a transmission becomes *busy* at other stations one carrier-sense
//!   latency (default: one slot) after it starts — which reproduces the
//!   paper's observation that two stations transmit together when their
//!   backoff counters expire within one slot of each other;
//! * at the end of a transmission, each in-range station resolves the
//!   reception: half-duplex (own transmission overlapped → nothing),
//!   capture among overlapping frames (strongest wins by ≥ the capture
//!   threshold, else collision), then the per-link error model;
//! * corrupted frames are delivered *with readable headers* (the paper's
//!   Table I measurement justifies this), which is what makes the
//!   fake-ACK misbehavior possible.

use std::collections::{HashMap, VecDeque};

use mac::{
    CorruptionCause, Dcf, Frame, FrameArena, FrameId, FrameKind, MacAction, MacActions, NodeId,
    RxEvent, TimerKind,
};
use phy::error_model::PLCP_EQUIVALENT_BYTES;
use phy::{
    channel::Reach, AirtimeTable, CaptureModel, ChannelModel, ErrorModel, FerTable, LinkTable,
    PhyParams, Position,
};
use sim::{Scheduler, SimDuration, SimRng, SimTime, TimerHandle};
use snap::{SnapState as _, SnapValue as _};
use transport::{
    CbrSource, FlowId, ProbeStats, Segment, TcpOutput, TcpReceiver, TcpSender, UdpSink,
};

use crate::metrics::{FlowMetrics, NodeMetrics, RunMetrics};
use crate::trace::Trace;

/// Probe gauge: MAC interface-queue depth, sampled per node.
pub const GAUGE_QUEUE_LEN: &str = "queue_len";
/// Probe gauge: remaining NAV time in µs, sampled per node.
pub const GAUGE_NAV_REMAINING_US: &str = "nav_remaining_us";
/// Probe gauge: current contention window, sampled per node.
pub const GAUGE_CW: &str = "cw";
/// Probe gauge: TCP congestion window in segments, sampled per flow
/// (the series id is the *flow* id, not a node id).
pub const GAUGE_CWND: &str = "cwnd";

/// Maps a MAC frame kind to the compact PHY event code.
fn frame_code(kind: FrameKind) -> u8 {
    match kind {
        FrameKind::Rts => phy::obs::FRAME_RTS,
        FrameKind::Cts => phy::obs::FRAME_CTS,
        FrameKind::Data => phy::obs::FRAME_DATA,
        FrameKind::Ack => phy::obs::FRAME_ACK,
    }
}

/// Events the runtime schedules.
#[derive(Debug, Clone)]
pub(crate) enum Event {
    MacTimer {
        node: NodeId,
        kind: TimerKind,
    },
    TxEnd {
        tx: FrameId,
    },
    BusyOnset {
        node: NodeId,
    },
    BusyEnd {
        node: NodeId,
    },
    RxConclude {
        node: NodeId,
        tx: FrameId,
    },
    CbrTick {
        flow: FlowId,
    },
    TcpTimer {
        flow: FlowId,
    },
    ProbeTick {
        flow: FlowId,
    },
    WireDeliver {
        flow: FlowId,
        to_remote: bool,
        seg: Segment,
    },
}

/// Virtual-time hooks threaded through [`Network::run_hooked`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunHooks {
    /// Record one audit-ladder rung (a digest per layer) every this much
    /// virtual time.
    pub audit_every: Option<SimDuration>,
    /// Snapshot the full network state every this much virtual time.
    pub checkpoint_every: Option<SimDuration>,
    /// Inject one extra draw on the shared RNG stream just before the
    /// first event at or after this instant — fault injection for the
    /// audit-ladder regression tests.
    pub perturb_rng_at: Option<SimTime>,
}

/// By-products of a hooked run.
#[derive(Debug, Clone, Default)]
pub struct RunArtifacts {
    /// Audit-ladder rungs as `(virtual time ns, layer, digest)`, in
    /// barrier order; each barrier contributes one entry per layer.
    pub audit: Vec<(u64, &'static str, u64)>,
    /// Checkpoints as `(barrier instant, encoded network state)`.
    pub checkpoints: Vec<(SimTime, Vec<u8>)>,
}

/// Hook kinds, ordered by firing priority at equal instants.
const HOOK_GAUGE: u8 = 0;
const HOOK_AUDIT: u8 = 1;
const HOOK_CKPT: u8 = 2;

/// A persistent cursor over the virtual-time hook grids, carried across
/// calls to [`Network::advance`] so a run can be executed in bounded
/// epochs instead of one straight pass.
///
/// Epoch-partitioned advancement is *provably identical* to a single
/// [`Network::run_hooked`] call when nothing is injected between epochs:
/// hooks ride fixed grids (their next instants live here, not in the
/// scheduler), events are popped in the same order either way, and a
/// hook due at or before an epoch horizon fires after exactly the same
/// set of dispatched events as it would mid-run — the events between the
/// epoch horizon and the hook's straight-through firing point do not
/// exist, or the hook would have fired inside the epoch. The multi-cell
/// world relies on this: a 1×1 world reproduces the single-network run
/// byte for byte.
pub struct HookCursor {
    hooks: RunHooks,
    probe_iv: Option<SimDuration>,
    next_probe: Option<SimTime>,
    next_audit: Option<SimTime>,
    next_ckpt: Option<SimTime>,
    perturb: Option<SimTime>,
    artifacts: RunArtifacts,
}

/// First multiple of `iv` (counted from virtual zero) strictly after `t`.
fn grid_after(t: SimTime, iv: SimDuration) -> SimTime {
    let k = t.as_nanos() / iv.as_nanos() + 1;
    SimTime::from_nanos(k * iv.as_nanos())
}

pub(crate) struct NodeState {
    pub dcf: Dcf<Segment>,
    pub pos: Position,
    /// Live timer handles, densely indexed by [`TimerKind::index`].
    timers: [Option<TimerHandle>; TimerKind::COUNT],
    busy_count: u32,
    tx_history: VecDeque<(SimTime, SimTime)>,
}

/// What a flow carries and the endpoint state machines.
// The TCP variant dwarfs the UDP one since the sender embeds the
// congestion-controller zoo; a handful of flows exist per network, so
// boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
pub(crate) enum FlowKindState {
    Udp {
        source: CbrSource,
        sink: UdpSink,
    },
    Tcp {
        sender: TcpSender,
        receiver: TcpReceiver,
    },
    Probe {
        interval: SimDuration,
        payload: usize,
        next_seq: u64,
        stats: ProbeStats,
    },
}

/// Sender-side bookkeeping for the paper's cross-layer spoofed-ACK
/// detector (§VII-B): TCP retransmissions of segments the MAC already saw
/// acknowledged indicate spoofing (assuming negligible wireline loss).
#[derive(Debug, Default, Clone)]
pub struct CrossLayerStats {
    mac_acked: std::collections::HashSet<u64>,
    /// TCP data retransmissions observed leaving the sender.
    pub retx_total: u64,
    /// Retransmissions of segments whose original MAC transmission was
    /// acknowledged.
    pub retx_of_acked: u64,
    max_seq_sent: Option<u64>,
}

pub(crate) struct FlowState {
    pub id: FlowId,
    /// Wireless transmitter of the data direction (the AP).
    pub src: NodeId,
    /// Wireless receiver of the data direction (the client).
    pub dst: NodeId,
    /// Application payload bytes per packet (goodput accounting).
    pub payload: usize,
    pub kind: FlowKindState,
    /// One-way latency of the wired segment behind `src`, if the actual
    /// sender is remote.
    pub wire: Option<SimDuration>,
    /// Cross-layer detector bookkeeping.
    pub cross: CrossLayerStats,
}

/// A fully wired simulation, ready to [`run`](Network::run).
///
/// Construct via [`crate::builder::NetworkBuilder`].
pub struct Network {
    pub(crate) phy: PhyParams,
    pub(crate) channel: ChannelModel,
    pub(crate) capture: CaptureModel,
    pub(crate) cs_latency: SimDuration,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) flows: Vec<FlowState>,
    pub(crate) link_error: HashMap<(u16, u16), ErrorModel>,
    /// Rate-specific overrides: `(tx, rx, rate_bps) → error model`.
    /// Lets experiments model links that are clean at low rates and
    /// lossy at high rates, which is what makes rate adaptation react.
    pub(crate) rate_link_error: HashMap<(u16, u16, u64), ErrorModel>,
    pub(crate) default_error: ErrorModel,
    pub(crate) rng: SimRng,
    sched: Scheduler<Event>,
    /// Recent transmissions (active plus a short interference tail),
    /// referenced from in-flight events by generation-stamped handle.
    /// Frames are interned here once at transmission-start and borrowed
    /// everywhere else — steady state allocates zero frames per event.
    frames: FrameArena<Segment>,
    /// Precomputed per-pair reach and median received power (positions
    /// are fixed after assembly).
    link: LinkTable,
    /// Memoized frame airtimes per `(size, rate)`.
    air: AirtimeTable,
    /// Interned error models with per-`(model, size)` FER memoization.
    fer: FerTable,
    /// Dense `(src, dst) → interned error-model index` resolving
    /// `link_error → default_error`; rate-specific overrides still probe
    /// the sparse map (guarded by an is-empty check).
    link_em: Vec<u32>,
    /// Live TCP retransmission timers, indexed by flow id.
    flow_timers: Vec<Option<TimerHandle>>,
    recorder: Option<::obs::RecorderHandle>,
    /// Armed conformance checking: the ambient job that requested it and
    /// the checker tapping the recorder stream. The report is deposited
    /// when the event loop finishes.
    conform: Option<(::conform::ConformJob, ::conform::SharedChecker)>,
    /// Opt-in transmission log for the world's epoch exchange: every
    /// `(source, start, end)` since the last drain. `None` (the default)
    /// costs nothing. Excluded from snapshots — it is boundary-exchange
    /// scratch, not simulation state, and must not perturb audit digests.
    epoch_tx_log: Option<Vec<(NodeId, SimTime, SimTime)>>,
}

// `Network` is deliberately NOT `Send`: report handles (GRC, recorder)
// are `Rc<RefCell<…>>`. The campaign runner never moves a built network
// across threads — each worker builds, runs and snapshots its own inside
// one closure; only plain-data `RunPlan`/`RunOutcome` cross the boundary
// (asserted in `core::runplan`).

impl Network {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor fed by the builder
    pub(crate) fn assemble(
        phy: PhyParams,
        channel: ChannelModel,
        capture: CaptureModel,
        cs_latency: SimDuration,
        nodes: Vec<(Position, Dcf<Segment>)>,
        flows: Vec<FlowState>,
        link_error: HashMap<(u16, u16), ErrorModel>,
        rate_link_error: HashMap<(u16, u16, u64), ErrorModel>,
        default_error: ErrorModel,
        rng: SimRng,
    ) -> Self {
        // Positions, error models and PHY rates are fixed from here on,
        // so precompute the per-pair propagation table and intern every
        // error model the hot path can resolve without a rate override.
        // Interning walks the map keys sorted so table indices are
        // deterministic across runs.
        let positions: Vec<Position> = nodes.iter().map(|(pos, _)| *pos).collect();
        let n = positions.len();
        let link = LinkTable::build(&channel, &positions);
        let mut fer = FerTable::new();
        let default_idx = fer.intern(default_error);
        let mut link_em = vec![default_idx; n * n];
        let mut overrides: Vec<(u16, u16)> = link_error.keys().copied().collect();
        overrides.sort_unstable();
        for key in overrides {
            link_em[key.0 as usize * n + key.1 as usize] = fer.intern(link_error[&key]);
        }
        // Warm every model's FER cache with the control-frame sizes (the
        // data sizes vary per flow payload and memoize on first use).
        let control_sizes = [
            mac::frame::RTS_BYTES + PLCP_EQUIVALENT_BYTES,
            mac::frame::CTS_BYTES + PLCP_EQUIVALENT_BYTES,
            mac::frame::ACK_BYTES + PLCP_EQUIVALENT_BYTES,
        ];
        for idx in 0..=link_em.iter().copied().max().unwrap_or(default_idx) {
            fer.prefill(idx, &control_sizes);
        }
        Network {
            air: AirtimeTable::new(phy),
            phy,
            channel,
            capture,
            cs_latency,
            nodes: nodes
                .into_iter()
                .map(|(pos, dcf)| NodeState {
                    dcf,
                    pos,
                    timers: [None; TimerKind::COUNT],
                    busy_count: 0,
                    tx_history: VecDeque::new(),
                })
                .collect(),
            flow_timers: vec![None; flows.len()],
            flows,
            link_error,
            rate_link_error,
            default_error,
            rng,
            sched: Scheduler::new(),
            frames: FrameArena::new(),
            link,
            fer,
            link_em,
            recorder: None,
            conform: None,
            epoch_tx_log: None,
        }
    }

    /// Installs a flight recorder, wiring it into every MAC instance and
    /// TCP sender. PHY events and periodic gauge samples are recorded by
    /// the runtime itself. Recording never touches the event scheduler
    /// or the RNG streams, so simulation outcomes are identical with it
    /// on or off.
    pub fn set_recorder(&mut self, recorder: ::obs::RecorderHandle) {
        for st in &mut self.nodes {
            st.dcf.set_recorder(recorder.clone());
        }
        for f in &mut self.flows {
            if let FlowKindState::Tcp { sender, .. } = &mut f.kind {
                // Remote senders are attributed to the AP they sit behind.
                sender.set_recorder(recorder.clone(), f.src.0);
            }
        }
        // Arm conformance checking when an ambient job requests it: the
        // checker taps the recorder stream (every emission, before any
        // filter), with each station's declared quirks and retry limits
        // as its profile.
        if let Some(job) = ::conform::ambient::current() {
            let mut profiles = HashMap::new();
            for (i, st) in self.nodes.iter().enumerate() {
                let cfg = st.dcf.config();
                profiles.insert(
                    i as u16,
                    ::conform::NodeProfile {
                        quirks: st.dcf.quirk_flags(),
                        short_retry_limit: cfg.short_retry_limit,
                        long_retry_limit: cfg.long_retry_limit,
                    },
                );
            }
            let timing =
                ::conform::Timing::from_params(&self.phy, ::conform::timing::MSDU_MTU_BYTES);
            let mut checker = ::conform::Checker::new(timing, profiles);
            if !job.honor_whitelist {
                checker = checker.without_whitelist();
            }
            let shared = ::conform::SharedChecker::new(checker);
            recorder
                .borrow_mut()
                .set_tap(Box::new(::conform::CheckerTap(shared.clone())));
            self.conform = Some((job, shared));
        }
        self.recorder = Some(recorder);
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&::obs::RecorderHandle> {
        self.recorder.as_ref()
    }

    /// Enables frame-level tracing, keeping at most `capacity` events.
    ///
    /// Compatibility shim over the flight recorder: installs a PHY-only
    /// recorder (no probes) unless one is already present, in which case
    /// the existing recorder — which already captures PHY events — backs
    /// [`Network::trace`] and this is a no-op.
    pub fn enable_trace(&mut self, capacity: usize) {
        if self.recorder.is_none() {
            self.recorder = Some(
                ::obs::ObsSpec {
                    capacity,
                    probe_interval: None,
                    filter: ::obs::Filter::layers(&[::obs::Layer::Phy]),
                }
                .recorder(),
            );
        }
    }

    /// The collected frame trace, if a recorder is installed: rebuilt
    /// from the recorder's PHY events on each call.
    pub fn trace(&self) -> Option<Trace> {
        let rec = self.recorder.as_ref()?;
        let r = rec.borrow();
        Some(Trace::from_events(r.events(), r.dropped(), r.capacity()))
    }

    /// Immutable access to a node's DCF (counters, NAV, …).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn dcf(&self, node: NodeId) -> &Dcf<Segment> {
        &self.nodes[node.0 as usize].dcf
    }

    /// Mutable access to a node's DCF (e.g. its observer hooks).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn dcf_mut(&mut self, node: NodeId) -> &mut Dcf<Segment> {
        &mut self.nodes[node.0 as usize].dcf
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Every node's position, indexed by node id. The world coordinator
    /// reads these once to build the static cross-cell coupling maps.
    pub fn positions(&self) -> Vec<Position> {
        self.nodes.iter().map(|st| st.pos).collect()
    }

    /// The configured propagation model (comm/cs ranges, RSSI noise).
    pub fn channel_model(&self) -> &ChannelModel {
        &self.channel
    }

    /// Starts logging every transmission `(source, start, end)` for the
    /// world's epoch exchange. Off by default; the log is not part of
    /// snapshots.
    pub fn enable_tx_log(&mut self) {
        self.epoch_tx_log = Some(Vec::new());
    }

    /// Takes the transmissions logged since the last drain (empty when
    /// logging is off).
    pub fn drain_tx_log(&mut self) -> Vec<(NodeId, SimTime, SimTime)> {
        self.epoch_tx_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Runs the simulation for `duration` of virtual time and returns the
    /// collected metrics. Can be called once per network.
    pub fn run(&mut self, duration: SimDuration) -> RunMetrics {
        self.run_hooked(duration, RunHooks::default()).0
    }

    /// Runs the simulation with virtual-time hooks: audit-ladder rungs,
    /// periodic checkpoints and the fault-injection knob. Equivalent to
    /// [`run`](Network::run) when `hooks` is all-default — the hooks ride
    /// the event loop on fixed virtual-time grids without scheduling
    /// events or touching the RNG streams, so simulation outcomes are
    /// byte-identical with them on or off.
    pub fn run_hooked(
        &mut self,
        duration: SimDuration,
        hooks: RunHooks,
    ) -> (RunMetrics, RunArtifacts) {
        self.start_flows();
        self.event_loop(duration, hooks, None)
    }

    /// Continues a network whose state was restored from a checkpoint
    /// taken at barrier instant `resumed_at`. Flows are *not* restarted —
    /// the restored scheduler already holds every armed event — and each
    /// hook grid resumes at its first point strictly after `resumed_at`,
    /// so the hook sequence concatenates seamlessly with the portion
    /// emitted before the snapshot.
    pub fn resume_hooked(
        &mut self,
        duration: SimDuration,
        hooks: RunHooks,
        resumed_at: SimTime,
    ) -> (RunMetrics, RunArtifacts) {
        // A resumed checker sees a mid-run event stream: lazily
        // initialized rules stay armed, whole-run ones are disarmed.
        if let Some((_, checker)) = &self.conform {
            checker.borrow_mut().set_midstream();
        }
        self.event_loop(duration, hooks, Some(resumed_at))
    }

    /// The event loop: one straight advance to the run horizon. Before
    /// each event is dispatched, every hook barrier due at or before that
    /// event's timestamp fires in virtual-time order (gauge → audit →
    /// checkpoint at equal instants), so a checkpoint observes exactly
    /// the barriers that precede it and a resumed run re-derives the rest
    /// from the grid.
    fn event_loop(
        &mut self,
        duration: SimDuration,
        hooks: RunHooks,
        resumed_at: Option<SimTime>,
    ) -> (RunMetrics, RunArtifacts) {
        let mut cursor = self.begin_hooked(hooks, resumed_at);
        self.advance(&mut cursor, SimTime::ZERO + duration);
        self.finish_hooked(cursor, duration)
    }

    /// Initializes the hook grids for an epoch-driven run. Pass
    /// `resumed_at` when the network state was restored from a checkpoint
    /// taken at that barrier instant; each grid then resumes at its first
    /// point strictly after it.
    pub fn begin_hooked(&mut self, hooks: RunHooks, resumed_at: Option<SimTime>) -> HookCursor {
        // Gauge sampling rides the event loop on a fixed virtual-time
        // grid instead of scheduling its own events, so the event count
        // and every RNG stream are byte-identical with recording off.
        let probe_iv = self
            .recorder
            .as_ref()
            .and_then(|r| r.borrow().probe_interval());
        let first = |start: SimTime, iv: SimDuration| match resumed_at {
            None => start,
            Some(c) => grid_after(c, iv),
        };
        HookCursor {
            next_probe: probe_iv.map(|iv| first(SimTime::ZERO, iv)),
            next_audit: hooks.audit_every.map(|iv| first(SimTime::ZERO + iv, iv)),
            next_ckpt: hooks
                .checkpoint_every
                .map(|iv| first(SimTime::ZERO + iv, iv)),
            // A perturbation strictly before the restored clock already
            // fired before the checkpoint (the event that triggered it
            // advanced the clock past it), so a resumed run must not
            // re-apply it.
            perturb: hooks.perturb_rng_at.filter(|&t| self.sched.now() < t),
            probe_iv,
            hooks,
            artifacts: RunArtifacts::default(),
        }
    }

    /// Dispatches every scheduled event with timestamp at or before
    /// `horizon`, firing due hooks in virtual-time order before each.
    /// Hooks due at or before the horizon but after the last event fire
    /// before this returns, so a subsequent [`Network::inject_busy`] for
    /// the next epoch cannot slip in front of them. Idempotent at a
    /// fixed horizon; callable repeatedly with increasing horizons.
    pub fn advance(&mut self, cursor: &mut HookCursor, horizon: SimTime) {
        let _span = ::obs::span!("net/run");
        loop {
            let next_event = self.sched.peek_time().filter(|&t| t <= horizon);
            let upto = next_event.unwrap_or(horizon);
            loop {
                let due = [
                    (cursor.next_probe, HOOK_GAUGE),
                    (cursor.next_audit, HOOK_AUDIT),
                    (cursor.next_ckpt, HOOK_CKPT),
                ]
                .into_iter()
                .filter_map(|(t, kind)| t.filter(|&t| t <= upto).map(|t| (t, kind)))
                .min();
                let Some((at, kind)) = due else { break };
                match kind {
                    HOOK_GAUGE => {
                        self.sample_gauges(at);
                        cursor.next_probe =
                            Some(at + cursor.probe_iv.expect("gauge hook without interval"));
                    }
                    HOOK_AUDIT => {
                        for (layer, digest) in self.layer_digests() {
                            cursor.artifacts.audit.push((at.as_nanos(), layer, digest));
                        }
                        cursor.next_audit = Some(
                            at + cursor
                                .hooks
                                .audit_every
                                .expect("audit hook without interval"),
                        );
                    }
                    _ => {
                        let mut w = snap::Enc::new();
                        self.snap_save(&mut w);
                        cursor.artifacts.checkpoints.push((at, w.into_bytes()));
                        cursor.next_ckpt = Some(
                            at + cursor
                                .hooks
                                .checkpoint_every
                                .expect("ckpt hook without interval"),
                        );
                    }
                }
            }
            let Some(t) = next_event else { break };
            if let Some(p) = cursor.perturb {
                if t >= p {
                    // Fault injection for the audit-ladder tests: one
                    // extra draw knocks the shared RNG stream out of
                    // alignment from this event onward.
                    let _ = self.rng.next_u64();
                    cursor.perturb = None;
                }
            }
            let (now, ev) = self.sched.next().expect("peeked event vanished");
            debug_assert_eq!(now, t, "pop disagrees with peek");
            self.dispatch(now, ev);
        }
    }

    /// Ends an epoch-driven run: collects metrics over `duration` of
    /// virtual time, records run statistics and deposits the conformance
    /// report if checking was armed.
    pub fn finish_hooked(
        &mut self,
        cursor: HookCursor,
        duration: SimDuration,
    ) -> (RunMetrics, RunArtifacts) {
        let metrics = self.collect_metrics(duration);
        crate::stats::record_run(metrics.events_processed);
        if let Some((job, checker)) = self.conform.take() {
            if let Some(rec) = &self.recorder {
                let _ = rec.borrow_mut().take_tap();
            }
            job.deposit(checker.borrow_mut().finish_report());
        }
        (metrics, cursor.artifacts)
    }

    /// Marks the medium busy at `node` over `[start, end)` without any
    /// frame behind it — cross-cell interference injected by the world's
    /// epoch exchange. A `start` at or before the current clock (the
    /// exchange clips intervals to epoch boundaries, so a neighbor's
    /// transmission can abut the boundary exactly) is nudged one
    /// nanosecond past `now` so the scheduler never sees a stale event;
    /// intervals the nudge empties are dropped.
    pub fn inject_busy(&mut self, node: NodeId, start: SimTime, end: SimTime) {
        let now = self.sched.now();
        let onset = if start <= now {
            now + SimDuration::from_nanos(1)
        } else {
            start
        };
        if end <= onset {
            return;
        }
        self.sched.arm_at(onset, Event::BusyOnset { node });
        self.sched.arm_at(end, Event::BusyEnd { node });
    }

    /// Samples every probe gauge at virtual instant `at`. Values reflect
    /// the state after the last event dispatched before `at`.
    fn sample_gauges(&mut self, at: SimTime) {
        let _span = ::obs::span!("obs/probe");
        let Some(rec) = &self.recorder else { return };
        let mut r = rec.borrow_mut();
        for (i, st) in self.nodes.iter().enumerate() {
            let node = i as u16;
            r.sample(GAUGE_QUEUE_LEN, node, at, st.dcf.queue_len() as f64);
            r.sample(
                GAUGE_NAV_REMAINING_US,
                node,
                at,
                st.dcf.nav_until().saturating_since(at).as_micros() as f64,
            );
            r.sample(GAUGE_CW, node, at, st.dcf.cw() as f64);
        }
        for f in &self.flows {
            if let FlowKindState::Tcp { sender, .. } = &f.kind {
                r.sample(GAUGE_CWND, f.id.0 as u16, at, sender.cwnd());
            }
        }
    }

    pub(crate) fn start_flows(&mut self) {
        for idx in 0..self.flows.len() {
            // Small deterministic stagger so synchronized sources do not
            // all fire in the same instant at t = 0.
            let offset = SimDuration::from_micros(97 * idx as u64);
            let id = self.flows[idx].id;
            match &self.flows[idx].kind {
                FlowKindState::Udp { .. } => {
                    self.sched.arm(offset, Event::CbrTick { flow: id });
                }
                FlowKindState::Tcp { .. } => {
                    // Kick the sender at the offset via a zero-delay timer
                    // path: emit its initial window immediately.
                    self.sched.arm(offset, Event::TcpTimer { flow: id });
                }
                FlowKindState::Probe { .. } => {
                    self.sched.arm(offset, Event::ProbeTick { flow: id });
                }
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::MacTimer { node, kind } => {
                let _span = ::obs::span!("mac/timer");
                self.nodes[node.0 as usize].timers[kind.index()] = None;
                let actions = self.nodes[node.0 as usize].dcf.on_timer(now, kind);
                self.process_actions(now, node, actions);
            }
            Event::TxEnd { tx } => {
                let node = self
                    .frames
                    .get(tx)
                    .expect("tx end without record")
                    .frame
                    .actual_tx;
                let actions = self.nodes[node.0 as usize].dcf.on_tx_end(now);
                self.process_actions(now, node, actions);
                self.prune_frames(now);
            }
            Event::BusyOnset { node } => {
                let st = &mut self.nodes[node.0 as usize];
                st.busy_count += 1;
                if st.busy_count == 1 {
                    let actions = st.dcf.on_channel_busy(now);
                    self.process_actions(now, node, actions);
                }
            }
            Event::BusyEnd { node } => {
                let st = &mut self.nodes[node.0 as usize];
                debug_assert!(st.busy_count > 0, "busy underflow");
                st.busy_count = st.busy_count.saturating_sub(1);
                if st.busy_count == 0 {
                    let actions = st.dcf.on_channel_idle(now);
                    self.process_actions(now, node, actions);
                }
            }
            Event::RxConclude { node, tx } => {
                self.conclude_reception(now, node, tx);
            }
            Event::CbrTick { flow } => {
                let (seg, interval, src, dst) = {
                    let f = &mut self.flows[flow.0 as usize];
                    let FlowKindState::Udp { source, .. } = &mut f.kind else {
                        return;
                    };
                    (source.next_datagram(), source.interval(), f.src, f.dst)
                };
                // ±1 % tick jitter: equal-rate CBR sources otherwise
                // phase-lock against a shared tail-drop queue, starving
                // whichever flow always arrives second (the mean rate is
                // unchanged).
                let jitter = 0.99 + 0.02 * self.rng.uniform_f64();
                let next = SimDuration::from_nanos((interval.as_nanos() as f64 * jitter) as u64);
                self.sched.arm(next, Event::CbrTick { flow });
                if let Segment::UdpData { flow, seq, bytes } = seg {
                    self.record_flow_event(now, src.0, &transport::obs::UDP_TX, flow, seq, bytes);
                }
                self.enqueue_at(now, src, dst, seg);
            }
            Event::TcpTimer { flow } => {
                self.flow_timers[flow.0 as usize] = None;
                let outputs = {
                    let f = &mut self.flows[flow.0 as usize];
                    let FlowKindState::Tcp { sender, .. } = &mut f.kind else {
                        return;
                    };
                    if sender.flight_size() == 0 && sender.retransmissions == 0 {
                        sender.start(now) // connection open
                    } else {
                        sender.on_timeout(now)
                    }
                };
                self.process_tcp_outputs(now, flow, outputs);
            }
            Event::ProbeTick { flow } => {
                let (seg, interval, src, dst) = {
                    let f = &mut self.flows[flow.0 as usize];
                    let FlowKindState::Probe {
                        interval,
                        payload,
                        next_seq,
                        stats,
                    } = &mut f.kind
                    else {
                        return;
                    };
                    let seq = *next_seq;
                    *next_seq += 1;
                    stats.sent += 1;
                    (
                        Segment::ProbeReq {
                            flow,
                            seq,
                            bytes: *payload + transport::packet::UDP_IP_OVERHEAD,
                        },
                        *interval,
                        f.src,
                        f.dst,
                    )
                };
                self.sched.arm(interval, Event::ProbeTick { flow });
                self.enqueue_at(now, src, dst, seg);
            }
            Event::WireDeliver {
                flow,
                to_remote,
                seg,
            } => {
                if to_remote {
                    // A TCP ACK reached the remote sender across the wire.
                    let Segment::TcpAck { ack, .. } = seg else {
                        return;
                    };
                    let outputs = {
                        let f = &mut self.flows[flow.0 as usize];
                        let FlowKindState::Tcp { sender, .. } = &mut f.kind else {
                            return;
                        };
                        sender.on_ack(now, ack)
                    };
                    self.process_tcp_outputs(now, flow, outputs);
                } else {
                    // A data segment reached the AP from the remote sender.
                    let (src, dst) = {
                        let f = &self.flows[flow.0 as usize];
                        (f.src, f.dst)
                    };
                    self.enqueue_at(now, src, dst, seg);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // MAC action processing
    // ------------------------------------------------------------------

    fn process_actions(&mut self, now: SimTime, node: NodeId, mut actions: MacActions<Segment>) {
        for action in actions.drain(..) {
            match action {
                MacAction::StartTx(frame) => self.start_transmission(now, frame),
                MacAction::SetTimer { kind, after } => {
                    let h = self.sched.arm(after, Event::MacTimer { node, kind });
                    if let Some(old) = self.nodes[node.0 as usize].timers[kind.index()].replace(h) {
                        old.cancel(&mut self.sched);
                    }
                }
                MacAction::CancelTimer(kind) => {
                    if let Some(old) = self.nodes[node.0 as usize].timers[kind.index()].take() {
                        old.cancel(&mut self.sched);
                    }
                }
                MacAction::Deliver { body, from } => {
                    self.deliver_segment(now, node, body, from);
                }
                MacAction::TxSuccess { body, .. } => {
                    // Record MAC-acknowledged TCP segments for the
                    // cross-layer spoof detector.
                    if let Segment::TcpData { flow, seq, .. } = body {
                        self.flows[flow.0 as usize].cross.mac_acked.insert(seq);
                    }
                }
                MacAction::Dropped { body, reason, .. } => {
                    // Loss signals stay at the MAC (TCP discovers loss
                    // end-to-end) with one exception: a probe request that
                    // never reached the air (queue overflow at a saturated
                    // interface) must not count as a *sent* probe, or the
                    // fake-ACK detector would read congestion as channel
                    // loss.
                    if let (Segment::ProbeReq { flow, .. }, mac::DropReason::QueueFull) =
                        (&body, reason)
                    {
                        let f = &mut self.flows[flow.0 as usize];
                        if let FlowKindState::Probe { stats, .. } = &mut f.kind {
                            stats.sent = stats.sent.saturating_sub(1);
                        }
                    }
                }
            }
        }
    }

    fn start_transmission(&mut self, now: SimTime, frame: Frame<Segment>) {
        let src = frame.actual_tx;
        let airtime = frame.airtime_with(&mut self.air);
        let end = now + airtime;
        if let Some(rec) = &self.recorder {
            phy::obs::record_tx_start(
                rec,
                now,
                src.0,
                frame.dst.0,
                frame_code(frame.kind),
                airtime,
            );
        }
        if let Some(log) = &mut self.epoch_tx_log {
            log.push((src, now, end));
        }
        // The frame moves into the arena once; everything downstream —
        // busy tracking, reception, tx-end bookkeeping — works through
        // the generation-stamped handle.
        let id = self.frames.insert(frame, now, end);
        {
            let st = &mut self.nodes[src.0 as usize];
            st.tx_history.push_back((now, end));
            if st.tx_history.len() > 16 {
                st.tx_history.pop_front();
            }
        }
        self.sched.arm_at(end, Event::TxEnd { tx: id });
        let onset = (now + self.cs_latency).min(end);
        for m in 0..self.nodes.len() {
            if m == src.0 as usize {
                continue;
            }
            let node = NodeId(m as u16);
            match self.link.reach(src.0 as usize, m) {
                Reach::None => {}
                Reach::Sense => {
                    self.sched.arm_at(onset, Event::BusyOnset { node });
                    self.sched.arm_at(end, Event::BusyEnd { node });
                }
                Reach::Decode => {
                    self.sched.arm_at(onset, Event::BusyOnset { node });
                    self.sched.arm_at(end, Event::BusyEnd { node });
                    self.sched.arm_at(end, Event::RxConclude { node, tx: id });
                }
            }
        }
    }

    fn conclude_reception(&mut self, now: SimTime, node: NodeId, tx: FrameId) {
        let _span = ::obs::span!("phy/receive");
        let rx = node.0 as usize;
        let rec = self.frames.get(tx).expect("rx conclude without record");
        let (a_start, a_end) = (rec.start, rec.end);
        let (a_src, a_dst, a_kind) = (rec.frame.actual_tx, rec.frame.dst, rec.frame.kind);
        // Half-duplex: if we transmitted at any point during the frame, we
        // heard nothing of it.
        if self.nodes[rx]
            .tx_history
            .iter()
            .any(|&(s, e)| s < a_end && a_start < e)
        {
            return;
        }
        // Median received power doubles as the capture-comparison input
        // and the RSSI jitter center (`rx_power_dbm ≡ rssi median`).
        let p_a = self.link.power_dbm(a_src.0 as usize, rx);
        // Strongest overlapping interferer (anything decodable or sensed).
        // Arena order is arbitrary but the fold is a pure max, so the
        // result is order-independent.
        let mut max_other = f64::NEG_INFINITY;
        for (h, b) in self.frames.entries() {
            if h == tx || b.frame.actual_tx == node {
                continue;
            }
            if b.start < a_end && a_start < b.end {
                let b_src = b.frame.actual_tx.0 as usize;
                if self.link.reach(b_src, rx) != Reach::None {
                    max_other = max_other.max(self.link.power_dbm(b_src, rx));
                }
            }
        }
        let rssi_dbm = self.channel.rssi().sample_from_median(p_a, &mut self.rng);
        let captured = max_other == f64::NEG_INFINITY
            || self.capture.decide(p_a, max_other) == phy::capture::CaptureOutcome::FirstCaptures;
        // The frame never leaves the arena: the receiver's MAC borrows it
        // through the RxEvent and copies only the fields it keeps.
        let frame = &rec.frame;
        let event = if !captured {
            RxEvent::Corrupted {
                frame,
                rssi_dbm,
                cause: CorruptionCause::Collision,
            }
        } else {
            let bytes = frame.mac_bytes() + PLCP_EQUIVALENT_BYTES;
            // Rate-specific overrides are rare; probe the sparse map only
            // when one could exist, else hit the dense interned table.
            let rate_em = if self.rate_link_error.is_empty() {
                None
            } else {
                frame
                    .rate_bps
                    .and_then(|rate| self.rate_link_error.get(&(a_src.0, node.0, rate)))
                    .copied()
            };
            let corrupted = match rate_em {
                Some(em) => em.corrupts(bytes, &mut self.rng),
                None => {
                    let idx = self.link_em[a_src.0 as usize * self.link.nodes() + rx];
                    self.fer.corrupts(idx, bytes, &mut self.rng)
                }
            };
            if corrupted {
                RxEvent::Corrupted {
                    frame,
                    rssi_dbm,
                    cause: CorruptionCause::Noise,
                }
            } else {
                RxEvent::Ok { frame, rssi_dbm }
            }
        };
        if let Some(rec) = &self.recorder {
            let outcome = match &event {
                RxEvent::Ok { .. } => phy::obs::RxOutcome::Ok,
                RxEvent::Corrupted {
                    cause: CorruptionCause::Noise,
                    ..
                } => phy::obs::RxOutcome::Noise,
                RxEvent::Corrupted { .. } => phy::obs::RxOutcome::Collision,
            };
            phy::obs::record_rx(
                rec,
                now,
                node.0,
                a_src.0,
                a_dst.0,
                frame_code(a_kind),
                outcome,
                a_end.saturating_since(a_start),
            );
        }
        let actions = self.nodes[node.0 as usize].dcf.on_rx_end(now, event);
        self.process_actions(now, node, actions);
    }

    fn prune_frames(&mut self, now: SimTime) {
        let horizon = SimDuration::from_millis(50);
        self.frames.retain(|t| t.end + horizon > now);
    }

    // ------------------------------------------------------------------
    // Transport plumbing
    // ------------------------------------------------------------------

    fn enqueue_at(&mut self, now: SimTime, at: NodeId, to: NodeId, seg: Segment) {
        let actions = self.nodes[at.0 as usize].dcf.on_enqueue(now, to, seg);
        self.process_actions(now, at, actions);
    }

    /// Emits a transport flow event (for conformance flow accounting)
    /// if a recorder is installed.
    fn record_flow_event(
        &self,
        now: SimTime,
        node: u16,
        kind: &'static ::obs::EventKind,
        flow: FlowId,
        seq: u64,
        bytes: usize,
    ) {
        if let Some(rec) = &self.recorder {
            rec.borrow_mut()
                .emit(now, node, kind, &[flow.0 as f64, seq as f64, bytes as f64]);
        }
    }

    fn deliver_segment(&mut self, now: SimTime, at: NodeId, seg: Segment, _from: NodeId) {
        match seg {
            Segment::UdpData { flow, seq, bytes } => {
                let f = &mut self.flows[flow.0 as usize];
                let mut delivered = false;
                if at == f.dst {
                    if let FlowKindState::Udp { sink, .. } = &mut f.kind {
                        sink.on_data(now, seq, bytes);
                        delivered = true;
                    }
                }
                if delivered {
                    self.record_flow_event(
                        now,
                        at.0,
                        &transport::obs::UDP_DELIVER,
                        flow,
                        seq,
                        bytes,
                    );
                }
            }
            Segment::TcpData { flow, seq, bytes } => {
                let (ack, src) = {
                    let f = &mut self.flows[flow.0 as usize];
                    if at != f.dst {
                        return;
                    }
                    let FlowKindState::Tcp { receiver, .. } = &mut f.kind else {
                        return;
                    };
                    (receiver.on_data(seq, bytes), f.src)
                };
                self.record_flow_event(now, at.0, &transport::obs::TCP_DELIVER, flow, seq, bytes);
                self.enqueue_at(now, at, src, ack);
            }
            Segment::TcpAck { flow, ack, .. } => {
                let f = &self.flows[flow.0 as usize];
                if at != f.src {
                    return;
                }
                match f.wire {
                    Some(delay) => {
                        self.sched.arm(
                            delay,
                            Event::WireDeliver {
                                flow,
                                to_remote: true,
                                seg: Segment::tcp_ack(flow, ack),
                            },
                        );
                    }
                    None => {
                        let outputs = {
                            let f = &mut self.flows[flow.0 as usize];
                            let FlowKindState::Tcp { sender, .. } = &mut f.kind else {
                                return;
                            };
                            sender.on_ack(now, ack)
                        };
                        self.process_tcp_outputs(now, flow, outputs);
                    }
                }
            }
            Segment::ProbeReq { flow, seq, bytes } => {
                let (src,) = {
                    let f = &self.flows[flow.0 as usize];
                    if at != f.dst {
                        return;
                    }
                    (f.src,)
                };
                self.enqueue_at(now, at, src, Segment::ProbeResp { flow, seq, bytes });
            }
            Segment::ProbeResp { flow, .. } => {
                let f = &mut self.flows[flow.0 as usize];
                if at == f.src {
                    if let FlowKindState::Probe { stats, .. } = &mut f.kind {
                        stats.echoed += 1;
                    }
                }
            }
        }
    }

    fn process_tcp_outputs(&mut self, now: SimTime, flow: FlowId, outputs: Vec<TcpOutput>) {
        let _span = ::obs::span!("transport/tcp");
        for out in outputs {
            match out {
                TcpOutput::Send(seg) => {
                    if let Segment::TcpData { seq, .. } = seg {
                        let cross = &mut self.flows[flow.0 as usize].cross;
                        if cross.max_seq_sent.is_some_and(|m| seq <= m) {
                            cross.retx_total += 1;
                            if cross.mac_acked.contains(&seq) {
                                cross.retx_of_acked += 1;
                            }
                        }
                        cross.max_seq_sent = Some(cross.max_seq_sent.map_or(seq, |m| m.max(seq)));
                    }
                    if let Segment::TcpData { seq, bytes, .. } = seg {
                        let node = self.flows[flow.0 as usize].src.0;
                        self.record_flow_event(
                            now,
                            node,
                            &transport::obs::TCP_TX,
                            flow,
                            seq,
                            bytes,
                        );
                    }
                    let f = &self.flows[flow.0 as usize];
                    match f.wire {
                        Some(delay) => {
                            self.sched.arm(
                                delay,
                                Event::WireDeliver {
                                    flow,
                                    to_remote: false,
                                    seg,
                                },
                            );
                        }
                        None => {
                            let (src, dst) = (f.src, f.dst);
                            self.enqueue_at(now, src, dst, seg);
                        }
                    }
                }
                TcpOutput::ArmTimer(after) => {
                    let h = self.sched.arm(after, Event::TcpTimer { flow });
                    if let Some(old) = self.flow_timers[flow.0 as usize].replace(h) {
                        old.cancel(&mut self.sched);
                    }
                }
                TcpOutput::CancelTimer => {
                    if let Some(old) = self.flow_timers[flow.0 as usize].take() {
                        old.cancel(&mut self.sched);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    fn collect_metrics(&mut self, duration: SimDuration) -> RunMetrics {
        let end = SimTime::ZERO + duration;
        let mut metrics = RunMetrics {
            duration,
            events_processed: self.sched.processed(),
            ..RunMetrics::default()
        };
        for f in &self.flows {
            let payload = f.payload;
            let fm = match &f.kind {
                FlowKindState::Udp { sink, .. } => FlowMetrics {
                    distinct_packets: sink.distinct_datagrams,
                    payload_bytes: sink.distinct_datagrams * payload as u64,
                    duplicates: sink.duplicates,
                    ..FlowMetrics::default()
                },
                FlowKindState::Tcp { sender, receiver } => FlowMetrics {
                    distinct_packets: receiver.distinct_segments,
                    payload_bytes: receiver.distinct_segments * payload as u64,
                    duplicates: receiver.duplicates,
                    avg_cwnd: sender.avg_cwnd(end),
                    retransmissions: sender.retransmissions,
                    timeouts: sender.timeouts,
                    retx_of_mac_acked: f.cross.retx_of_acked,
                    ..FlowMetrics::default()
                },
                FlowKindState::Probe { stats, .. } => FlowMetrics {
                    distinct_packets: stats.echoed,
                    payload_bytes: stats.echoed * payload as u64,
                    probe_app_loss: Some(stats.app_loss()),
                    ..FlowMetrics::default()
                },
            };
            metrics.flows.insert(f.id.0, fm);
        }
        for (i, st) in self.nodes.iter().enumerate() {
            metrics.nodes.insert(
                i as u16,
                NodeMetrics {
                    counters: st.dcf.counters.clone(),
                    avg_cw: st.dcf.counters.avg_cw_time_weighted(end),
                },
            );
        }
        metrics
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("flows", &self.flows.len())
            .field("now", &self.sched.now())
            .finish_non_exhaustive()
    }
}

// ----------------------------------------------------------------------
// Snapshots
//
// A snapshot carries only what the event loop mutates; topology, channel
// and protocol configuration are rebuilt by re-running the builder (or
// `core`'s scenario) before `snap_restore` overwrites the state on top.
// ----------------------------------------------------------------------

impl snap::SnapValue for Event {
    fn save(&self, w: &mut snap::Enc) {
        match self {
            Event::MacTimer { node, kind } => {
                w.u8(0);
                node.save(w);
                kind.save(w);
            }
            Event::TxEnd { tx } => {
                w.u8(1);
                tx.save(w);
            }
            Event::BusyOnset { node } => {
                w.u8(2);
                node.save(w);
            }
            Event::BusyEnd { node } => {
                w.u8(3);
                node.save(w);
            }
            Event::RxConclude { node, tx } => {
                w.u8(4);
                node.save(w);
                tx.save(w);
            }
            Event::CbrTick { flow } => {
                w.u8(5);
                flow.save(w);
            }
            Event::TcpTimer { flow } => {
                w.u8(6);
                flow.save(w);
            }
            Event::ProbeTick { flow } => {
                w.u8(7);
                flow.save(w);
            }
            Event::WireDeliver {
                flow,
                to_remote,
                seg,
            } => {
                w.u8(8);
                flow.save(w);
                w.bool(*to_remote);
                seg.save(w);
            }
        }
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(match r.u8()? {
            0 => Event::MacTimer {
                node: NodeId::load(r)?,
                kind: TimerKind::load(r)?,
            },
            1 => Event::TxEnd {
                tx: FrameId::load(r)?,
            },
            2 => Event::BusyOnset {
                node: NodeId::load(r)?,
            },
            3 => Event::BusyEnd {
                node: NodeId::load(r)?,
            },
            4 => Event::RxConclude {
                node: NodeId::load(r)?,
                tx: FrameId::load(r)?,
            },
            5 => Event::CbrTick {
                flow: FlowId::load(r)?,
            },
            6 => Event::TcpTimer {
                flow: FlowId::load(r)?,
            },
            7 => Event::ProbeTick {
                flow: FlowId::load(r)?,
            },
            8 => Event::WireDeliver {
                flow: FlowId::load(r)?,
                to_remote: r.bool()?,
                seg: Segment::load(r)?,
            },
            t => return Err(snap::SnapError::Corrupt(format!("event tag {t}"))),
        })
    }
}

impl NodeState {
    /// Position is placement configuration and is not serialized.
    fn snap_save(&self, w: &mut snap::Enc) {
        self.dcf.snap_save(w);
        for t in &self.timers {
            t.save(w);
        }
        w.u32(self.busy_count);
        w.usize(self.tx_history.len());
        for span in &self.tx_history {
            span.save(w);
        }
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        self.dcf.snap_restore(r)?;
        for slot in &mut self.timers {
            *slot = Option::<TimerHandle>::load(r)?;
        }
        self.busy_count = r.u32()?;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(snap::SnapError::Corrupt(format!(
                "tx history length {n} exceeds input"
            )));
        }
        self.tx_history.clear();
        for _ in 0..n {
            self.tx_history.push_back(<(SimTime, SimTime)>::load(r)?);
        }
        Ok(())
    }
}

impl CrossLayerStats {
    /// MAC-acked sequence numbers are serialized sorted so the encoding
    /// is `HashSet`-order independent.
    fn snap_save(&self, w: &mut snap::Enc) {
        let mut acked: Vec<u64> = self.mac_acked.iter().copied().collect();
        acked.sort_unstable();
        acked.save(w);
        w.u64(self.retx_total);
        w.u64(self.retx_of_acked);
        self.max_seq_sent.save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        self.mac_acked = Vec::<u64>::load(r)?.into_iter().collect();
        self.retx_total = r.u64()?;
        self.retx_of_acked = r.u64()?;
        self.max_seq_sent = Option::<u64>::load(r)?;
        Ok(())
    }
}

impl FlowState {
    /// Endpoints, routing and payload size come from the flow spec; only
    /// the endpoint state machines and the detector bookkeeping move.
    fn snap_save(&self, w: &mut snap::Enc) {
        match &self.kind {
            FlowKindState::Udp { source, sink } => {
                w.u8(0);
                source.snap_save(w);
                sink.snap_save(w);
            }
            FlowKindState::Tcp { sender, receiver } => {
                w.u8(1);
                sender.snap_save(w);
                receiver.snap_save(w);
            }
            FlowKindState::Probe {
                next_seq, stats, ..
            } => {
                w.u8(2);
                w.u64(*next_seq);
                stats.save(w);
            }
        }
        self.cross.snap_save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        let tag = r.u8()?;
        match (&mut self.kind, tag) {
            (FlowKindState::Udp { source, sink }, 0) => {
                source.snap_restore(r)?;
                sink.snap_restore(r)?;
            }
            (FlowKindState::Tcp { sender, receiver }, 1) => {
                sender.snap_restore(r)?;
                receiver.snap_restore(r)?;
            }
            (
                FlowKindState::Probe {
                    next_seq, stats, ..
                },
                2,
            ) => {
                *next_seq = r.u64()?;
                *stats = ProbeStats::load(r)?;
            }
            _ => {
                return Err(snap::SnapError::Corrupt(format!(
                    "flow {} kind tag {tag} does not match configuration",
                    self.id.0
                )))
            }
        }
        self.cross.snap_restore(r)
    }
}

/// Snapshot = shared RNG stream, scheduler (clock + pending events),
/// transmission arena, per-node MAC state and per-flow transport state.
/// PHY parameters, channel/capture models and error tables are
/// configuration and are excluded; the owner rebuilds an identically
/// configured network before restoring.
impl snap::SnapState for Network {
    fn snap_save(&self, w: &mut snap::Enc) {
        self.rng.snap_save(w);
        self.sched.snap_save(w);
        self.frames.save(w);
        w.usize(self.nodes.len());
        for st in &self.nodes {
            st.snap_save(w);
        }
        w.usize(self.flows.len());
        for f in &self.flows {
            f.snap_save(w);
        }
        self.flow_timers.save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        self.rng.snap_restore(r)?;
        self.sched.snap_restore(r)?;
        self.frames = FrameArena::load(r)?;
        let n = r.usize()?;
        if n != self.nodes.len() {
            return Err(snap::SnapError::Corrupt(format!(
                "snapshot has {n} nodes, network has {}",
                self.nodes.len()
            )));
        }
        for st in &mut self.nodes {
            st.snap_restore(r)?;
        }
        let nf = r.usize()?;
        if nf != self.flows.len() {
            return Err(snap::SnapError::Corrupt(format!(
                "snapshot has {nf} flows, network has {}",
                self.flows.len()
            )));
        }
        for f in &mut self.flows {
            f.snap_restore(r)?;
        }
        let timers = Vec::<Option<TimerHandle>>::load(r)?;
        if timers.len() != self.flow_timers.len() {
            return Err(snap::SnapError::Corrupt("flow timer count mismatch".into()));
        }
        self.flow_timers = timers;
        Ok(())
    }
}

impl Network {
    /// One audit-ladder rung: a digest of each layer's canonical state,
    /// in a fixed order. The PHY has no runtime state of its own (its
    /// random draws come from the shared stream), so its digest covers
    /// the configured error tables and stays constant unless the
    /// configuration itself diverges.
    pub fn layer_digests(&self) -> [(&'static str, u64); 6] {
        let phy = {
            let mut w = snap::Enc::new();
            self.default_error.save(&mut w);
            let mut links: Vec<(u16, u16)> = self.link_error.keys().copied().collect();
            links.sort_unstable();
            for k in links {
                k.save(&mut w);
                self.link_error[&k].save(&mut w);
            }
            let mut rate_links: Vec<(u16, u16, u64)> =
                self.rate_link_error.keys().copied().collect();
            rate_links.sort_unstable();
            for k in rate_links {
                k.save(&mut w);
                self.rate_link_error[&k].save(&mut w);
            }
            snap::fnv1a(w.bytes())
        };
        let mac = {
            let mut w = snap::Enc::new();
            for st in &self.nodes {
                st.snap_save(&mut w);
            }
            self.frames.save(&mut w);
            snap::fnv1a(w.bytes())
        };
        let transport = {
            let mut w = snap::Enc::new();
            for f in &self.flows {
                f.snap_save(&mut w);
            }
            self.flow_timers.save(&mut w);
            snap::fnv1a(w.bytes())
        };
        let detect = {
            let mut w = snap::Enc::new();
            for st in &self.nodes {
                w.u64(st.dcf.hooks_digest());
            }
            snap::fnv1a(w.bytes())
        };
        [
            ("rng", self.rng.snap_digest()),
            ("sched", self.sched.snap_digest()),
            ("phy", phy),
            ("mac", mac),
            ("transport", transport),
            ("detect", detect),
        ]
    }
}
