//! A cell: one [`Network`] pinned to a channel and a grid position.
//!
//! The multi-cell world advances every cell in lockstep virtual-time
//! epochs. A `Cell` bundles the network with its persistent
//! [`HookCursor`] and exposes exactly the epoch operations the world
//! driver needs:
//!
//! * [`step`](Cell::step) — advance to a common horizon and hand back the
//!   transmissions of the elapsed epoch for the boundary exchange;
//! * [`inject`](Cell::inject) — arm neighbor-cell busy intervals computed
//!   by the exchange;
//! * [`finish`](Cell::finish) — collect metrics and deposit reports.
//!
//! A cell never talks to another cell directly; the world coordinator
//! mediates every exchange, in a fixed cell-id order, which is what makes
//! world runs independent of how cells are spread over worker threads.

use mac::NodeId;
use phy::{ChannelIndex, Position};
use sim::{SimDuration, SimTime};

use crate::metrics::RunMetrics;
use crate::network::{HookCursor, Network, RunArtifacts, RunHooks};

/// One transmission interval `(source, start, end)` in a cell's local
/// node-id space and the shared virtual timebase.
pub type TxInterval = (NodeId, SimTime, SimTime);

/// A [`Network`] pinned to a channel and a grid position, advanced in
/// epochs. See the module docs.
pub struct Cell {
    id: usize,
    channel: ChannelIndex,
    origin: Position,
    net: Network,
    cursor: HookCursor,
}

impl Cell {
    /// Wraps a freshly built network: enables the epoch transmission
    /// log, starts its flows and initializes the hook grids. The network
    /// must not have been run yet.
    pub fn new(
        id: usize,
        channel: ChannelIndex,
        origin: Position,
        mut net: Network,
        hooks: RunHooks,
    ) -> Self {
        net.enable_tx_log();
        net.start_flows();
        let cursor = net.begin_hooked(hooks, None);
        Cell {
            id,
            channel,
            origin,
            net,
            cursor,
        }
    }

    /// The cell's id: its row-major index on the world grid. Exchange
    /// results are merged in ascending id order.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The 802.11 channel this cell operates on. Only cells sharing a
    /// channel couple.
    pub fn channel(&self) -> ChannelIndex {
        self.channel
    }

    /// The cell's origin on the world plane; local node positions are
    /// offsets from it.
    pub fn origin(&self) -> Position {
        self.origin
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the wrapped network (e.g. detector hookup).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Every node's position in *world* coordinates, indexed by local
    /// node id. The coordinator reads these once to build the static
    /// cross-cell coupling maps.
    pub fn world_positions(&self) -> Vec<Position> {
        self.net
            .positions()
            .into_iter()
            .map(|p| p.offset_by(self.origin))
            .collect()
    }

    /// Advances the cell to `horizon` (dispatching every event at or
    /// before it) and returns the transmissions started since the last
    /// step — the raw material of the boundary exchange.
    pub fn step(&mut self, horizon: SimTime) -> Vec<TxInterval> {
        self.net.advance(&mut self.cursor, horizon);
        self.net.drain_tx_log()
    }

    /// Arms a neighbor-cell interference interval on `node`; see
    /// [`Network::inject_busy`] for the boundary nudge.
    pub fn inject(&mut self, node: NodeId, start: SimTime, end: SimTime) {
        self.net.inject_busy(node, start, end);
    }

    /// Ends the run: collects metrics over `duration` of virtual time
    /// and deposits the conformance report if checking was armed.
    pub fn finish(self, duration: SimDuration) -> (RunMetrics, RunArtifacts) {
        let Cell {
            mut net, cursor, ..
        } = self;
        net.finish_hooked(cursor, duration)
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell")
            .field("id", &self.id)
            .field("channel", &self.channel)
            .field("origin", &self.origin)
            .field("net", &self.net)
            .finish()
    }
}
