//! Medium-level behavior: capture, collisions, carrier-sense latency,
//! half-duplex and promiscuous delivery, exercised through small
//! purpose-built topologies.

use gr_net::NetworkBuilder;
use phy::{CaptureModel, ChannelModel, ErrorModel, ErrorUnit, PhyParams, Position};
use sim::SimDuration;

#[test]
fn overheard_traffic_reaches_promiscuous_neighbors() {
    // A bystander within decode range hears both directions of a flow
    // (its counters show no deliveries, but also no corruption).
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(1);
    let s = b.add_node(Position::new(0.0, 0.0));
    let r = b.add_node(Position::new(10.0, 0.0));
    let bystander = b.add_node(Position::new(5.0, 5.0));
    let f = b.udp_flow(s, r, 1024, 5_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(2));
    assert!(m.goodput_mbps(f) > 1.0);
    let by = m.node(bystander).unwrap();
    assert_eq!(by.counters.delivered_msdus.get(), 0);
    assert_eq!(by.counters.collision_rx.get(), 0);
}

#[test]
fn out_of_range_flows_do_not_interact() {
    // Two pairs beyond carrier-sense range each get the full channel.
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(2)
        .channel(ChannelModel::with_ranges(55.0, 99.0));
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(10.0, 0.0));
    let s2 = b.add_node(Position::new(300.0, 0.0));
    let r2 = b.add_node(Position::new(310.0, 0.0));
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(3));
    // Each matches the single-flow saturation goodput (~3.5 Mb/s).
    assert!(m.goodput_mbps(f1) > 3.0, "f1 {}", m.goodput_mbps(f1));
    assert!(m.goodput_mbps(f2) > 3.0, "f2 {}", m.goodput_mbps(f2));
}

#[test]
fn sense_only_range_defers_but_cannot_decode() {
    // A pair placed in the interference band of another pair defers
    // (goodput drops vs. isolation) yet never decodes its frames.
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(3)
        .channel(ChannelModel::with_ranges(55.0, 99.0));
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(5.0, 0.0));
    // 70 m away: inside carrier-sense range, outside decode range.
    let s2 = b.add_node(Position::new(70.0, 0.0));
    let r2 = b.add_node(Position::new(75.0, 0.0));
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(3));
    let (g1, g2) = (m.goodput_mbps(f1), m.goodput_mbps(f2));
    // They share the channel (≈half each), proving carrier sense works
    // across the sense-only band.
    assert!(g1 + g2 < 4.5, "must share: {g1} + {g2}");
    assert!(g1 > 1.0 && g2 > 1.0, "both progress: {g1}, {g2}");
}

#[test]
fn capture_lets_the_strong_frame_survive_hidden_collisions() {
    // Hidden senders, receiver much closer to S1: S1's frames capture
    // over S2's at R1, so R1 still gets traffic while an equidistant
    // receiver sees mostly collisions.
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(4)
        .rts(false)
        .capture(CaptureModel::new(10.0))
        .channel(ChannelModel::with_ranges(120.0, 120.0));
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let s2 = b.add_node(Position::new(200.0, 0.0));
    let near = b.add_node(Position::new(10.0, 0.0)); // close to S1
    let mid = b.add_node(Position::new(100.0, 0.0)); // equidistant
    let f_near = b.udp_flow(s1, near, 1024, 10_000_000);
    let f_mid = b.udp_flow(s2, mid, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(3));
    let g_near = m.goodput_mbps(f_near);
    let g_mid = m.goodput_mbps(f_mid);
    assert!(
        g_near > g_mid * 2.0,
        "capture should favor the near receiver: {g_near} vs {g_mid}"
    );
    // The equidistant receiver records plenty of collisions.
    assert!(m.node(mid).unwrap().counters.collision_rx.get() > 100);
}

#[test]
fn rts_cts_mitigates_hidden_terminals() {
    let run = |rts: bool| {
        let mut b = NetworkBuilder::new(PhyParams::dot11b())
            .seed(5)
            .rts(rts)
            .channel(ChannelModel::with_ranges(60.0, 60.0));
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let r1 = b.add_node(Position::new(50.0, 0.0));
        let r2 = b.add_node(Position::new(52.0, 0.0));
        let s2 = b.add_node(Position::new(102.0, 0.0));
        let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
        let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
        let mut net = b.build();
        let m = net.run(SimDuration::from_secs(3));
        let data_collisions = m.node(r1).unwrap().counters.collision_rx.get()
            + m.node(r2).unwrap().counters.collision_rx.get();
        (m.goodput_mbps(f1) + m.goodput_mbps(f2), data_collisions)
    };
    let (_, collisions_with) = run(true);
    let (_, collisions_without) = run(false);
    assert!(
        collisions_with < collisions_without / 2,
        "RTS/CTS must cut collisions: {collisions_with} vs {collisions_without}"
    );
}

#[test]
fn directional_link_errors_hit_only_their_link() {
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(6);
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(5.0, 0.0));
    let s2 = b.add_node(Position::new(0.0, 10.0));
    let r2 = b.add_node(Position::new(5.0, 10.0));
    // Only s1→r1 is lossy.
    b.link_error(s1, r1, ErrorModel::new(ErrorUnit::Byte, 3e-4).unwrap());
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(3));
    assert!(m.node(r1).unwrap().counters.corrupted_rx.get() > 50);
    assert_eq!(m.node(r2).unwrap().counters.corrupted_rx.get(), 0);
    assert!(m.goodput_mbps(f2) > m.goodput_mbps(f1));
}

#[test]
fn collision_window_is_one_slot_wide() {
    // With a single collision domain and two saturated senders, RTS
    // collisions should occur at a small but non-zero rate (the ±1 slot
    // window over CWmin+1 slots). Zero would mean no collision window;
    // a huge rate would mean carrier sense is broken.
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(7);
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(5.0, 0.0));
    let s2 = b.add_node(Position::new(0.0, 5.0));
    let r2 = b.add_node(Position::new(5.0, 5.0));
    b.udp_flow(s1, r1, 1024, 10_000_000);
    b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(5));
    let c1 = &m.node(s1).unwrap().counters;
    let c2 = &m.node(s2).unwrap().counters;
    let attempts = (c1.rts_sent.get() + c2.rts_sent.get()) as f64;
    let timeouts = (c1.timeouts.get() + c2.timeouts.get()) as f64;
    let rate = timeouts / attempts;
    assert!(
        (0.01..0.35).contains(&rate),
        "collision rate {rate} outside plausible band"
    );
}

#[test]
fn wireline_delay_shapes_tcp_rtt() {
    // Goodput over a long wire is window/RTT-limited: doubling the wire
    // delay roughly halves it.
    let goodput = |ms: u64| {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(8);
        let ap = b.add_node(Position::new(0.0, 0.0));
        let c = b.add_node(Position::new(5.0, 0.0));
        let f = b.tcp_flow_remote(ap, c, Default::default(), SimDuration::from_millis(ms));
        let mut net = b.build();
        net.run(SimDuration::from_secs(20)).goodput_mbps(f)
    };
    let g100 = goodput(100);
    let g200 = goodput(200);
    // window 50 × 1024 B / 0.2 s RTT ≈ 2 Mb/s; / 0.4 s ≈ 1 Mb/s.
    assert!(
        (g100 / g200 - 2.0).abs() < 0.5,
        "RTT scaling off: {g100} vs {g200}"
    );
}
