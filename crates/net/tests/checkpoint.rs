//! Checkpoint/resume and audit-ladder guarantees at the runtime level:
//! restoring a mid-run snapshot into a freshly built identical network
//! and resuming must reproduce the uninterrupted run exactly.

use gr_net::{NetworkBuilder, RunHooks};
use phy::{ErrorModel, ErrorUnit, PhyParams, Position};
use sim::{SimDuration, SimTime};
use snap::{Dec, SnapState};
use transport::TcpConfig;

/// A mixed UDP + TCP + probe topology with link errors, exercising every
/// flow-state variant and the shared RNG (jitter + corruption draws).
fn build() -> (gr_net::Network, Vec<transport::FlowId>) {
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(42)
        .default_error(ErrorModel::new(ErrorUnit::Byte, 2e-4).unwrap());
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(5.0, 0.0));
    let s2 = b.add_node(Position::new(0.0, 5.0));
    let r2 = b.add_node(Position::new(5.0, 5.0));
    let f1 = b.udp_flow(s1, r1, 1024, 6_000_000);
    let f2 = b.tcp_flow(s2, r2, TcpConfig::default());
    let f3 = b.probe_flow(s1, r1, 64, SimDuration::from_millis(50));
    (b.build(), vec![f1, f2, f3])
}

fn fingerprint(m: &gr_net::RunMetrics, flows: &[transport::FlowId]) -> Vec<(u64, u64, u64)> {
    let mut out = vec![(m.events_processed, 0, 0)];
    for f in flows {
        let fm = m.flow(*f).unwrap();
        out.push((fm.distinct_packets, fm.duplicates, fm.retransmissions));
    }
    out
}

#[test]
fn checkpoint_resume_matches_uninterrupted_run() {
    let duration = SimDuration::from_secs(2);
    let hooks = RunHooks {
        checkpoint_every: Some(SimDuration::from_millis(500)),
        audit_every: Some(SimDuration::from_millis(250)),
        ..RunHooks::default()
    };

    let (mut baseline, flows) = build();
    let (base_metrics, base_art) = baseline.run_hooked(duration, hooks);
    assert_eq!(base_art.checkpoints.len(), 4);
    assert_eq!(base_art.audit.len(), 8 * 6, "8 barriers x 6 layers");

    // Resume from the mid-run checkpoint into a freshly built twin.
    let (at, bytes) = base_art.checkpoints[1].clone();
    assert_eq!(at, SimTime::from_millis(1000));
    let (mut resumed, _) = build();
    resumed.snap_restore(&mut Dec::new(&bytes)).unwrap();
    let (res_metrics, res_art) = resumed.resume_hooked(duration, hooks, at);

    assert_eq!(
        fingerprint(&base_metrics, &flows),
        fingerprint(&res_metrics, &flows),
        "resumed run must reproduce the uninterrupted metrics"
    );
    // The resumed audit tail must equal the baseline rungs after `at`.
    let tail: Vec<_> = base_art
        .audit
        .iter()
        .filter(|(vt, _, _)| *vt > at.as_nanos())
        .copied()
        .collect();
    assert_eq!(res_art.audit, tail, "audit ladder tails must agree");
    // And the later checkpoints must be byte-identical.
    let base_later: Vec<_> = base_art.checkpoints[2..].to_vec();
    assert_eq!(res_art.checkpoints, base_later);
    // Final states digest-equal, layer by layer.
    assert_eq!(baseline.layer_digests(), resumed.layer_digests());
}

#[test]
fn rng_perturbation_diverges_and_shows_in_the_ladder() {
    let duration = SimDuration::from_secs(1);
    let audit = RunHooks {
        audit_every: Some(SimDuration::from_millis(100)),
        ..RunHooks::default()
    };
    let (mut clean, _) = build();
    let (_, clean_art) = clean.run_hooked(duration, audit);

    let perturbed_hooks = RunHooks {
        perturb_rng_at: Some(SimTime::from_millis(420)),
        ..audit
    };
    let (mut dirty, _) = build();
    let (_, dirty_art) = dirty.run_hooked(duration, perturbed_hooks);

    assert_eq!(clean_art.audit.len(), dirty_art.audit.len());
    // Before the perturbation instant every layer agrees; after it the
    // RNG layer must differ (one extra draw shifts the stream).
    for ((vt, layer, a), (_, _, b)) in clean_art.audit.iter().zip(dirty_art.audit.iter()) {
        if *vt <= 400_000_000 {
            assert_eq!(a, b, "premature divergence at {vt} ns in {layer}");
        }
    }
    let rng_diverged = clean_art
        .audit
        .iter()
        .zip(dirty_art.audit.iter())
        .any(|((vt, layer, a), (_, _, b))| *layer == "rng" && *vt > 400_000_000 && a != b);
    assert!(
        rng_diverged,
        "rng digest must diverge after the perturbation"
    );
}

#[test]
fn hooks_do_not_change_the_simulation() {
    let duration = SimDuration::from_secs(1);
    let (mut plain, flows) = build();
    let plain_metrics = plain.run(duration);
    let (mut hooked, _) = build();
    let hooks = RunHooks {
        checkpoint_every: Some(SimDuration::from_millis(100)),
        audit_every: Some(SimDuration::from_millis(70)),
        ..RunHooks::default()
    };
    let (hooked_metrics, art) = hooked.run_hooked(duration, hooks);
    assert_eq!(
        fingerprint(&plain_metrics, &flows),
        fingerprint(&hooked_metrics, &flows),
        "audit and checkpoint hooks must not perturb outcomes"
    );
    assert_eq!(art.checkpoints.len(), 10);
    assert_eq!(plain.layer_digests(), hooked.layer_digests());
}
