//! Ring-drop accounting through a full `Network::run`.
//!
//! The recorder's drop counter is unit-tested in `obs`, but nothing
//! proved that a real simulation overflowing the ring reports its drops
//! all the way out to the exported artifacts. A saturated two-pair run
//! emits tens of thousands of events; a 64-slot ring must overflow, keep
//! exactly 64 events, and surface the overflow count in `meta.json`.

use gr_net::NetworkBuilder;
use phy::{PhyParams, Position};
use sim::{RunKey, SimDuration};

fn run_with_capacity(capacity: usize) -> obs::ObsReport {
    let rec = obs::ObsSpec {
        capacity,
        probe_interval: None,
        filter: obs::Filter::all(),
    }
    .recorder();
    let mut net = {
        let _guard = obs::ambient::install(rec.clone());
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(2);
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let r1 = b.add_node(Position::new(5.0, 0.0));
        let s2 = b.add_node(Position::new(0.0, 5.0));
        let r2 = b.add_node(Position::new(5.0, 5.0));
        b.udp_flow(s1, r1, 512, 8_000_000);
        b.udp_flow(s2, r2, 512, 8_000_000);
        b.build()
    };
    net.run(SimDuration::from_millis(200));
    let report = rec.borrow_mut().drain_report();
    report
}

#[test]
fn overflowing_ring_reports_drops_in_exported_artifacts() {
    let report = run_with_capacity(64);
    assert_eq!(report.events.len(), 64, "ring keeps exactly its capacity");
    assert!(
        report.dropped > 1_000,
        "a saturated 200 ms run must overflow a 64-slot ring hard, got {}",
        report.dropped
    );

    // The drop count reaches the on-disk metadata verbatim.
    let key = RunKey::new("droptest", 0, 2);
    let meta = report.meta_json(&key);
    assert!(
        meta.contains(&format!("\"dropped\": {}", report.dropped)),
        "meta.json must carry the drop count: {meta}"
    );
    assert!(meta.contains("\"capacity\": 64"));

    // And through the full artifact writer.
    let dir = std::env::temp_dir().join("gr-obs-drop-test");
    let _ = std::fs::remove_dir_all(&dir);
    obs::write_artifacts(&dir, &key, &report).unwrap();
    let on_disk = std::fs::read_to_string(dir.join("meta.json")).unwrap();
    assert!(on_disk.contains(&format!("\"dropped\": {}", report.dropped)));

    // The kept window is the *latest* events: drops evict from the front.
    let last = report.events.last().unwrap().at;
    let first = report.events.first().unwrap().at;
    assert!(last >= first);
    assert!(
        last.as_micros() > 150_000,
        "ring should retain the tail of the run, last event at {} µs",
        last.as_micros()
    );
}

#[test]
fn ample_ring_drops_nothing_on_the_same_run() {
    let report = run_with_capacity(1 << 18);
    assert_eq!(report.dropped, 0);
    assert!(report.events.len() > 3_000, "got {}", report.events.len());
}
