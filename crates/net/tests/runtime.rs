//! End-to-end sanity tests of the network runtime with honest stations.

use gr_net::NetworkBuilder;
use phy::{ErrorModel, ErrorUnit, PhyParams, Position};
use sim::SimDuration;
use transport::TcpConfig;

fn close(a: f64, b: f64, rel: f64) -> bool {
    if a == 0.0 && b == 0.0 {
        return true;
    }
    (a - b).abs() / a.max(b) <= rel
}

#[test]
fn single_udp_flow_approaches_channel_capacity() {
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(1);
    let s = b.add_node(Position::new(0.0, 0.0));
    let r = b.add_node(Position::new(5.0, 0.0));
    let f = b.udp_flow(s, r, 1024, 10_000_000); // oversubscribed
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(5));
    let mbps = m.goodput_mbps(f);
    // 802.11b with RTS/CTS and 1024 B payload delivers roughly 2.5–4 Mb/s.
    assert!(
        (2.0..5.0).contains(&mbps),
        "unexpected saturated goodput {mbps} Mb/s"
    );
    // No corruption on lossless links.
    assert_eq!(m.node(r).unwrap().counters.corrupted_rx.get(), 0);
}

#[test]
fn two_udp_flows_share_fairly() {
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(2);
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(5.0, 0.0));
    let s2 = b.add_node(Position::new(0.0, 5.0));
    let r2 = b.add_node(Position::new(5.0, 5.0));
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(10));
    let g1 = m.goodput_mbps(f1);
    let g2 = m.goodput_mbps(f2);
    assert!(g1 > 0.5 && g2 > 0.5, "both must progress: {g1} vs {g2}");
    assert!(
        close(g1, g2, 0.15),
        "fair shares expected, got {g1} vs {g2}"
    );
}

#[test]
fn tcp_flow_transfers_data() {
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(3);
    let s = b.add_node(Position::new(0.0, 0.0));
    let r = b.add_node(Position::new(5.0, 0.0));
    let f = b.tcp_flow(s, r, TcpConfig::default());
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(5));
    let mbps = m.goodput_mbps(f);
    assert!(
        (1.5..5.0).contains(&mbps),
        "unexpected TCP goodput {mbps} Mb/s"
    );
    let fm = m.flow(f).unwrap();
    assert_eq!(fm.timeouts, 0, "no timeouts expected on a lossless link");
    assert!(fm.avg_cwnd.unwrap() > 1.0);
}

#[test]
fn two_tcp_flows_share_fairly() {
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(4);
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(5.0, 0.0));
    let s2 = b.add_node(Position::new(0.0, 5.0));
    let r2 = b.add_node(Position::new(5.0, 5.0));
    let f1 = b.tcp_flow(s1, r1, TcpConfig::default());
    let f2 = b.tcp_flow(s2, r2, TcpConfig::default());
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(10));
    let g1 = m.goodput_mbps(f1);
    let g2 = m.goodput_mbps(f2);
    assert!(g1 > 0.5 && g2 > 0.5, "both must progress: {g1} vs {g2}");
    assert!(
        close(g1, g2, 0.25),
        "fair shares expected, got {g1} vs {g2}"
    );
}

#[test]
fn byte_errors_degrade_goodput_monotonically() {
    let mut last = f64::INFINITY;
    for rate in [0.0, 2e-4, 8e-4] {
        let mut b = NetworkBuilder::new(PhyParams::dot11b())
            .seed(5)
            .default_error(ErrorModel::new(ErrorUnit::Byte, rate).unwrap());
        let s = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(5.0, 0.0));
        let f = b.udp_flow(s, r, 1024, 10_000_000);
        let mut net = b.build();
        let m = net.run(SimDuration::from_secs(5));
        let g = m.goodput_mbps(f);
        assert!(g < last, "goodput must fall with loss: {g} !< {last}");
        last = g;
    }
}

#[test]
fn identical_seeds_are_deterministic() {
    let run = || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(42);
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let r1 = b.add_node(Position::new(5.0, 0.0));
        let s2 = b.add_node(Position::new(0.0, 5.0));
        let r2 = b.add_node(Position::new(5.0, 5.0));
        let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
        let f2 = b.tcp_flow(s2, r2, TcpConfig::default());
        let mut net = b.build();
        let m = net.run(SimDuration::from_secs(3));
        (
            m.flow(f1).unwrap().distinct_packets,
            m.flow(f2).unwrap().distinct_packets,
            m.events_processed,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn remote_tcp_sender_over_wire_transfers() {
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(6);
    let ap = b.add_node(Position::new(0.0, 0.0));
    let client = b.add_node(Position::new(5.0, 0.0));
    let f = b.tcp_flow_remote(
        ap,
        client,
        TcpConfig::default(),
        SimDuration::from_millis(50),
    );
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(5));
    let g = m.goodput_mbps(f);
    assert!(g > 0.5, "remote TCP should still progress, got {g}");
    // With 100 ms RTT the wire, not the WLAN, should bound throughput:
    // window (64 pkts × 1024 B) per RTT ≈ 5 Mb/s cap; check sane range.
    assert!(g < 6.0);
}

#[test]
fn hidden_terminals_collide_without_rts() {
    // Senders out of range of each other, receivers in the middle.
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(7)
        .rts(false)
        .channel(phy::ChannelModel::with_ranges(60.0, 60.0));
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(50.0, 0.0));
    let r2 = b.add_node(Position::new(52.0, 0.0));
    let s2 = b.add_node(Position::new(102.0, 0.0));
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(5));
    let collisions = m.node(r1).unwrap().counters.collision_rx.get()
        + m.node(r2).unwrap().counters.collision_rx.get();
    assert!(
        collisions > 50,
        "hidden terminals must collide, saw {collisions}"
    );
    // Retries should be visible at the senders.
    let retries = m.node(s1).unwrap().counters.long_retries.get();
    assert!(retries > 10, "sender must retry, saw {retries}");
    let _ = (f1, f2);
}

#[test]
fn probe_flow_measures_app_loss() {
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(8)
        .default_error(ErrorModel::new(ErrorUnit::Byte, 5e-4).unwrap());
    let s = b.add_node(Position::new(0.0, 0.0));
    let r = b.add_node(Position::new(5.0, 0.0));
    let p = b.probe_flow(s, r, 64, SimDuration::from_millis(20));
    let mut net = b.build();
    let m = net.run(SimDuration::from_secs(10));
    let loss = m.flow(p).unwrap().probe_app_loss.unwrap();
    // MAC retransmissions hide most probe losses; loss should be tiny but
    // the plumbing (send → echo → count) must work.
    assert!(loss < 0.2, "app loss unexpectedly high: {loss}");
    assert!(
        m.flow(p).unwrap().distinct_packets > 100,
        "echoes must flow"
    );
}
