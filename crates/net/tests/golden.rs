//! Golden-trace corpus: canonical scenarios whose structural frame
//! exchange is pinned in readable fixture files.
//!
//! Each scenario runs under a flight recorder, the event stream is
//! reduced to its structure by [`conform::golden::normalize`] (who sent
//! what to whom, retries with their post-update contention window,
//! drops, deliveries — no timestamps, airtimes, or backoff draws), and
//! the result is diffed line-by-line against `tests/golden/<name>.trace`.
//!
//! To regenerate after an intentional protocol change:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test -p gr-net --test golden
//! ```
//!
//! then review the fixture diff like any other code change.

use gr_net::{Network, NetworkBuilder};
use phy::{ChannelModel, PhyParams, Position};
use sim::SimDuration;

/// Builds `scenario` with an ambient flight recorder attached, runs it
/// for `dur`, and returns the normalized structural trace.
fn trace(dur: SimDuration, build: impl FnOnce() -> Network) -> Vec<String> {
    let rec = obs::ObsSpec {
        capacity: 1 << 17,
        probe_interval: None,
        filter: obs::Filter::all(),
    }
    .recorder();
    let mut net = {
        let _guard = obs::ambient::install(rec.clone());
        build()
    };
    net.run(dur);
    let report = rec.borrow_mut().drain_report();
    assert_eq!(report.dropped, 0, "recorder ring too small for fixture");
    conform::golden::normalize(&report.events)
}

/// Diffs `actual` against `tests/golden/<name>.trace`, or rewrites the
/// fixture when `GOLDEN_UPDATE=1`.
fn check(name: &str, header: &str, actual: &[String]) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace"));
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, conform::golden::to_fixture(header, actual)).unwrap();
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    let expected = conform::golden::parse_fixture(&text);
    if let Some(msg) = conform::golden::diff(&expected, actual) {
        panic!(
            "{name}: {msg}\n\nif the change is intentional, regenerate with\n  \
             GOLDEN_UPDATE=1 cargo test -p gr-net --test golden"
        );
    }
}

#[test]
fn two_node_data_ack() {
    let lines = trace(SimDuration::from_millis(12), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).rts(false).seed(3);
        let s = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(5.0, 0.0));
        b.udp_flow(s, r, 1024, 2_000_000);
        b.build()
    });
    // The basic exchange repeats verbatim: DATA, delivery, SIFS-spaced
    // ACK, sender success. No retries on a lossless two-node channel.
    assert!(lines.iter().any(|l| l.starts_with("tx 0 DATA")));
    assert!(lines.iter().any(|l| l.starts_with("tx 1 ACK")));
    assert!(!lines.iter().any(|l| l.starts_with("retry")));
    check(
        "two_node_data_ack",
        "two nodes, basic access, lossless 802.11b, 2 Mb/s UDP, 12 ms\n\
         every cycle: DATA -> delivery -> ACK -> sender success",
        &lines,
    );
}

#[test]
fn two_node_rts_cts() {
    let lines = trace(SimDuration::from_millis(12), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).rts(true).seed(3);
        let s = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(5.0, 0.0));
        b.udp_flow(s, r, 1024, 2_000_000);
        b.build()
    });
    // Four-way handshake: RTS, CTS, DATA, ACK — in that order, always.
    assert!(lines.iter().any(|l| l.starts_with("tx 0 RTS")));
    assert!(lines.iter().any(|l| l.starts_with("tx 1 CTS")));
    check(
        "two_node_rts_cts",
        "two nodes, RTS/CTS, lossless 802.11b, 2 Mb/s UDP, 12 ms\n\
         every cycle: RTS -> CTS -> DATA -> delivery -> ACK",
        &lines,
    );
}

#[test]
fn collision_and_binary_exponential_backoff() {
    let lines = trace(SimDuration::from_millis(30), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).rts(false).seed(5);
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let s2 = b.add_node(Position::new(10.0, 0.0));
        let r = b.add_node(Position::new(5.0, 5.0));
        b.udp_flow(s1, r, 512, 8_000_000);
        b.udp_flow(s2, r, 512, 8_000_000);
        b.build()
    });
    // Two saturating senders in one collision domain: synchronized
    // backoff expiries collide at the receiver, the losers double their
    // contention windows (31 -> 63 -> ...), and retries recover.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("retry") && l.contains("cw=63")),
        "expected a doubled contention window in:\n{}",
        lines.join("\n")
    );
    check(
        "collision_beb",
        "two saturating senders + one receiver, one collision domain,\n\
         basic access, 30 ms: collisions trigger cw doubling and retries",
        &lines,
    );
}

#[test]
fn hidden_terminal() {
    let lines = trace(SimDuration::from_millis(30), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b())
            .rts(false)
            .channel(ChannelModel::with_ranges(55.0, 99.0))
            .seed(4);
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(50.0, 0.0));
        let s2 = b.add_node(Position::new(100.0, 0.0));
        b.udp_flow(s1, r, 512, 3_000_000);
        b.udp_flow(s2, r, 512, 3_000_000);
        b.build()
    });
    // The senders sit 100 m apart — beyond the 99 m carrier-sense range
    // — so neither defers to the other and their frames collide at the
    // middle receiver far more often than carrier sense would allow.
    assert!(
        lines.iter().any(|l| l.contains("collision")),
        "expected hidden-terminal collisions in:\n{}",
        lines.join("\n")
    );
    assert!(lines.iter().any(|l| l.starts_with("retry")));
    check(
        "hidden_terminal",
        "classic hidden terminal: senders at 0 m and 100 m, receiver at\n\
         50 m, ranges (comm 55 m, cs 99 m), basic access, 30 ms",
        &lines,
    );
}
