//! Golden-trace corpus: canonical scenarios whose structural frame
//! exchange is pinned in readable fixture files.
//!
//! Each scenario runs under a flight recorder, the event stream is
//! reduced to its structure by [`conform::golden::normalize`] (who sent
//! what to whom, retries with their post-update contention window,
//! drops, deliveries — no timestamps, airtimes, or backoff draws), and
//! the result is diffed line-by-line against `tests/golden/<name>.trace`.
//!
//! To regenerate after an intentional protocol change:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test -p gr-net --test golden
//! ```
//!
//! then review the fixture diff like any other code change.

use gr_net::{Cell, Network, NetworkBuilder, RunHooks};
use phy::{ChannelIndex, ChannelModel, PhyParams, Position};
use sim::{SimDuration, SimTime};

/// Builds `scenario` with an ambient flight recorder attached, runs it
/// for `dur`, and returns the normalized structural trace.
fn trace(dur: SimDuration, build: impl FnOnce() -> Network) -> Vec<String> {
    let rec = obs::ObsSpec {
        capacity: 1 << 17,
        probe_interval: None,
        filter: obs::Filter::all(),
    }
    .recorder();
    let mut net = {
        let _guard = obs::ambient::install(rec.clone());
        build()
    };
    net.run(dur);
    let report = rec.borrow_mut().drain_report();
    assert_eq!(report.dropped, 0, "recorder ring too small for fixture");
    conform::golden::normalize(&report.events)
}

/// Diffs `actual` against `tests/golden/<name>.trace`, or rewrites the
/// fixture when `GOLDEN_UPDATE=1`.
fn check(name: &str, header: &str, actual: &[String]) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace"));
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, conform::golden::to_fixture(header, actual)).unwrap();
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    let expected = conform::golden::parse_fixture(&text);
    if let Some(msg) = conform::golden::diff(&expected, actual) {
        panic!(
            "{name}: {msg}\n\nif the change is intentional, regenerate with\n  \
             GOLDEN_UPDATE=1 cargo test -p gr-net --test golden"
        );
    }
}

#[test]
fn two_node_data_ack() {
    let lines = trace(SimDuration::from_millis(12), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).rts(false).seed(3);
        let s = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(5.0, 0.0));
        b.udp_flow(s, r, 1024, 2_000_000);
        b.build()
    });
    // The basic exchange repeats verbatim: DATA, delivery, SIFS-spaced
    // ACK, sender success. No retries on a lossless two-node channel.
    assert!(lines.iter().any(|l| l.starts_with("tx 0 DATA")));
    assert!(lines.iter().any(|l| l.starts_with("tx 1 ACK")));
    assert!(!lines.iter().any(|l| l.starts_with("retry")));
    check(
        "two_node_data_ack",
        "two nodes, basic access, lossless 802.11b, 2 Mb/s UDP, 12 ms\n\
         every cycle: DATA -> delivery -> ACK -> sender success",
        &lines,
    );
}

#[test]
fn two_node_rts_cts() {
    let lines = trace(SimDuration::from_millis(12), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).rts(true).seed(3);
        let s = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(5.0, 0.0));
        b.udp_flow(s, r, 1024, 2_000_000);
        b.build()
    });
    // Four-way handshake: RTS, CTS, DATA, ACK — in that order, always.
    assert!(lines.iter().any(|l| l.starts_with("tx 0 RTS")));
    assert!(lines.iter().any(|l| l.starts_with("tx 1 CTS")));
    check(
        "two_node_rts_cts",
        "two nodes, RTS/CTS, lossless 802.11b, 2 Mb/s UDP, 12 ms\n\
         every cycle: RTS -> CTS -> DATA -> delivery -> ACK",
        &lines,
    );
}

#[test]
fn collision_and_binary_exponential_backoff() {
    let lines = trace(SimDuration::from_millis(30), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b()).rts(false).seed(5);
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let s2 = b.add_node(Position::new(10.0, 0.0));
        let r = b.add_node(Position::new(5.0, 5.0));
        b.udp_flow(s1, r, 512, 8_000_000);
        b.udp_flow(s2, r, 512, 8_000_000);
        b.build()
    });
    // Two saturating senders in one collision domain: synchronized
    // backoff expiries collide at the receiver, the losers double their
    // contention windows (31 -> 63 -> ...), and retries recover.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("retry") && l.contains("cw=63")),
        "expected a doubled contention window in:\n{}",
        lines.join("\n")
    );
    check(
        "collision_beb",
        "two saturating senders + one receiver, one collision domain,\n\
         basic access, 30 ms: collisions trigger cw doubling and retries",
        &lines,
    );
}

#[test]
fn two_cell_co_channel_interference() {
    // Two co-channel cells 60 m apart, advanced in 1 ms lockstep epochs
    // with the world's one-epoch-lag exchange: what cell 1 transmitted
    // during epoch k raises carrier sense on cell 0's coupled nodes
    // during epoch k + 1 (and vice versa). Both cells run saturating
    // pairs, so neighbor busy time comes straight out of goodput. The
    // fixture pins cell 0's structural trace — the DATA/ACK cycle
    // survives, but deferral fits fewer cycles into 12 ms than an
    // isolated run of the same pair completes.
    let epoch = SimDuration::from_millis(1);
    let dur = SimDuration::from_millis(12);
    let pair = |seed: u64, rate: u64| {
        let mut b = NetworkBuilder::new(PhyParams::dot11b())
            .rts(false)
            .seed(seed);
        let s = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(5.0, 0.0));
        b.udp_flow(s, r, 1024, rate);
        b.build()
    };
    let rec = obs::ObsSpec {
        capacity: 1 << 17,
        probe_interval: None,
        filter: obs::Filter::all(),
    }
    .recorder();
    // Only cell 0 is traced; the recorder attaches at build time.
    let net0 = {
        let _guard = obs::ambient::install(rec.clone());
        pair(3, 8_000_000)
    };
    let net1 = pair(7, 8_000_000);
    let mut cells = [
        Cell::new(
            0,
            ChannelIndex(0),
            Position::new(0.0, 0.0),
            net0,
            RunHooks::default(),
        ),
        Cell::new(
            1,
            ChannelIndex(0),
            Position::new(60.0, 0.0),
            net1,
            RunHooks::default(),
        ),
    ];
    // Static cross-cell coupling by world-frame distance, exactly as the
    // world coordinator computes it: coupling[a][src of b] = nodes of a
    // within carrier-sense range (99 m covers every 55-65 m pair here).
    let coupler = ChannelModel::with_ranges(99.0, 99.0);
    let positions: Vec<Vec<Position>> = cells.iter().map(|c| c.world_positions()).collect();
    let coupled = |a: usize, b: usize, src: u16| -> Vec<u16> {
        (0..positions[a].len() as u16)
            .filter(|&dst| coupler.couples(positions[b][src as usize], positions[a][dst as usize]))
            .collect()
    };
    let epochs = (dur.as_nanos() as usize).div_ceil(epoch.as_nanos() as usize);
    for k in 0..epochs {
        let horizon = SimTime::from_nanos(((k + 1) as u64 * epoch.as_nanos()).min(dur.as_nanos()));
        let reports: Vec<Vec<gr_net::TxInterval>> =
            cells.iter_mut().map(|c| c.step(horizon)).collect();
        // Merge in fixed (cell, neighbor, report order) order, one epoch
        // late — the exchange the lockstep runner performs.
        for (a, cell) in cells.iter_mut().enumerate() {
            for (b, report) in reports.iter().enumerate() {
                if a == b {
                    continue;
                }
                for &(src, start, end) in report {
                    for dst in coupled(a, b, src.0) {
                        cell.inject(mac::NodeId(dst), start + epoch, end + epoch);
                    }
                }
            }
        }
    }
    let [c0, c1] = cells;
    c0.finish(dur);
    c1.finish(dur);
    let report = rec.borrow_mut().drain_report();
    assert_eq!(report.dropped, 0, "recorder ring too small for fixture");
    let lines = conform::golden::normalize(&report.events);
    // The exchange must actually bite: the saturating neighbor's busy
    // time leaves cell 0 fewer DATA cycles than the same pair completes
    // running alone.
    let isolated = trace(dur, || pair(3, 8_000_000));
    let cycles = |t: &[String]| t.iter().filter(|l| l.starts_with("tx 0 DATA")).count();
    assert!(
        cycles(&lines) < cycles(&isolated),
        "co-channel neighbor should defer cell 0 ({} cycles vs {} isolated)",
        cycles(&lines),
        cycles(&isolated),
    );
    // Deferral, not corruption: carrier sense waits out the neighbor, so
    // the cycles that do run stay clean.
    assert!(!lines.iter().any(|l| l.starts_with("retry")));
    check(
        "two_cell_co_channel",
        "two co-channel cells 60 m apart, 1 ms lockstep epochs, one-epoch-lag\n\
         busy exchange; both cells saturating 8 Mb/s pairs, cell 0 traced;\n\
         neighbor busy time defers but never corrupts",
        &lines,
    );
}

#[test]
fn hidden_terminal() {
    let lines = trace(SimDuration::from_millis(30), || {
        let mut b = NetworkBuilder::new(PhyParams::dot11b())
            .rts(false)
            .channel(ChannelModel::with_ranges(55.0, 99.0))
            .seed(4);
        let s1 = b.add_node(Position::new(0.0, 0.0));
        let r = b.add_node(Position::new(50.0, 0.0));
        let s2 = b.add_node(Position::new(100.0, 0.0));
        b.udp_flow(s1, r, 512, 3_000_000);
        b.udp_flow(s2, r, 512, 3_000_000);
        b.build()
    });
    // The senders sit 100 m apart — beyond the 99 m carrier-sense range
    // — so neither defers to the other and their frames collide at the
    // middle receiver far more often than carrier sense would allow.
    assert!(
        lines.iter().any(|l| l.contains("collision")),
        "expected hidden-terminal collisions in:\n{}",
        lines.join("\n")
    );
    assert!(lines.iter().any(|l| l.starts_with("retry")));
    check(
        "hidden_terminal",
        "classic hidden terminal: senders at 0 m and 100 m, receiver at\n\
         50 m, ranges (comm 55 m, cs 99 m), basic access, 30 ms",
        &lines,
    );
}
