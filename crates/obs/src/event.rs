//! Structured event records and their schema registry.
//!
//! Each instrumented crate declares its event kinds as `static`
//! [`EventKind`]s — a name, a stack layer and the ordered field names of
//! the payload. An [`ObsEvent`] then only stores a reference to its kind
//! plus up to [`MAX_FIELDS`] numeric values, keeping the ring-buffer
//! entry small (no per-event string allocation) while the JSONL export
//! can still render self-describing records.

use sim::SimTime;

/// Maximum payload values per event. Kinds with fewer fields leave the
/// tail unused. Sized for the widest kind (`cc_state`: flow, state,
/// pacing gain, bandwidth estimate, min RTT).
pub const MAX_FIELDS: usize = 5;

/// Which stack layer emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Medium-level outcomes: transmissions, receptions, capture, noise.
    Phy,
    /// DCF state: NAV, backoff, retries, queue drops.
    Mac,
    /// TCP endpoints: cwnd, RTO, retransmit causes.
    Transport,
    /// Runtime-level events that belong to no single protocol layer.
    Net,
}

impl Layer {
    /// Lower-case layer name used in exports and `--record-filter`.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Phy => "phy",
            Layer::Mac => "mac",
            Layer::Transport => "transport",
            Layer::Net => "net",
        }
    }

    /// Bit in a layer-filter mask.
    pub fn mask(self) -> u8 {
        match self {
            Layer::Phy => 1,
            Layer::Mac => 2,
            Layer::Transport => 4,
            Layer::Net => 8,
        }
    }

    /// Parses a layer name as accepted by `--record-filter`.
    pub fn parse(s: &str) -> Option<Layer> {
        match s {
            "phy" => Some(Layer::Phy),
            "mac" => Some(Layer::Mac),
            "transport" | "tcp" => Some(Layer::Transport),
            "net" => Some(Layer::Net),
            _ => None,
        }
    }
}

/// Schema of one event kind. Declared `static` by the emitting crate so
/// events reference it for free.
#[derive(Debug)]
pub struct EventKind {
    /// Stable kind name (snake_case), unique within a layer.
    pub name: &'static str,
    /// Emitting layer.
    pub layer: Layer,
    /// Ordered names of the payload values. Length ≤ [`MAX_FIELDS`].
    pub fields: &'static [&'static str],
}

/// One recorded event: when, who, what, payload.
#[derive(Debug, Clone, Copy)]
pub struct ObsEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Station (or flow, for transport kinds) the event concerns.
    pub node: u16,
    /// Schema reference.
    pub kind: &'static EventKind,
    /// Payload values, index-aligned with `kind.fields`.
    pub vals: [f64; MAX_FIELDS],
}

impl ObsEvent {
    /// Builds an event, padding unused payload slots with zero.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `vals` does not match the kind's field count.
    pub fn new(at: SimTime, node: u16, kind: &'static EventKind, vals: &[f64]) -> Self {
        debug_assert_eq!(
            vals.len(),
            kind.fields.len(),
            "payload arity mismatch for {}",
            kind.name
        );
        let mut padded = [0.0; MAX_FIELDS];
        padded[..vals.len()].copy_from_slice(vals);
        ObsEvent {
            at,
            node,
            kind,
            vals: padded,
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"t_us\":{},\"layer\":\"{}\",\"node\":{},\"kind\":\"{}\"",
            self.at.as_micros(),
            self.kind.layer.name(),
            self.node,
            self.kind.name
        );
        for (name, val) in self.kind.fields.iter().zip(self.vals.iter()) {
            s.push_str(&format!(",\"{}\":{}", name, fmt_num(*val)));
        }
        s.push('}');
        s
    }
}

/// Formats a payload value: integral magnitudes print without a
/// fractional part so timestamps and ids stay readable, everything else
/// uses Rust's shortest-roundtrip float formatting (deterministic across
/// platforms).
pub(crate) fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_KIND: EventKind = EventKind {
        name: "unit",
        layer: Layer::Mac,
        fields: &["a", "b"],
    };

    #[test]
    fn json_rendering_is_self_describing() {
        let ev = ObsEvent::new(SimTime::from_micros(1500), 3, &TEST_KIND, &[7.0, 0.25]);
        assert_eq!(
            ev.to_json(),
            "{\"t_us\":1500,\"layer\":\"mac\",\"node\":3,\"kind\":\"unit\",\"a\":7,\"b\":0.25}"
        );
    }

    #[test]
    fn layer_mask_and_parse_roundtrip() {
        for layer in [Layer::Phy, Layer::Mac, Layer::Transport, Layer::Net] {
            assert_eq!(Layer::parse(layer.name()), Some(layer));
            assert_eq!(layer.mask().count_ones(), 1);
        }
        assert_eq!(Layer::parse("tcp"), Some(Layer::Transport));
        assert_eq!(Layer::parse("nope"), None);
    }
}
