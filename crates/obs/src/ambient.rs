//! Per-thread ambient recorder.
//!
//! Experiment generators build their scenarios inside plain closures
//! whose signatures the sweep machinery cannot change without touching
//! all 38 experiments. Instead, the campaign installs the run's recorder
//! into a thread-local slot around each job; `Scenario::build()` picks
//! it up if no recorder was set explicitly. Jobs never share a thread
//! concurrently (the runner executes one job at a time per worker), and
//! the guard restores the previous slot value on drop, so nesting and
//! worker-thread reuse are safe.

use std::cell::RefCell;

use crate::recorder::RecorderHandle;

thread_local! {
    static CURRENT: RefCell<Option<RecorderHandle>> = const { RefCell::new(None) };
}

/// Restores the previously installed recorder when dropped.
#[derive(Debug)]
pub struct AmbientGuard {
    prev: Option<RecorderHandle>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        CURRENT.with(|slot| *slot.borrow_mut() = self.prev.take());
    }
}

/// Installs `handle` as this thread's ambient recorder until the
/// returned guard drops.
#[must_use = "the recorder is uninstalled when the guard drops"]
pub fn install(handle: RecorderHandle) -> AmbientGuard {
    let prev = CURRENT.with(|slot| slot.borrow_mut().replace(handle));
    AmbientGuard { prev }
}

/// The currently installed ambient recorder, if any.
pub fn current() -> Option<RecorderHandle> {
    CURRENT.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::ObsSpec;

    #[test]
    fn install_is_scoped_and_nestable() {
        assert!(current().is_none());
        let outer = ObsSpec::default().recorder();
        {
            let _g1 = install(outer.clone());
            assert!(current().unwrap().same_cell(&outer));
            {
                let inner = ObsSpec::default().recorder();
                let _g2 = install(inner.clone());
                assert!(current().unwrap().same_cell(&inner));
            }
            assert!(current().unwrap().same_cell(&outer));
        }
        assert!(current().is_none());
    }
}
