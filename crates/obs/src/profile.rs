//! Wall-clock profiling scopes.
//!
//! [`crate::span!`] brackets a code region with a named timer. When
//! profiling is disabled (the default) a span is one relaxed atomic
//! load and a branch — cheap enough to leave in the runtime's hot
//! paths. When enabled (`repro --record`), spans accumulate call counts
//! and wall time per label into a process-wide registry that `repro`
//! folds into `bench_summary.json`.
//!
//! Wall time is inherently nondeterministic; it is reported only in the
//! profile section, never mixed into simulation artifacts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

/// Accumulated timing of one span label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall time spent inside, in nanoseconds.
    pub nanos: u64,
}

impl SpanStat {
    /// Total wall time in seconds.
    pub fn secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Turns span timing on or off (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans currently record.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all accumulated span stats.
pub fn reset() {
    REGISTRY.lock().expect("profile registry poisoned").clear();
}

/// Snapshot of every label's stats, sorted by label.
pub fn snapshot() -> Vec<(&'static str, SpanStat)> {
    REGISTRY
        .lock()
        .expect("profile registry poisoned")
        .iter()
        .map(|(label, stat)| (*label, *stat))
        .collect()
}

/// Live timer for one span entry; records on drop. Construct through
/// [`crate::span!`].
#[derive(Debug)]
pub struct SpanGuard {
    label: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Starts a span — a no-op unless profiling is enabled.
    pub fn begin(label: &'static str) -> Self {
        SpanGuard {
            label,
            start: is_enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos() as u64;
            let mut reg = REGISTRY.lock().expect("profile registry poisoned");
            let stat = reg.entry(self.label).or_default();
            stat.calls += 1;
            stat.nanos += nanos;
        }
    }
}

/// Times the enclosing scope under `label` while profiling is enabled.
///
/// # Examples
///
/// ```
/// let _span = gr_obs::span!("net/run");
/// // ... timed region ...
/// ```
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::profile::SpanGuard::begin($label)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_only_when_enabled() {
        // Serialize against any other test toggling the global switch.
        reset();
        set_enabled(false);
        {
            let _s = crate::span!("test/off");
        }
        assert!(snapshot().iter().all(|(l, _)| *l != "test/off"));
        set_enabled(true);
        {
            let _s = crate::span!("test/on");
        }
        set_enabled(false);
        let stats = snapshot();
        let (_, stat) = stats
            .iter()
            .find(|(l, _)| *l == "test/on")
            .expect("span recorded");
        assert_eq!(stat.calls, 1);
        reset();
    }
}
