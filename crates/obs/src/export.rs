//! Deterministic artifact export.
//!
//! A drained [`ObsReport`] renders to a per-run directory named after
//! its [`RunKey`]:
//!
//! ```text
//! results/obs/<experiment>-p<point>-s<seed>/
//!   events.jsonl       one JSON object per event, ring order
//!   probe_<gauge>.csv  id,t_us,value — one file per sampled gauge
//!   histograms.csv     name,lo,hi,count — log-bucket rows
//!   histogram_summary.csv  name,count,mean,p50,p90,p95,p99 — one row each
//!   meta.json          run key, seed, counts, histogram summaries
//! ```
//!
//! Every writer iterates `BTreeMap`s or already-ordered vectors, and
//! every number formats through a fixed rule, so the bytes are a pure
//! function of the recorded data — the determinism tests byte-compare
//! these files across `--jobs` widths.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use sim::stats::LogHistogram;
use sim::{RunKey, SimTime};

use crate::event::{fmt_num, ObsEvent};

/// Plain-data snapshot of one run's telemetry (see
/// [`crate::Recorder::drain_report`]). `Send`, clonable, thread-safe to
/// move to an aggregator.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Buffered events, oldest first.
    pub events: Vec<ObsEvent>,
    /// Events the ring evicted before the drain.
    pub dropped: u64,
    /// Ring capacity the run recorded under.
    pub capacity: usize,
    /// Log-bucketed histograms by metric name.
    pub hists: BTreeMap<&'static str, LogHistogram>,
    /// Gauge time series by `(gauge, id)`.
    pub series: BTreeMap<(&'static str, u16), Vec<(SimTime, f64)>>,
}

// Reports travel from worker threads back to the campaign aggregator.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ObsReport>();
};

impl ObsReport {
    /// Renders all events as JSON Lines.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders one CSV per sampled gauge: `(file name, contents)`.
    pub fn probe_csvs(&self) -> Vec<(String, String)> {
        let mut files: BTreeMap<&'static str, String> = BTreeMap::new();
        for ((gauge, id), samples) in &self.series {
            let body = files
                .entry(gauge)
                .or_insert_with(|| String::from("id,t_us,value\n"));
            for (at, value) in samples {
                body.push_str(&format!("{id},{},{}\n", at.as_micros(), fmt_num(*value)));
            }
        }
        files
            .into_iter()
            .map(|(gauge, body)| (format!("probe_{gauge}.csv"), body))
            .collect()
    }

    /// Renders every histogram's non-empty buckets as CSV.
    pub fn histograms_csv(&self) -> String {
        let mut out = String::from("name,lo,hi,count\n");
        for (name, hist) in &self.hists {
            for (lo, hi, count) in hist.buckets() {
                out.push_str(&format!("{name},{},{},{count}\n", fmt_num(lo), fmt_num(hi)));
            }
        }
        out
    }

    /// Renders one summary row per histogram — count, mean, and the
    /// quantiles detection-delay analysis reads (p50/p90/p95/p99) — as
    /// CSV. Quantiles resolve to log-bucket lower bounds (exact to one
    /// power of two) and are deterministic by construction.
    pub fn histogram_summary_csv(&self) -> String {
        let mut out = String::from("name,count,mean,p50,p90,p95,p99\n");
        for (name, hist) in &self.hists {
            out.push_str(&format!(
                "{name},{},{},{},{},{},{}\n",
                hist.count(),
                fmt_num(hist.mean().unwrap_or(0.0)),
                fmt_num(hist.quantile(0.5).unwrap_or(0.0)),
                fmt_num(hist.quantile(0.9).unwrap_or(0.0)),
                fmt_num(hist.quantile(0.95).unwrap_or(0.0)),
                fmt_num(hist.quantile(0.99).unwrap_or(0.0)),
            ));
        }
        out
    }

    /// Renders the run's metadata and histogram summaries as JSON.
    pub fn meta_json(&self, key: &RunKey) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"experiment\": \"{}\",\n  \"point\": {},\n  \"seed\": {},\n  \"stream_seed\": {},\n",
            key.experiment,
            key.point,
            key.seed,
            key.stream_seed()
        ));
        s.push_str(&format!(
            "  \"events\": {},\n  \"dropped\": {},\n  \"capacity\": {},\n",
            self.events.len(),
            self.dropped,
            self.capacity
        ));
        s.push_str("  \"histograms\": [");
        for (i, (name, hist)) in self.hists.iter().enumerate() {
            s.push_str(&format!(
                "{}\n    {{\"name\": \"{name}\", \"count\": {}, \"p50\": {}, \"p95\": {}}}",
                if i == 0 { "" } else { "," },
                hist.count(),
                fmt_num(hist.quantile(0.5).unwrap_or(0.0)),
                fmt_num(hist.quantile(0.95).unwrap_or(0.0)),
            ));
        }
        if self.hists.is_empty() {
            s.push_str("]\n}\n");
        } else {
            s.push_str("\n  ]\n}\n");
        }
        s
    }
}

/// Directory name for a run's artifacts: `<experiment>-p<point>-s<seed>`
/// with path separators in the label flattened.
pub fn run_dir_name(key: &RunKey) -> String {
    let label: String = key
        .experiment
        .chars()
        .map(|c| if c == '/' || c == '\\' { '_' } else { c })
        .collect();
    format!("{label}-p{}-s{}", key.point, key.seed)
}

/// Writes all of a report's artifacts into `dir` (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or file writes.
pub fn write_artifacts(dir: &Path, key: &RunKey, report: &ObsReport) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("events.jsonl"), report.events_jsonl())?;
    for (name, body) in report.probe_csvs() {
        std::fs::write(dir.join(name), body)?;
    }
    std::fs::write(dir.join("histograms.csv"), report.histograms_csv())?;
    std::fs::write(
        dir.join("histogram_summary.csv"),
        report.histogram_summary_csv(),
    )?;
    std::fs::write(dir.join("meta.json"), report.meta_json(key))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Layer};

    static KIND: EventKind = EventKind {
        name: "k",
        layer: Layer::Phy,
        fields: &["x"],
    };

    fn report() -> ObsReport {
        let mut r = ObsReport {
            capacity: 8,
            dropped: 1,
            ..ObsReport::default()
        };
        r.events
            .push(ObsEvent::new(SimTime::from_micros(10), 1, &KIND, &[2.5]));
        r.hists.entry("lat_us").or_default().push(300.0);
        r.series
            .insert(("cw", 0), vec![(SimTime::from_micros(5), 31.0)]);
        r
    }

    #[test]
    fn artifacts_render_deterministically() {
        let r = report();
        assert_eq!(
            r.events_jsonl(),
            "{\"t_us\":10,\"layer\":\"phy\",\"node\":1,\"kind\":\"k\",\"x\":2.5}\n"
        );
        let probes = r.probe_csvs();
        assert_eq!(probes.len(), 1);
        assert_eq!(probes[0].0, "probe_cw.csv");
        assert_eq!(probes[0].1, "id,t_us,value\n0,5,31\n");
        assert!(r.histograms_csv().contains("lat_us,256,512,1"));
        // One sample at 300 → every quantile resolves to its bucket's
        // lower bound (256), the mean to the sample itself.
        assert_eq!(
            r.histogram_summary_csv(),
            "name,count,mean,p50,p90,p95,p99\nlat_us,1,300,256,256,256,256\n"
        );
        let key = RunKey::new("fig6", 2, 0);
        let meta = r.meta_json(&key);
        assert!(meta.contains("\"experiment\": \"fig6\""));
        assert!(meta.contains("\"dropped\": 1"));
        assert!(meta.contains("\"name\": \"lat_us\""));
    }

    #[test]
    fn dir_name_flattens_label_paths() {
        assert_eq!(run_dir_name(&RunKey::new("abl1/cs", 3, 1)), "abl1_cs-p3-s1");
    }

    #[test]
    fn write_artifacts_creates_all_files() {
        let dir = std::env::temp_dir().join(format!("gr-obs-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = RunKey::new("t", 0, 0);
        write_artifacts(&dir, &key, &report()).unwrap();
        for f in [
            "events.jsonl",
            "probe_cw.csv",
            "histograms.csv",
            "histogram_summary.csv",
            "meta.json",
        ] {
            assert!(dir.join(f).is_file(), "{f} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
