//! The per-run flight recorder.
//!
//! One [`Recorder`] serves exactly one simulation run; the layers of
//! that run share it through a [`RecorderHandle`]. It holds three
//! stores, all bounded or run-lifetime sized:
//!
//! * a ring buffer of [`ObsEvent`]s that drops the **oldest** events
//!   when full (the tail of a run is what debugging usually needs) and
//!   counts the drops;
//! * log-bucketed histograms keyed by metric name (latency, backoff,
//!   inter-ACK gaps);
//! * gauge time series keyed by `(gauge, id)` fed by the runtime's
//!   virtual-time probe loop (queue depth, NAV remaining, cwnd).
//!
//! The recorder itself is passive: what and when to sample is decided
//! by the instrumentation sites and the runtime's probe loop.

use std::collections::{BTreeMap, VecDeque};

use sim::stats::LogHistogram;
use sim::{SimDuration, SimTime};

use crate::event::{EventKind, Layer, ObsEvent};
use crate::export::ObsReport;
use crate::shared::Shared;

/// Shared handle to a run's [`Recorder`].
pub type RecorderHandle = Shared<Recorder>;

/// Which events a recorder keeps: a layer mask and an optional node
/// allow-list (`None` = every node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    layer_mask: u8,
    nodes: Option<Vec<u16>>,
}

impl Default for Filter {
    fn default() -> Self {
        Filter::all()
    }
}

impl Filter {
    /// Keeps everything.
    pub fn all() -> Self {
        Filter {
            layer_mask: 0xFF,
            nodes: None,
        }
    }

    /// Keeps only the given layers (every node).
    pub fn layers(layers: &[Layer]) -> Self {
        Filter {
            layer_mask: layers.iter().fold(0, |m, l| m | l.mask()),
            nodes: None,
        }
    }

    /// Restricts the filter to the given nodes (empty = no restriction).
    pub fn with_nodes(mut self, mut nodes: Vec<u16>) -> Self {
        if nodes.is_empty() {
            self.nodes = None;
        } else {
            nodes.sort_unstable();
            nodes.dedup();
            self.nodes = Some(nodes);
        }
        self
    }

    /// Whether an event from `layer` about `node` passes.
    pub fn allows(&self, layer: Layer, node: u16) -> bool {
        self.layer_mask & layer.mask() != 0 && self.allows_node(node)
    }

    /// Whether gauge samples about `node` pass (layer-independent).
    pub fn allows_node(&self, node: u16) -> bool {
        match &self.nodes {
            None => true,
            Some(nodes) => nodes.binary_search(&node).is_ok(),
        }
    }

    /// Parses a `--record-filter` spec: comma-separated layer names
    /// (`phy`, `mac`, `transport`, `net`) and/or node ids. Layers listed
    /// restrict layers, numbers listed restrict nodes; an empty spec
    /// keeps everything.
    ///
    /// # Errors
    ///
    /// Returns a description of the first token that is neither a layer
    /// name nor a node id.
    pub fn parse(spec: &str) -> Result<Filter, String> {
        let mut layers = Vec::new();
        let mut nodes = Vec::new();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(layer) = Layer::parse(tok) {
                layers.push(layer);
            } else if let Ok(node) = tok.parse::<u16>() {
                nodes.push(node);
            } else {
                return Err(format!(
                    "bad filter token `{tok}` (expected a layer name \
                     phy|mac|transport|net or a node id)"
                ));
            }
        }
        let mut f = if layers.is_empty() {
            Filter::all()
        } else {
            Filter::layers(&layers)
        };
        f = f.with_nodes(nodes);
        Ok(f)
    }
}

/// Recording configuration: what a fresh [`Recorder`] keeps and how
/// often the runtime samples gauges.
#[derive(Debug, Clone)]
pub struct ObsSpec {
    /// Ring-buffer capacity in events. When full, the oldest events are
    /// dropped (and counted).
    pub capacity: usize,
    /// Virtual-time gauge sampling period; `None` disables probes.
    pub probe_interval: Option<SimDuration>,
    /// Event filter.
    pub filter: Filter,
}

impl Default for ObsSpec {
    /// 262 144 events, 100 ms probes, no filtering.
    fn default() -> Self {
        ObsSpec {
            capacity: 1 << 18,
            probe_interval: Some(SimDuration::from_millis(100)),
            filter: Filter::all(),
        }
    }
}

impl ObsSpec {
    /// Creates a fresh recorder handle configured by this spec.
    pub fn recorder(&self) -> RecorderHandle {
        Shared::new(Recorder::new(self.clone()))
    }
}

/// A live subscriber to a recorder's event stream.
///
/// The tap sees **every** emitted event, before the filter and before
/// ring eviction — a conformance checker attached here misses nothing
/// even when the ring is tiny or a `--record-filter` is active.
pub trait EventTap {
    /// Called for each event at its emission site.
    fn on_event(&mut self, ev: &ObsEvent);
}

/// A run's telemetry sink. See the module docs.
pub struct Recorder {
    spec: ObsSpec,
    events: VecDeque<ObsEvent>,
    dropped: u64,
    hists: BTreeMap<&'static str, LogHistogram>,
    series: BTreeMap<(&'static str, u16), Vec<(SimTime, f64)>>,
    tap: Option<Box<dyn EventTap>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("spec", &self.spec)
            .field("events", &self.events.len())
            .field("dropped", &self.dropped)
            .field("tap", &self.tap.is_some())
            .finish()
    }
}

impl Recorder {
    /// Creates an empty recorder. Capacity is a cap, not a
    /// preallocation: short runs stay small.
    pub fn new(spec: ObsSpec) -> Self {
        Recorder {
            spec,
            events: VecDeque::new(),
            dropped: 0,
            hists: BTreeMap::new(),
            series: BTreeMap::new(),
            tap: None,
        }
    }

    /// Attaches a live [`EventTap`], replacing any previous one.
    pub fn set_tap(&mut self, tap: Box<dyn EventTap>) {
        self.tap = Some(tap);
    }

    /// Detaches and returns the current tap, if any.
    pub fn take_tap(&mut self) -> Option<Box<dyn EventTap>> {
        self.tap.take()
    }

    /// Records one event if the filter passes, evicting the oldest event
    /// when the ring is full. An attached [`EventTap`] sees the event
    /// first, regardless of filter or capacity.
    pub fn emit(&mut self, at: SimTime, node: u16, kind: &'static EventKind, vals: &[f64]) {
        if let Some(tap) = self.tap.as_mut() {
            tap.on_event(&ObsEvent::new(at, node, kind, vals));
        }
        if !self.spec.filter.allows(kind.layer, node) {
            return;
        }
        if self.spec.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.spec.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ObsEvent::new(at, node, kind, vals));
    }

    /// Adds one observation to the named log-bucketed histogram.
    pub fn record_hist(&mut self, name: &'static str, value: f64) {
        self.hists.entry(name).or_default().push(value);
    }

    /// Appends one gauge sample to the `(gauge, id)` time series, unless
    /// the node filter excludes `id`.
    pub fn sample(&mut self, gauge: &'static str, id: u16, at: SimTime, value: f64) {
        if !self.spec.filter.allows_node(id) {
            return;
        }
        self.series
            .entry((gauge, id))
            .or_default()
            .push((at, value));
    }

    /// The configured gauge sampling period, if probing is on.
    pub fn probe_interval(&self) -> Option<SimDuration> {
        self.spec.probe_interval
    }

    /// The configured ring-buffer capacity.
    pub fn capacity(&self) -> usize {
        self.spec.capacity
    }

    /// The event filter.
    pub fn filter(&self) -> &Filter {
        &self.spec.filter
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or refused at zero capacity) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter()
    }

    /// Detaches everything recorded so far into a plain-data
    /// [`ObsReport`], leaving the recorder empty (counters reset).
    pub fn drain_report(&mut self) -> ObsReport {
        ObsReport {
            events: std::mem::take(&mut self.events).into_iter().collect(),
            dropped: std::mem::take(&mut self.dropped),
            capacity: self.spec.capacity,
            hists: std::mem::take(&mut self.hists),
            series: std::mem::take(&mut self.series),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static K_MAC: EventKind = EventKind {
        name: "k_mac",
        layer: Layer::Mac,
        fields: &["v"],
    };
    static K_PHY: EventKind = EventKind {
        name: "k_phy",
        layer: Layer::Phy,
        fields: &[],
    };

    fn spec(capacity: usize) -> ObsSpec {
        ObsSpec {
            capacity,
            ..ObsSpec::default()
        }
    }

    #[test]
    fn full_ring_drops_oldest_with_accurate_counter() {
        let mut r = Recorder::new(spec(3));
        for i in 0..7u64 {
            r.emit(SimTime::from_micros(i), 0, &K_MAC, &[i as f64]);
        }
        // Capacity 3, 7 emitted: the 4 oldest are gone, newest 3 remain.
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        let kept: Vec<u64> = r.events().map(|e| e.at.as_micros()).collect();
        assert_eq!(kept, vec![4, 5, 6]);
        let report = r.drain_report();
        assert_eq!(report.dropped, 4);
        assert_eq!(report.events.len(), 3);
        // Draining resets the recorder.
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn filter_gates_layers_and_nodes() {
        let mut s = spec(16);
        s.filter = Filter::layers(&[Layer::Mac]).with_nodes(vec![2]);
        let mut r = Recorder::new(s);
        r.emit(SimTime::ZERO, 2, &K_MAC, &[1.0]); // kept
        r.emit(SimTime::ZERO, 1, &K_MAC, &[1.0]); // wrong node
        r.emit(SimTime::ZERO, 2, &K_PHY, &[]); // wrong layer
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 0, "filtered events are not drops");
        r.sample("g", 2, SimTime::ZERO, 1.0);
        r.sample("g", 3, SimTime::ZERO, 1.0);
        let report = r.drain_report();
        assert_eq!(report.series.len(), 1);
    }

    #[test]
    fn filter_parse_accepts_layers_and_nodes() {
        let f = Filter::parse("mac, phy, 7").unwrap();
        assert!(f.allows(Layer::Mac, 7));
        assert!(!f.allows(Layer::Transport, 7));
        assert!(!f.allows(Layer::Mac, 6));
        assert_eq!(Filter::parse("").unwrap(), Filter::all());
        assert!(Filter::parse("warp").is_err());
    }

    #[test]
    fn tap_sees_filtered_and_evicted_events() {
        struct Counting(std::rc::Rc<std::cell::Cell<usize>>);
        impl EventTap for Counting {
            fn on_event(&mut self, _ev: &ObsEvent) {
                self.0.set(self.0.get() + 1);
            }
        }
        let seen = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut s = spec(1);
        s.filter = Filter::layers(&[Layer::Phy]);
        let mut r = Recorder::new(s);
        r.set_tap(Box::new(Counting(seen.clone())));
        for i in 0..5u64 {
            r.emit(SimTime::from_micros(i), 0, &K_MAC, &[0.0]); // filtered out
            r.emit(SimTime::from_micros(i), 0, &K_PHY, &[]); // kept, ring of 1
        }
        assert_eq!(seen.get(), 10, "tap must see every emission");
        assert_eq!(r.len(), 1);
        assert!(r.take_tap().is_some());
        r.emit(SimTime::ZERO, 0, &K_PHY, &[]);
        assert_eq!(seen.get(), 10, "detached tap sees nothing");
    }
}
