//! Flight-recorder observability for the greedy80211 simulator.
//!
//! The paper's detection scheme (GRC, §VII) and its figures reason about
//! *time-resolved* behavior — NAV occupancy, backoff evolution, cwnd
//! collapse under fake ACKs — while end-of-run metrics only show
//! aggregates. This crate is the shared telemetry layer every stack
//! level (`phy`, `mac`, `transport`, `net`) records into:
//!
//! * [`Recorder`] — a bounded ring buffer of structured [`ObsEvent`]s
//!   (virtual timestamp, node, layer, kind, payload), plus log-bucketed
//!   histograms and periodically sampled gauge time series;
//! * [`ObsSpec`] / [`Filter`] — what to record (capacity, probe
//!   interval, layer/node filter);
//! * [`ObsReport`] / [`write_artifacts`] — a detached plain-data
//!   snapshot and its deterministic JSONL + CSV export keyed by
//!   [`sim::RunKey`];
//! * [`span!`] / [`profile`] — a wall-clock profiling scope reporting
//!   per-layer time;
//! * [`ambient`] — a per-thread recorder slot so campaign sweeps can
//!   inject recording into experiment closures without changing their
//!   signatures.
//!
//! Recording is zero-cost when disabled: every instrumentation site is
//! an `Option<RecorderHandle>` check (`None` in all default paths), and
//! profiling spans gate on one relaxed atomic load. Determinism is
//! preserved by construction — recording never touches the event queue
//! or any RNG stream, so a run produces bit-identical simulation results
//! and bit-identical artifacts at any worker count.
//!
//! # Examples
//!
//! ```
//! use gr_obs::{EventKind, Layer, ObsSpec};
//! use sim::SimTime;
//!
//! static PING: EventKind = EventKind {
//!     name: "ping",
//!     layer: Layer::Net,
//!     fields: &["seq"],
//! };
//!
//! let handle = ObsSpec::default().recorder();
//! handle
//!     .borrow_mut()
//!     .emit(SimTime::from_micros(5), 0, &PING, &[1.0]);
//! let report = handle.borrow_mut().drain_report();
//! assert_eq!(report.events.len(), 1);
//! assert!(report.events_jsonl().contains("\"kind\":\"ping\""));
//! ```

#![warn(missing_docs)]
pub mod ambient;
pub mod event;
pub mod export;
pub mod profile;
pub mod recorder;
pub mod shared;

pub use event::{EventKind, Layer, ObsEvent, MAX_FIELDS};
pub use export::{run_dir_name, write_artifacts, ObsReport};
pub use recorder::{EventTap, Filter, ObsSpec, Recorder, RecorderHandle};
pub use shared::Shared;
