//! Shared mutable handles to recorder state.
//!
//! Mirrors the `Shared<T>` idiom used by the detection layer: an
//! `Rc<RefCell<T>>`. Every layer of one run holds a clone of the same
//! [`crate::RecorderHandle`]; runs never share a recorder and each run is
//! single-threaded, so interior mutability without atomics is exactly
//! right — the recorder borrow sits on the per-event hot path. Campaign
//! aggregation state that genuinely crosses worker threads (e.g. the
//! bench sink) uses an explicit `Arc<Mutex<…>>` at that one site instead.

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// A cheaply clonable shared cell (`Rc<RefCell<T>>`, single-threaded).
pub struct Shared<T>(Rc<RefCell<T>>);

impl<T> Shared<T> {
    /// Wraps `value` in a new shared cell.
    pub fn new(value: T) -> Self {
        Shared(Rc::new(RefCell::new(value)))
    }

    /// Borrows the cell for reading.
    ///
    /// # Panics
    ///
    /// Panics if the cell is currently mutably borrowed.
    pub fn borrow(&self) -> Ref<'_, T> {
        self.0.borrow()
    }

    /// Borrows the cell for writing.
    ///
    /// # Panics
    ///
    /// Panics if the cell is currently borrowed.
    pub fn borrow_mut(&self) -> RefMut<'_, T> {
        self.0.borrow_mut()
    }

    /// Whether `self` and `other` point at the same cell.
    pub fn same_cell(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Rc::clone(&self.0))
    }
}

// Deliberately does not require `T: Debug`: handles are embedded in
// `Debug`-deriving hosts (MAC, TCP sender) that must not grow bounds.
impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Shared").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Shared::new(1u32);
        let b = a.clone();
        *b.borrow_mut() += 41;
        assert_eq!(*a.borrow(), 42);
        assert!(a.same_cell(&b));
        assert!(!a.same_cell(&Shared::new(1)));
    }
}
