//! Shared mutable handles to recorder state.
//!
//! Mirrors the `Shared<T>` idiom used by the detection layer: an
//! `Arc<Mutex<T>>` with panic-on-poison borrows. Every layer of one run
//! holds a clone of the same [`crate::RecorderHandle`]; runs never share
//! a recorder, so the mutex is uncontended and exists only to make the
//! handle `Send` for the campaign runner's worker threads.

use std::sync::{Arc, Mutex, MutexGuard};

/// A cheaply clonable shared cell (`Arc<Mutex<T>>`).
pub struct Shared<T>(Arc<Mutex<T>>);

impl<T> Shared<T> {
    /// Wraps `value` in a new shared cell.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(Mutex::new(value)))
    }

    /// Locks the cell for reading.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (a holder panicked).
    pub fn borrow(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("shared cell poisoned")
    }

    /// Locks the cell for writing.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (a holder panicked).
    pub fn borrow_mut(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("shared cell poisoned")
    }

    /// Whether `self` and `other` point at the same cell.
    pub fn same_cell(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

// Deliberately does not require `T: Debug`: handles are embedded in
// `Debug`-deriving hosts (MAC, TCP sender) that must not grow bounds.
impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Shared").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Shared::new(1u32);
        let b = a.clone();
        *b.borrow_mut() += 41;
        assert_eq!(*a.borrow(), 42);
        assert!(a.same_cell(&b));
        assert!(!a.same_cell(&Shared::new(1)));
    }
}
