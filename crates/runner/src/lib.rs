//! Fixed-pool job executor for simulation campaigns.
//!
//! A sweep is a batch of independent, self-contained jobs (one seeded
//! simulation run each). [`Runner::execute_all`] shards the batch across a
//! fixed pool of worker threads pulling from a shared queue, then returns
//! the results **in submission order** regardless of which worker finished
//! which job first. Because every job is pure — it derives all randomness
//! from its own run key and touches no shared state — the collected results
//! are identical at any thread count; only wall-clock time changes.
//!
//! With `jobs == 1` the batch runs inline on the caller's thread, with no
//! pool and no channels, which keeps single-threaded debugging trivial.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub mod lockstep;

pub use lockstep::Lockstep;

/// Executes batches of independent jobs on a fixed thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    jobs: NonZeroUsize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new(available_jobs())
    }
}

/// The number of worker threads to use by default: the parallelism the OS
/// reports as available to this process, or 1 if that cannot be queried.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Runner {
    /// A runner with a pool of `jobs` workers; `jobs` is clamped to at
    /// least 1.
    pub fn new(jobs: usize) -> Self {
        Runner {
            jobs: NonZeroUsize::new(jobs.max(1)).expect("clamped to >= 1"),
        }
    }

    /// A runner that executes every batch inline on the caller's thread.
    pub fn sequential() -> Self {
        Runner::new(1)
    }

    /// Pool width.
    pub fn jobs(&self) -> usize {
        self.jobs.get()
    }

    /// Runs every job in `batch` and returns the results in submission
    /// order. Panics in a job are propagated to the caller.
    pub fn execute_all<T, F>(&self, batch: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let workers = self.jobs.get().min(batch.len());
        if workers <= 1 {
            return batch.into_iter().map(|job| job()).collect();
        }

        let queue: Mutex<VecDeque<(usize, F)>> =
            Mutex::new(batch.into_iter().enumerate().collect());
        let expected = queue.lock().expect("fresh queue").len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();

        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(expected).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || {
                    loop {
                        // Take the lock only long enough to pop one job;
                        // the job itself runs unlocked.
                        let next = queue.lock().expect("queue poisoned").pop_front();
                        let Some((idx, job)) = next else { break };
                        // A send error means the collector hung up, which
                        // only happens when the scope is unwinding from a
                        // panic elsewhere; stop quietly.
                        if tx.send((idx, job())).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (idx, value) in rx {
                slots[idx] = Some(value);
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("every job reports exactly once"))
            .collect()
    }

    /// Like [`Runner::execute_all`], also reporting the batch's wall-clock
    /// duration.
    pub fn execute_all_timed<T, F>(&self, batch: Vec<F>) -> (Vec<T>, Duration)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let start = Instant::now();
        let results = self.execute_all(batch);
        (results, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn squares_batch(n: usize) -> Vec<impl FnOnce() -> usize + Send> {
        (0..n).map(|i| move || i * i).collect()
    }

    #[test]
    fn results_keep_submission_order() {
        let runner = Runner::new(4);
        let out = runner.execute_all(squares_batch(64));
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_results_at_every_pool_width() {
        let baseline = Runner::sequential().execute_all(squares_batch(33));
        for jobs in [2, 3, 4, 8, 16] {
            let out = Runner::new(jobs).execute_all(squares_batch(33));
            assert_eq!(out, baseline, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let batch: Vec<_> = (0..50)
            .map(|_| {
                let count = &count;
                move || count.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        Runner::new(8).execute_all(batch);
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = Runner::new(4).execute_all(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_is_clamped_to_one() {
        assert_eq!(Runner::new(0).jobs(), 1);
    }

    #[test]
    fn timed_variant_reports_duration() {
        let (out, elapsed) = Runner::new(2).execute_all_timed(squares_batch(8));
        assert_eq!(out.len(), 8);
        assert!(elapsed <= Duration::from_secs(60));
    }
}
