//! Lockstep shard executor for the multi-cell world.
//!
//! Unlike [`Runner::execute_all`](crate::Runner::execute_all), whose jobs
//! are independent, a world run couples its shards: every cell must reach
//! a common virtual-time horizon before boundary interference for the
//! next epoch can be computed. This module runs that protocol on a pool
//! of *persistent* workers:
//!
//! * each worker owns a fixed subset of shards (shard `i` lives on worker
//!   `i % workers`) for the entire run, so non-`Send` simulation state
//!   (report handles, recorders, armed conformance checkers) never
//!   crosses a thread boundary — only plain-data seeds, epoch reports,
//!   injections and final outputs do;
//! * every epoch is a barrier: workers step their shards to the horizon,
//!   send one [`Lockstep::Report`] per shard, and block until the
//!   coordinator (the calling thread) has collected *all* reports, run
//!   the exchange, and sent each worker its shards' injections;
//! * the exchange always sees the reports as a vector indexed by shard
//!   id, and returns one injection per shard id, so its inputs and
//!   outputs are identical at any worker count — which is the whole
//!   determinism argument: `step`/`absorb` touch one shard each, shards
//!   are independent between barriers, and the only cross-shard
//!   computation happens on one thread in one fixed order.
//!
//! With one worker (or one shard) the protocol runs inline on the caller
//! thread in ascending shard-id order; that inline schedule is the
//! reference any pool width must reproduce.

use std::sync::mpsc;

use crate::Runner;

/// A lockstep shard protocol: how to build, step, couple and finish one
/// shard. The spec itself is shared by reference across workers.
pub trait Lockstep: Sync {
    /// Plain data a shard is built from (crosses to the owning worker).
    type Seed: Send;
    /// Worker-resident shard state; deliberately *not* required to be
    /// `Send` — it is built, stepped and finished on one thread.
    type Shard;
    /// Per-shard, per-epoch boundary report for the exchange.
    type Report: Send;
    /// Per-shard, per-epoch injection computed by the exchange.
    type Inject: Send;
    /// Final per-shard result.
    type Out: Send;

    /// Builds shard `index` from its seed, on the owning worker.
    fn build(&self, index: usize, seed: Self::Seed) -> Self::Shard;
    /// Advances a shard through epoch `epoch` and reports its boundary
    /// state.
    fn step(&self, shard: &mut Self::Shard, epoch: usize) -> Self::Report;
    /// Applies the exchange's injection for the epoch just completed.
    fn absorb(&self, shard: &mut Self::Shard, inject: Self::Inject);
    /// Consumes a shard after the final epoch.
    fn finish(&self, shard: Self::Shard) -> Self::Out;
}

/// Everything a worker reports upward, multiplexed on one channel so the
/// coordinator always has exactly one place to listen.
enum Msg<R, O> {
    Report(usize, R),
    Out(usize, O),
    /// Sent from a panicking worker's drop guard so the coordinator
    /// fails fast instead of deadlocking at the barrier.
    Died,
}

/// Notifies the coordinator if the worker unwinds mid-protocol.
struct PanicGuard<'a, R, O> {
    tx: &'a mpsc::Sender<Msg<R, O>>,
    armed: bool,
}

impl<R, O> Drop for PanicGuard<'_, R, O> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            let _ = self.tx.send(Msg::Died);
        }
    }
}

impl Runner {
    /// Runs `seeds.len()` shards through `epochs` lockstep epochs and
    /// returns the final outputs in shard-id order.
    ///
    /// After every epoch — including the last — `exchange` receives the
    /// epoch index and all shard reports (indexed by shard id) and must
    /// return exactly one injection per shard. Injections returned for
    /// the final epoch are absorbed but never stepped, so a caller whose
    /// horizon ends flush with the last epoch can return empty ones.
    ///
    /// # Panics
    ///
    /// Panics if `exchange` returns the wrong number of injections, or
    /// if any worker panics (the panic is propagated).
    pub fn run_lockstep<L, X>(
        &self,
        spec: &L,
        seeds: Vec<L::Seed>,
        epochs: usize,
        mut exchange: X,
    ) -> Vec<L::Out>
    where
        L: Lockstep,
        X: FnMut(usize, Vec<L::Report>) -> Vec<L::Inject>,
    {
        let n = seeds.len();
        let workers = self.jobs().min(n);
        if workers <= 1 {
            // The reference schedule: everything on the caller thread in
            // ascending shard-id order.
            let mut shards: Vec<L::Shard> = seeds
                .into_iter()
                .enumerate()
                .map(|(i, seed)| spec.build(i, seed))
                .collect();
            for epoch in 0..epochs {
                let reports: Vec<L::Report> = shards
                    .iter_mut()
                    .map(|shard| spec.step(shard, epoch))
                    .collect();
                let injections = exchange(epoch, reports);
                assert_eq!(injections.len(), n, "exchange must cover every shard");
                for (shard, inject) in shards.iter_mut().zip(injections) {
                    spec.absorb(shard, inject);
                }
            }
            return shards.into_iter().map(|shard| spec.finish(shard)).collect();
        }

        let mut per_worker: Vec<Vec<(usize, L::Seed)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, seed) in seeds.into_iter().enumerate() {
            per_worker[i % workers].push((i, seed));
        }
        let (tx, rx) = mpsc::channel::<Msg<L::Report, L::Out>>();
        let mut outs: Vec<Option<L::Out>> = std::iter::repeat_with(|| None).take(n).collect();
        std::thread::scope(|scope| {
            let mut inject_txs = Vec::with_capacity(workers);
            for mine in per_worker {
                let (itx, irx) = mpsc::channel::<Vec<(usize, L::Inject)>>();
                inject_txs.push(itx);
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut guard = PanicGuard {
                        tx: &tx,
                        armed: true,
                    };
                    let mut shards: Vec<(usize, L::Shard)> = mine
                        .into_iter()
                        .map(|(i, seed)| (i, spec.build(i, seed)))
                        .collect();
                    for epoch in 0..epochs {
                        for (i, shard) in &mut shards {
                            // A send/recv error means the coordinator hung
                            // up, which only happens when the scope is
                            // unwinding from a failure elsewhere; stop
                            // quietly and let the join report it.
                            if tx.send(Msg::Report(*i, spec.step(shard, epoch))).is_err() {
                                return;
                            }
                        }
                        let Ok(injections) = irx.recv() else { return };
                        for (i, inject) in injections {
                            let (_, shard) = shards
                                .iter_mut()
                                .find(|(j, _)| *j == i)
                                .expect("injection for a shard this worker does not own");
                            spec.absorb(shard, inject);
                        }
                    }
                    for (i, shard) in shards {
                        if tx.send(Msg::Out(i, spec.finish(shard))).is_err() {
                            return;
                        }
                    }
                    guard.armed = false;
                });
            }
            drop(tx);
            for epoch in 0..epochs {
                let mut reports: Vec<Option<L::Report>> =
                    std::iter::repeat_with(|| None).take(n).collect();
                for _ in 0..n {
                    match rx.recv().expect("every worker hung up") {
                        Msg::Report(i, r) => {
                            assert!(reports[i].replace(r).is_none(), "duplicate report");
                        }
                        Msg::Out(..) => unreachable!("output before the final epoch"),
                        Msg::Died => panic!("lockstep worker panicked"),
                    }
                }
                let reports: Vec<L::Report> = reports
                    .into_iter()
                    .map(|r| r.expect("barrier passed with a report missing"))
                    .collect();
                let injections = exchange(epoch, reports);
                assert_eq!(injections.len(), n, "exchange must cover every shard");
                let mut grouped: Vec<Vec<(usize, L::Inject)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (i, inject) in injections.into_iter().enumerate() {
                    grouped[i % workers].push((i, inject));
                }
                for (w, batch) in grouped.into_iter().enumerate() {
                    if inject_txs[w].send(batch).is_err() {
                        panic!("lockstep worker {w} hung up at the barrier");
                    }
                }
            }
            for _ in 0..n {
                match rx.recv().expect("every worker hung up") {
                    Msg::Out(i, out) => {
                        assert!(outs[i].replace(out).is_none(), "duplicate output");
                    }
                    Msg::Report(..) => unreachable!("report after the final epoch"),
                    Msg::Died => panic!("lockstep worker panicked"),
                }
            }
        });
        outs.into_iter()
            .map(|o| o.expect("every shard finishes exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;

    /// A toy protocol exercising the coupling: every shard holds a
    /// counter, each epoch it adds its id, and the exchange feeds each
    /// shard the sum of all *other* shards' counters. The final value
    /// depends on every report of every epoch, so any barrier or
    /// ordering bug changes it.
    struct SumSpec;

    impl Lockstep for SumSpec {
        type Seed = u64;
        // Deliberately not Send-friendly state to prove the executor
        // never needs it to be.
        type Shard = StdCell<u64>;
        type Report = u64;
        type Inject = u64;
        type Out = u64;

        fn build(&self, index: usize, seed: u64) -> StdCell<u64> {
            StdCell::new(seed * 100 + index as u64)
        }
        fn step(&self, shard: &mut StdCell<u64>, epoch: usize) -> u64 {
            shard.set(shard.get() + epoch as u64 + 1);
            shard.get()
        }
        fn absorb(&self, shard: &mut StdCell<u64>, inject: u64) {
            shard.set(shard.get().wrapping_mul(3).wrapping_add(inject));
        }
        fn finish(&self, shard: StdCell<u64>) -> u64 {
            shard.get()
        }
    }

    fn coupled_exchange(_epoch: usize, reports: Vec<u64>) -> Vec<u64> {
        let total: u64 = reports.iter().sum();
        reports.into_iter().map(|r| total - r).collect()
    }

    #[test]
    fn identical_results_at_every_pool_width() {
        let seeds: Vec<u64> = (0..13).collect();
        let baseline =
            Runner::sequential().run_lockstep(&SumSpec, seeds.clone(), 5, coupled_exchange);
        for jobs in [2, 3, 4, 8, 16] {
            let out = Runner::new(jobs).run_lockstep(&SumSpec, seeds.clone(), 5, coupled_exchange);
            assert_eq!(out, baseline, "jobs={jobs}");
        }
    }

    #[test]
    fn exchange_sees_ordered_reports_each_epoch() {
        let mut seen = Vec::new();
        Runner::new(4).run_lockstep(&SumSpec, vec![1, 2, 3, 4, 5], 3, |epoch, reports| {
            seen.push((epoch, reports.clone()));
            vec![0; reports.len()]
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(
            seen.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Reports are per-shard-id vectors; with zero injections the
        // counters evolve independently of the pool, so epoch 0 reports
        // are exactly seed*100 + id + 1.
        assert_eq!(seen[0].1, vec![101, 202, 303, 404, 505]);
    }

    #[test]
    fn shards_stay_on_their_worker() {
        struct PinSpec;
        impl Lockstep for PinSpec {
            type Seed = ();
            type Shard = (usize, std::thread::ThreadId);
            type Report = std::thread::ThreadId;
            type Inject = ();
            type Out = bool;
            fn build(&self, index: usize, _seed: ()) -> Self::Shard {
                (index, std::thread::current().id())
            }
            fn step(&self, shard: &mut Self::Shard, _epoch: usize) -> std::thread::ThreadId {
                shard.1
            }
            fn absorb(&self, _shard: &mut Self::Shard, _inject: ()) {}
            fn finish(&self, shard: Self::Shard) -> bool {
                // Built and finished on the same thread.
                shard.1 == std::thread::current().id()
            }
        }
        let pinned = Runner::new(3).run_lockstep(&PinSpec, vec![(); 8], 4, |_, reports| {
            // Every epoch must report the thread the shard was built on.
            vec![(); reports.len()]
        });
        assert!(pinned.into_iter().all(|p| p));
    }

    #[test]
    fn zero_epochs_builds_and_finishes() {
        let out = Runner::new(4)
            .run_lockstep(&SumSpec, vec![7, 8], 0, |_, reports| vec![0; reports.len()]);
        assert_eq!(out, vec![700, 801]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        struct BoomSpec;
        impl Lockstep for BoomSpec {
            type Seed = usize;
            type Shard = usize;
            type Report = ();
            type Inject = ();
            type Out = ();
            fn build(&self, _index: usize, seed: usize) -> usize {
                seed
            }
            fn step(&self, shard: &mut usize, epoch: usize) {
                if *shard == 3 && epoch == 1 {
                    panic!("shard 3 exploded");
                }
            }
            fn absorb(&self, _shard: &mut usize, _inject: ()) {}
            fn finish(&self, _shard: usize) {}
        }
        Runner::new(4).run_lockstep(&BoomSpec, (0..6).collect(), 4, |_, reports| {
            vec![(); reports.len()]
        });
    }
}
