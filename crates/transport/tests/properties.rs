//! Property-based tests of the transport layer.

use gr_transport::tcp::{TcpConfig, TcpOutput, TcpReceiver, TcpSender};
use gr_transport::{FlowId, RtoEstimator, Segment};
use proptest::prelude::*;
use sim::{SimDuration, SimTime};

fn data_seqs(out: &[TcpOutput]) -> Vec<u64> {
    out.iter()
        .filter_map(|o| match o {
            TcpOutput::Send(Segment::TcpData { seq, .. }) => Some(*seq),
            _ => None,
        })
        .collect()
}

proptest! {
    /// Under any ACK sequence the sender never exceeds its window and
    /// never regresses `snd_una`.
    #[test]
    fn sender_window_invariant(acks in proptest::collection::vec(0u64..200, 1..100)) {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for ack in acks {
            t += SimDuration::from_millis(1);
            s.on_ack(t, ack);
            prop_assert!(s.flight_size() <= 50, "flight exceeded window cap");
            prop_assert!(s.cwnd() >= 1.0);
        }
    }

    /// The receiver's expected sequence is non-decreasing and its ACKs
    /// are cumulative (equal to the number of in-order segments).
    #[test]
    fn receiver_cumulative_acks(seqs in proptest::collection::vec(0u64..30, 1..200)) {
        let mut r = TcpReceiver::new(FlowId(0));
        let mut highest_in_order = 0u64;
        let mut seen = std::collections::BTreeSet::new();
        for seq in seqs {
            let ack = r.on_data(seq, 1084);
            seen.insert(seq);
            while seen.contains(&highest_in_order) {
                highest_in_order += 1;
            }
            match ack {
                Segment::TcpAck { ack, .. } => {
                    prop_assert_eq!(ack, highest_in_order, "ACK must be cumulative");
                }
                _ => prop_assert!(false, "receiver must emit TcpAck"),
            }
            prop_assert_eq!(r.expected(), highest_in_order);
        }
    }

    /// Distinct-segment accounting matches the set of unique sequences.
    #[test]
    fn receiver_counts_distinct(seqs in proptest::collection::vec(0u64..30, 1..200)) {
        let mut r = TcpReceiver::new(FlowId(0));
        let mut unique = std::collections::HashSet::new();
        for &seq in &seqs {
            r.on_data(seq, 1084);
            unique.insert(seq);
        }
        prop_assert_eq!(r.distinct_segments as usize, unique.len());
        prop_assert_eq!(r.duplicates as usize, seqs.len() - unique.len());
    }

    /// Timeouts always retransmit the oldest unacknowledged segment.
    #[test]
    fn timeout_retransmits_snd_una(acked in 0u64..20) {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for a in 1..=acked {
            t += SimDuration::from_millis(1);
            s.on_ack(t, a);
        }
        let out = s.on_timeout(t + SimDuration::from_secs(2));
        prop_assert_eq!(data_seqs(&out), vec![acked]);
        prop_assert_eq!(s.cwnd(), 1.0);
    }

    /// RTO stays within its configured clamp for any sample sequence.
    #[test]
    fn rto_clamped(samples in proptest::collection::vec(1u64..5_000, 0..50), backoffs in 0u32..10) {
        let min = SimDuration::from_millis(200);
        let max = SimDuration::from_secs(60);
        let mut r = RtoEstimator::new(min, max);
        for ms in samples {
            r.sample(SimDuration::from_millis(ms));
            prop_assert!(r.rto() >= min && r.rto() <= max);
        }
        for _ in 0..backoffs {
            r.back_off();
            prop_assert!(r.rto() >= min && r.rto() <= max);
        }
    }

    /// The sender never emits a brand-new sequence lower than one it
    /// already sent (retransmissions excepted, which reuse old numbers).
    #[test]
    fn new_sequences_monotone(acks in proptest::collection::vec(0u64..100, 1..100)) {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        let mut highest: i64 = -1;
        let check = |out: &[TcpOutput], highest: &mut i64| {
            for seq in data_seqs(out) {
                let seq = seq as i64;
                if seq > *highest {
                    // New data must extend the space contiguously.
                    assert_eq!(seq, *highest + 1, "gap in new sequence numbers");
                    *highest = seq;
                }
            }
        };
        let out = s.start(SimTime::ZERO);
        check(&out, &mut highest);
        let mut t = SimTime::ZERO;
        for ack in acks {
            t += SimDuration::from_millis(1);
            let out = s.on_ack(t, ack);
            check(&out, &mut highest);
        }
    }
}
