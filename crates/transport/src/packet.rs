//! Transport-layer segments carried inside 802.11 data frames.
//!
//! Sequence and acknowledgement numbers are **packet-granular** (ns-2
//! style): TCP counts segments, not bytes, which matches how the paper's
//! simulations are configured (fixed 1024-byte data packets).

use std::fmt;

use mac::Msdu;

/// Identifier of one transport flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// IP + UDP header overhead added to UDP payloads on the wire.
pub const UDP_IP_OVERHEAD: usize = 28;
/// IP + TCP (+LLC) overhead added to TCP data payloads on the wire.
/// Chosen so a 1024-byte payload yields the 1084-byte MAC body whose
/// corruption behaviour reproduces the paper's Table III
/// (1084 + 28 MAC + 24 PLCP = 1136 error-process bytes → FER 1.130e-2
/// at BER 1e-5, the paper's value).
pub const TCP_DATA_OVERHEAD: usize = 60;
/// Wire size of a TCP ACK segment (40 B TCP/IP + 20 B link-layer
/// encapsulation — again the Table III-consistent value).
pub const TCP_ACK_BYTES: usize = 60;

/// One transport segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// CBR/UDP datagram.
    UdpData {
        /// Owning flow.
        flow: FlowId,
        /// Datagram sequence number.
        seq: u64,
        /// Wire bytes (payload + [`UDP_IP_OVERHEAD`]).
        bytes: usize,
    },
    /// TCP data segment.
    TcpData {
        /// Owning flow.
        flow: FlowId,
        /// Packet-granular sequence number.
        seq: u64,
        /// Wire bytes (payload + [`TCP_DATA_OVERHEAD`]).
        bytes: usize,
    },
    /// Cumulative TCP acknowledgement: `ack` = next expected sequence.
    TcpAck {
        /// Owning flow.
        flow: FlowId,
        /// Next expected sequence number.
        ack: u64,
        /// Wire bytes.
        bytes: usize,
    },
    /// Application-layer probe request (ping), used by the fake-ACK
    /// detector to measure true application loss.
    ProbeReq {
        /// Owning flow.
        flow: FlowId,
        /// Probe sequence number.
        seq: u64,
        /// Wire bytes.
        bytes: usize,
    },
    /// Echo of a probe request.
    ProbeResp {
        /// Owning flow.
        flow: FlowId,
        /// Echoed probe sequence number.
        seq: u64,
        /// Wire bytes.
        bytes: usize,
    },
}

impl Segment {
    /// The flow this segment belongs to.
    pub fn flow(&self) -> FlowId {
        match *self {
            Segment::UdpData { flow, .. }
            | Segment::TcpData { flow, .. }
            | Segment::TcpAck { flow, .. }
            | Segment::ProbeReq { flow, .. }
            | Segment::ProbeResp { flow, .. } => flow,
        }
    }

    /// Builds a UDP datagram with the given payload size.
    pub fn udp(flow: FlowId, seq: u64, payload: usize) -> Self {
        Segment::UdpData {
            flow,
            seq,
            bytes: payload + UDP_IP_OVERHEAD,
        }
    }

    /// Builds a TCP data segment with the given payload size.
    pub fn tcp_data(flow: FlowId, seq: u64, payload: usize) -> Self {
        Segment::TcpData {
            flow,
            seq,
            bytes: payload + TCP_DATA_OVERHEAD,
        }
    }

    /// Builds a TCP ACK for `ack` (next expected sequence).
    pub fn tcp_ack(flow: FlowId, ack: u64) -> Self {
        Segment::TcpAck {
            flow,
            ack,
            bytes: TCP_ACK_BYTES,
        }
    }
}

impl snap::SnapValue for FlowId {
    fn save(&self, w: &mut snap::Enc) {
        w.u32(self.0);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(FlowId(r.u32()?))
    }
}

impl snap::SnapValue for Segment {
    fn save(&self, w: &mut snap::Enc) {
        let (tag, flow, num, bytes) = match *self {
            Segment::UdpData { flow, seq, bytes } => (0u8, flow, seq, bytes),
            Segment::TcpData { flow, seq, bytes } => (1, flow, seq, bytes),
            Segment::TcpAck { flow, ack, bytes } => (2, flow, ack, bytes),
            Segment::ProbeReq { flow, seq, bytes } => (3, flow, seq, bytes),
            Segment::ProbeResp { flow, seq, bytes } => (4, flow, seq, bytes),
        };
        w.u8(tag);
        flow.save(w);
        w.u64(num);
        w.usize(bytes);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        let tag = r.u8()?;
        let flow = FlowId::load(r)?;
        let num = r.u64()?;
        let bytes = r.usize()?;
        Ok(match tag {
            0 => Segment::UdpData {
                flow,
                seq: num,
                bytes,
            },
            1 => Segment::TcpData {
                flow,
                seq: num,
                bytes,
            },
            2 => Segment::TcpAck {
                flow,
                ack: num,
                bytes,
            },
            3 => Segment::ProbeReq {
                flow,
                seq: num,
                bytes,
            },
            4 => Segment::ProbeResp {
                flow,
                seq: num,
                bytes,
            },
            t => return Err(snap::SnapError::Corrupt(format!("segment tag {t}"))),
        })
    }
}

impl Msdu for Segment {
    fn wire_bytes(&self) -> usize {
        match *self {
            Segment::UdpData { bytes, .. }
            | Segment::TcpData { bytes, .. }
            | Segment::TcpAck { bytes, .. }
            | Segment::ProbeReq { bytes, .. }
            | Segment::ProbeResp { bytes, .. } => bytes,
        }
    }

    fn is_transport_ack(&self) -> bool {
        matches!(self, Segment::TcpAck { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(Segment::udp(FlowId(0), 0, 1024).wire_bytes(), 1052);
        assert_eq!(Segment::tcp_data(FlowId(0), 0, 1024).wire_bytes(), 1084);
        assert_eq!(Segment::tcp_ack(FlowId(0), 5).wire_bytes(), 60);
    }

    #[test]
    fn transport_ack_flag() {
        assert!(Segment::tcp_ack(FlowId(0), 1).is_transport_ack());
        assert!(!Segment::tcp_data(FlowId(0), 1, 100).is_transport_ack());
        assert!(!Segment::udp(FlowId(0), 1, 100).is_transport_ack());
    }

    #[test]
    fn table_iii_mac_sizes() {
        // MAC body + 28 B MAC header + 24 B PLCP must give the Table III
        // byte counts: TCP ACK 112, TCP data 1136.
        let ack = Segment::tcp_ack(FlowId(0), 0).wire_bytes() + 28 + 24;
        let data = Segment::tcp_data(FlowId(0), 0, 1024).wire_bytes() + 28 + 24;
        assert_eq!(ack, 112);
        assert_eq!(data, 1136);
    }

    #[test]
    fn flow_accessor() {
        assert_eq!(Segment::udp(FlowId(7), 0, 10).flow(), FlowId(7));
    }
}
