//! Constant-bit-rate UDP source, sink, and the probe responder used by
//! the fake-ACK detector.

use std::collections::HashSet;

use sim::{SimDuration, SimTime};

use crate::packet::{FlowId, Segment};

/// CBR traffic generator: one fixed-size datagram every `interval`.
///
/// The paper saturates the medium with CBR flows of equal rate so that
/// goodput differences are attributable to MAC-layer effects alone.
///
/// # Examples
///
/// ```
/// use gr_transport::udp::CbrSource;
/// use gr_transport::FlowId;
/// use sim::SimDuration;
///
/// let mut src = CbrSource::new(FlowId(1), 1024, SimDuration::from_millis(1));
/// let seg = src.next_datagram();
/// assert_eq!(src.interval(), SimDuration::from_millis(1));
/// # let _ = seg;
/// ```
#[derive(Debug, Clone)]
pub struct CbrSource {
    flow: FlowId,
    payload: usize,
    interval: SimDuration,
    next_seq: u64,
}

impl CbrSource {
    /// Creates a source emitting `payload`-byte datagrams every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(flow: FlowId, payload: usize, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "CBR interval must be positive");
        CbrSource {
            flow,
            payload,
            interval,
            next_seq: 0,
        }
    }

    /// Creates a source that offers `rate_bps` of *payload* bits per
    /// second using `payload`-byte datagrams.
    pub fn with_rate(flow: FlowId, payload: usize, rate_bps: u64) -> Self {
        let interval = SimDuration::from_nanos(
            (payload as u64 * 8).saturating_mul(1_000_000_000) / rate_bps.max(1),
        );
        Self::new(flow, payload, interval)
    }

    /// The flow identifier.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The inter-datagram interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of datagrams generated so far.
    pub fn generated(&self) -> u64 {
        self.next_seq
    }

    /// Produces the next datagram (call once per tick).
    pub fn next_datagram(&mut self) -> Segment {
        let seq = self.next_seq;
        self.next_seq += 1;
        Segment::udp(self.flow, seq, self.payload)
    }
}

/// Snapshot = the sequence counter only; flow, payload size and interval
/// are configuration the owner rebuilds.
impl snap::SnapState for CbrSource {
    fn snap_save(&self, w: &mut snap::Enc) {
        w.u64(self.next_seq);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        self.next_seq = r.u64()?;
        Ok(())
    }
}

/// UDP sink: counts distinct datagrams (the paper's goodput numerator).
#[derive(Debug, Clone, Default)]
pub struct UdpSink {
    seen: HashSet<u64>,
    /// Distinct datagrams received.
    pub distinct_datagrams: u64,
    /// Wire bytes of those datagrams.
    pub distinct_bytes: u64,
    /// Duplicates received.
    pub duplicates: u64,
    first_rx: Option<SimTime>,
    last_rx: Option<SimTime>,
}

impl UdpSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        UdpSink::default()
    }

    /// Processes one received datagram.
    pub fn on_data(&mut self, now: SimTime, seq: u64, wire_bytes: usize) {
        if self.seen.insert(seq) {
            self.distinct_datagrams += 1;
            self.distinct_bytes += wire_bytes as u64;
            self.first_rx.get_or_insert(now);
            self.last_rx = Some(now);
        } else {
            self.duplicates += 1;
        }
    }

    /// First and last reception instants, if any datagram arrived.
    pub fn rx_span(&self) -> Option<(SimTime, SimTime)> {
        Some((self.first_rx?, self.last_rx?))
    }
}

/// Seen-set entries are serialized sorted so the encoding is
/// `HashSet`-order independent.
impl snap::SnapState for UdpSink {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        seen.save(w);
        w.u64(self.distinct_datagrams);
        w.u64(self.distinct_bytes);
        w.u64(self.duplicates);
        self.first_rx.save(w);
        self.last_rx.save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.seen = Vec::<u64>::load(r)?.into_iter().collect();
        self.distinct_datagrams = r.u64()?;
        self.distinct_bytes = r.u64()?;
        self.duplicates = r.u64()?;
        self.first_rx = Option::<SimTime>::load(r)?;
        self.last_rx = Option::<SimTime>::load(r)?;
        Ok(())
    }
}

/// Probe responder + sender-side loss bookkeeping for the fake-ACK
/// detector (§VII-C): probes that arrive *uncorrupted* are echoed; the
/// sender's application loss rate is `1 − responses/requests`.
#[derive(Debug, Clone, Default)]
pub struct ProbeStats {
    /// Probe requests sent.
    pub sent: u64,
    /// Probe responses received.
    pub echoed: u64,
}

impl ProbeStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        ProbeStats::default()
    }

    /// Application-layer loss rate observed via probing.
    pub fn app_loss(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.echoed as f64 / self.sent as f64
        }
    }
}

impl snap::SnapValue for ProbeStats {
    fn save(&self, w: &mut snap::Enc) {
        w.u64(self.sent);
        w.u64(self.echoed);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(ProbeStats {
            sent: r.u64()?,
            echoed: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_rate_to_interval() {
        // 1024 B at 8.192 Mb/s payload rate → 1 ms interval.
        let src = CbrSource::with_rate(FlowId(0), 1024, 8_192_000);
        assert_eq!(src.interval(), SimDuration::from_millis(1));
    }

    #[test]
    fn cbr_sequences_increment() {
        let mut src = CbrSource::new(FlowId(0), 512, SimDuration::from_millis(2));
        let a = src.next_datagram();
        let b = src.next_datagram();
        match (a, b) {
            (Segment::UdpData { seq: s0, .. }, Segment::UdpData { seq: s1, .. }) => {
                assert_eq!((s0, s1), (0, 1));
            }
            _ => panic!("expected UDP datagrams"),
        }
        assert_eq!(src.generated(), 2);
    }

    #[test]
    fn sink_counts_distinct_only() {
        let mut sink = UdpSink::new();
        sink.on_data(SimTime::from_secs(1), 0, 1052);
        sink.on_data(SimTime::from_secs(2), 0, 1052);
        sink.on_data(SimTime::from_secs(3), 1, 1052);
        assert_eq!(sink.distinct_datagrams, 2);
        assert_eq!(sink.duplicates, 1);
        assert_eq!(sink.distinct_bytes, 2104);
        assert_eq!(
            sink.rx_span(),
            Some((SimTime::from_secs(1), SimTime::from_secs(3)))
        );
    }

    #[test]
    fn probe_loss_rate() {
        let mut p = ProbeStats::new();
        assert_eq!(p.app_loss(), 0.0);
        p.sent = 100;
        p.echoed = 80;
        assert!((p.app_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "CBR interval must be positive")]
    fn zero_interval_panics() {
        let _ = CbrSource::new(FlowId(0), 10, SimDuration::ZERO);
    }
}
