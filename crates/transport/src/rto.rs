//! Retransmission-timeout estimation (RFC 6298 style).

use sim::SimDuration;

/// Smoothed RTT estimator producing the retransmission timeout.
///
/// `SRTT`/`RTTVAR` follow RFC 6298 with the usual gains (α = 1/8,
/// β = 1/4); the RTO is clamped to `[min_rto, max_rto]` and doubles on
/// each consecutive timeout (Karn's backoff), resetting when a fresh
/// sample arrives.
///
/// # Examples
///
/// ```
/// use gr_transport::rto::RtoEstimator;
/// use sim::SimDuration;
///
/// let mut r = RtoEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(60));
/// r.sample(SimDuration::from_millis(10));
/// assert!(r.rto() >= SimDuration::from_millis(200)); // floor applies
/// ```
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff_exp: u32,
}

impl RtoEstimator {
    /// Creates an estimator with the given RTO clamp.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: 0.0,
            min_rto,
            max_rto,
            backoff_exp: 0,
        }
    }

    /// Incorporates an RTT sample (first sample initializes per RFC 6298)
    /// and clears any timeout backoff.
    pub fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        self.backoff_exp = 0;
    }

    /// Doubles the effective RTO after a retransmission timeout.
    pub fn back_off(&mut self) {
        self.backoff_exp = (self.backoff_exp + 1).min(16);
    }

    /// Current smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// The retransmission timeout to arm now.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => SimDuration::from_secs(1), // RFC 6298 initial RTO
            Some(srtt) => SimDuration::from_secs_f64(srtt + (4.0 * self.rttvar).max(0.01)),
        };
        let base = base.max(self.min_rto);
        let backed = base
            .checked_mul(1u64 << self.backoff_exp.min(16))
            .unwrap_or(self.max_rto);
        backed.min(self.max_rto)
    }
}

impl snap::SnapValue for RtoEstimator {
    fn save(&self, w: &mut snap::Enc) {
        self.srtt.save(w);
        w.f64(self.rttvar);
        self.min_rto.save(w);
        self.max_rto.save(w);
        w.u32(self.backoff_exp);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(RtoEstimator {
            srtt: Option::<f64>::load(r)?,
            rttvar: r.f64()?,
            min_rto: SimDuration::load(r)?,
            max_rto: SimDuration::load(r)?,
            backoff_exp: r.u32()?,
        })
    }
}

impl Default for RtoEstimator {
    /// 200 ms floor, 60 s ceiling — the values used throughout the
    /// experiments.
    fn default() -> Self {
        RtoEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let r = RtoEstimator::default();
        assert_eq!(r.rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn floor_applies_to_small_rtts() {
        let mut r = RtoEstimator::default();
        for _ in 0..50 {
            r.sample(SimDuration::from_millis(2));
        }
        assert_eq!(r.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn large_rtts_raise_rto() {
        let mut r = RtoEstimator::default();
        for _ in 0..50 {
            r.sample(SimDuration::from_millis(400));
        }
        assert!(r.rto() >= SimDuration::from_millis(400));
        assert!(r.rto() < SimDuration::from_secs(2));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut r = RtoEstimator::default();
        for _ in 0..10 {
            r.sample(SimDuration::from_millis(100));
        }
        let base = r.rto();
        r.back_off();
        assert_eq!(r.rto(), base * 2);
        r.back_off();
        assert_eq!(r.rto(), base * 4);
        r.sample(SimDuration::from_millis(100));
        assert!(r.rto() <= base + SimDuration::from_millis(20));
    }

    #[test]
    fn rto_capped_at_max() {
        let mut r = RtoEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(5));
        for _ in 0..20 {
            r.back_off();
        }
        assert_eq!(r.rto(), SimDuration::from_secs(5));
    }

    #[test]
    fn srtt_tracks_samples() {
        let mut r = RtoEstimator::default();
        assert!(r.srtt().is_none());
        for _ in 0..100 {
            r.sample(SimDuration::from_millis(50));
        }
        let srtt = r.srtt().unwrap();
        assert!((srtt.as_secs_f64() - 0.05).abs() < 0.005);
    }
}
