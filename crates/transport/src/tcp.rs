//! TCP NewReno sender and receiver (packet-granular, ns-2 style).
//!
//! The sender implements slow start, congestion avoidance, fast
//! retransmit on three duplicate ACKs, NewReno fast recovery (partial
//! ACKs retransmit the next hole without leaving recovery, so a burst of
//! drops costs one RTT per drop instead of a retransmission timeout) and
//! RTO-based recovery with Karn's rule and exponential backoff. The
//! receiver delivers in order, buffers out-of-order segments, and emits
//! an immediate cumulative ACK for every data segment (no delayed ACKs,
//! matching the paper's ns-2 setup).
//!
//! Sequence numbers count *segments*, not bytes. The flow is assumed
//! infinite (always more data to send), as in the paper's long-lived FTP
//! transfers.

use std::collections::{BTreeSet, HashMap};

use sim::{SimDuration, SimTime, TimeWeightedMean};

use crate::packet::{FlowId, Segment};
use crate::rto::RtoEstimator;

/// Configuration of a TCP connection.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Payload bytes per data segment (the paper's 1024).
    pub mss: usize,
    /// Receiver-advertised window cap, in segments.
    pub max_window: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Floor of the retransmission timeout.
    pub min_rto: SimDuration,
    /// Ceiling of the retransmission timeout.
    pub max_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        // The window cap equals the MAC interface-queue capacity (50) so a
        // single flow cannot overflow its own queue — matching the paper's
        // setup, where Table II's congestion windows plateau just below 50.
        TcpConfig {
            mss: 1024,
            max_window: 50.0,
            initial_ssthresh: 50.0,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
        }
    }
}

/// Outputs a TCP endpoint hands to the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOutput {
    /// Transmit this segment toward the peer.
    Send(Segment),
    /// (Re)arm the retransmission timer after this delay, replacing any
    /// previously armed timer.
    ArmTimer(SimDuration),
    /// Cancel the retransmission timer (no data outstanding).
    CancelTimer,
}

/// TCP Reno sender with an infinite backlog.
///
/// # Examples
///
/// ```
/// use gr_transport::tcp::{TcpSender, TcpConfig, TcpOutput};
/// use sim::SimTime;
///
/// let mut s = TcpSender::new(gr_transport::FlowId(0), TcpConfig::default());
/// let out = s.start(SimTime::ZERO);
/// // Initial window: one segment plus the armed timer.
/// assert!(matches!(out[0], TcpOutput::Send(_)));
/// ```
#[derive(Debug)]
pub struct TcpSender {
    flow: FlowId,
    cfg: TcpConfig,
    next_seq: u64,
    snd_una: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    /// Highest sequence outstanding when fast recovery began; recovery
    /// ends only once everything up to here is acknowledged (NewReno).
    recover: u64,
    rto: RtoEstimator,
    send_times: HashMap<u64, SimTime>,
    timer_armed: bool,
    /// Retransmissions performed (fast + timeout), for the cross-layer
    /// spoof detector and experiment reporting.
    pub retransmissions: u64,
    /// Timeout events.
    pub timeouts: u64,
    cwnd_timeline: TimeWeightedMean,
    /// Flight recorder and the station id hosting this sender, if this
    /// run records (see [`TcpSender::set_recorder`]).
    recorder: Option<(::obs::RecorderHandle, u16)>,
}

impl TcpSender {
    /// Creates a sender for `flow`.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        let mut cwnd_timeline = TimeWeightedMean::new();
        cwnd_timeline.set(SimTime::ZERO, 1.0);
        TcpSender {
            flow,
            next_seq: 0,
            snd_una: 0,
            cwnd: 1.0,
            ssthresh: cfg.initial_ssthresh,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            rto: RtoEstimator::new(cfg.min_rto, cfg.max_rto),
            send_times: HashMap::new(),
            timer_armed: false,
            retransmissions: 0,
            timeouts: 0,
            cwnd_timeline,
            recorder: None,
            cfg,
        }
    }

    /// Installs a flight recorder; `node` is the station the sender runs
    /// on (transport events are attributed to it). Instrumentation sites
    /// are no-ops until this is called.
    pub fn set_recorder(&mut self, recorder: ::obs::RecorderHandle, node: u16) {
        self.recorder = Some((recorder, node));
    }

    fn obs_emit(&self, at: SimTime, kind: &'static ::obs::EventKind, vals: &[f64]) {
        if let Some((rec, node)) = &self.recorder {
            rec.borrow_mut().emit(at, *node, kind, vals);
        }
    }

    /// The flow identifier.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold in segments.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Segments in flight.
    pub fn flight_size(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    /// Time-weighted average congestion window over `[0, end]`
    /// (paper Table II).
    pub fn avg_cwnd(&self, end: SimTime) -> Option<f64> {
        self.cwnd_timeline.finish(end)
    }

    fn effective_window(&self) -> u64 {
        self.cwnd.min(self.cfg.max_window).floor().max(1.0) as u64
    }

    fn record_cwnd(&mut self, now: SimTime) {
        self.cwnd_timeline
            .set(now, self.cwnd.min(self.cfg.max_window));
        self.obs_emit(
            now,
            &crate::obs::CWND,
            &[
                self.flow.0 as f64,
                self.cwnd,
                self.ssthresh,
                self.flight_size() as f64,
            ],
        );
    }

    fn fill_window(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.next_seq < self.snd_una + self.effective_window() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.send_times.insert(seq, now);
            out.push(TcpOutput::Send(Segment::tcp_data(
                self.flow,
                seq,
                self.cfg.mss,
            )));
        }
    }

    fn manage_timer(&mut self, out: &mut Vec<TcpOutput>) {
        if self.snd_una < self.next_seq {
            out.push(TcpOutput::ArmTimer(self.rto.rto()));
            self.timer_armed = true;
        } else if self.timer_armed {
            out.push(TcpOutput::CancelTimer);
            self.timer_armed = false;
        }
    }

    /// Opens the connection: sends the initial window.
    pub fn start(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.fill_window(now, &mut out);
        self.manage_timer(&mut out);
        out
    }

    /// Handles a cumulative ACK (`ack` = peer's next expected sequence).
    pub fn on_ack(&mut self, now: SimTime, ack: u64) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if ack > self.next_seq {
            // Corrupt/duplicate future ACK; ignore defensively.
            return out;
        }
        if ack > self.snd_una {
            // New data acknowledged.
            if let Some(sent_at) = self.send_times.remove(&(ack - 1)) {
                let rtt = now.saturating_since(sent_at);
                self.rto.sample(rtt);
                if let Some((rec, _)) = &self.recorder {
                    rec.borrow_mut()
                        .record_hist(crate::obs::HIST_RTT_US, rtt.as_micros() as f64);
                }
            }
            for seq in self.snd_una..ack {
                self.send_times.remove(&seq);
            }
            let newly_acked = (ack - self.snd_una) as f64;
            self.snd_una = ack;
            self.dupacks = 0;
            if self.in_recovery {
                if ack > self.recover {
                    // Full ACK: leave fast recovery.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: the next hole is lost too —
                    // retransmit it immediately, deflate the window by
                    // the amount acknowledged, stay in recovery.
                    self.retransmissions += 1;
                    self.send_times.remove(&ack); // Karn
                    self.cwnd = (self.cwnd - newly_acked + 1.0).max(1.0);
                    self.obs_emit(
                        now,
                        &crate::obs::RETX_PARTIAL,
                        &[self.flow.0 as f64, ack as f64],
                    );
                    out.push(TcpOutput::Send(Segment::tcp_data(
                        self.flow,
                        ack,
                        self.cfg.mss,
                    )));
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start
            } else {
                self.cwnd += 1.0 / self.cwnd; // congestion avoidance
            }
            self.record_cwnd(now);
            self.fill_window(now, &mut out);
            self.manage_timer(&mut out);
        } else if ack == self.snd_una && self.flight_size() > 0 {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.in_recovery {
                // Window inflation keeps the pipe full.
                self.cwnd += 1.0;
                self.record_cwnd(now);
                self.fill_window(now, &mut out);
            } else if self.dupacks == 3 {
                // Fast retransmit + fast recovery.
                self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.in_recovery = true;
                self.recover = self.next_seq.saturating_sub(1);
                self.retransmissions += 1;
                self.send_times.remove(&self.snd_una); // Karn
                self.record_cwnd(now);
                self.obs_emit(
                    now,
                    &crate::obs::RETX_FAST,
                    &[self.flow.0 as f64, self.snd_una as f64],
                );
                out.push(TcpOutput::Send(Segment::tcp_data(
                    self.flow,
                    self.snd_una,
                    self.cfg.mss,
                )));
                out.push(TcpOutput::ArmTimer(self.rto.rto()));
                self.timer_armed = true;
            }
        }
        out
    }

    /// Handles a retransmission-timer expiry.
    pub fn on_timeout(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if self.snd_una >= self.next_seq {
            return out; // nothing outstanding; stale timer
        }
        self.timeouts += 1;
        self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dupacks = 0;
        self.in_recovery = false;
        self.recover = self.next_seq.saturating_sub(1);
        self.rto.back_off();
        self.retransmissions += 1;
        self.send_times.remove(&self.snd_una); // Karn
        self.record_cwnd(now);
        if self.recorder.is_some() {
            self.obs_emit(
                now,
                &crate::obs::RTO_TIMEOUT,
                &[
                    self.flow.0 as f64,
                    self.rto.rto().as_micros() as f64,
                    self.timeouts as f64,
                ],
            );
            self.obs_emit(
                now,
                &crate::obs::RETX_TIMEOUT,
                &[self.flow.0 as f64, self.snd_una as f64],
            );
        }
        out.push(TcpOutput::Send(Segment::tcp_data(
            self.flow,
            self.snd_una,
            self.cfg.mss,
        )));
        out.push(TcpOutput::ArmTimer(self.rto.rto()));
        self.timer_armed = true;
        out
    }
}

/// Snapshot = congestion/retransmission state in declaration order. The
/// flow id and [`TcpConfig`] are configuration the owner rebuilds; the
/// recorder re-attaches separately. Send times are serialized sorted by
/// sequence number so the encoding is `HashMap`-order independent.
impl snap::SnapState for TcpSender {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        w.u64(self.next_seq);
        w.u64(self.snd_una);
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        w.u32(self.dupacks);
        w.bool(self.in_recovery);
        w.u64(self.recover);
        self.rto.save(w);
        let mut times: Vec<(u64, SimTime)> =
            self.send_times.iter().map(|(&k, &v)| (k, v)).collect();
        times.sort_unstable_by_key(|&(seq, _)| seq);
        times.save(w);
        w.bool(self.timer_armed);
        w.u64(self.retransmissions);
        w.u64(self.timeouts);
        self.cwnd_timeline.save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.next_seq = r.u64()?;
        self.snd_una = r.u64()?;
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        self.dupacks = r.u32()?;
        self.in_recovery = r.bool()?;
        self.recover = r.u64()?;
        self.rto = RtoEstimator::load(r)?;
        self.send_times = Vec::<(u64, SimTime)>::load(r)?.into_iter().collect();
        self.timer_armed = r.bool()?;
        self.retransmissions = r.u64()?;
        self.timeouts = r.u64()?;
        self.cwnd_timeline = TimeWeightedMean::load(r)?;
        Ok(())
    }
}

/// TCP receiver: in-order delivery with out-of-order buffering and an
/// immediate cumulative ACK per data segment.
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    expected: u64,
    buffer: BTreeSet<u64>,
    /// Distinct data segments received (first copies) — the paper's
    /// goodput numerator.
    pub distinct_segments: u64,
    /// Bytes of those segments (wire bytes).
    pub distinct_bytes: u64,
    /// Duplicate data segments received.
    pub duplicates: u64,
}

impl TcpReceiver {
    /// Creates a receiver for `flow`.
    pub fn new(flow: FlowId) -> Self {
        TcpReceiver {
            flow,
            expected: 0,
            buffer: BTreeSet::new(),
            distinct_segments: 0,
            distinct_bytes: 0,
            duplicates: 0,
        }
    }

    /// The flow identifier.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Processes an arriving data segment, returning the ACK to send.
    pub fn on_data(&mut self, seq: u64, wire_bytes: usize) -> Segment {
        let is_new = seq >= self.expected && !self.buffer.contains(&seq);
        if is_new {
            self.distinct_segments += 1;
            self.distinct_bytes += wire_bytes as u64;
            if seq == self.expected {
                self.expected += 1;
                while self.buffer.remove(&self.expected) {
                    self.expected += 1;
                }
            } else {
                self.buffer.insert(seq);
            }
        } else {
            self.duplicates += 1;
        }
        Segment::tcp_ack(self.flow, self.expected)
    }
}

/// Snapshot = reassembly state and goodput counters; the flow id is
/// configuration. `BTreeSet` iterates sorted, so the encoding is
/// canonical as-is.
impl snap::SnapState for TcpReceiver {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        w.u64(self.expected);
        let buffered: Vec<u64> = self.buffer.iter().copied().collect();
        buffered.save(w);
        w.u64(self.distinct_segments);
        w.u64(self.distinct_bytes);
        w.u64(self.duplicates);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.expected = r.u64()?;
        self.buffer = Vec::<u64>::load(r)?.into_iter().collect();
        self.distinct_segments = r.u64()?;
        self.distinct_bytes = r.u64()?;
        self.duplicates = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sends(out: &[TcpOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TcpOutput::Send(Segment::TcpData { seq, .. }) => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_sends_initial_window_of_one() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        let out = s.start(SimTime::ZERO);
        assert_eq!(sends(&out), vec![0]);
        assert!(out.iter().any(|o| matches!(o, TcpOutput::ArmTimer(_))));
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        // ACK seq 0 → cwnd 2, sends 2 more.
        let out = s.on_ack(SimTime::from_millis(10), 1);
        assert_eq!(sends(&out), vec![1, 2]);
        assert_eq!(s.cwnd(), 2.0);
        let out = s.on_ack(SimTime::from_millis(20), 2);
        assert_eq!(sends(&out), vec![3, 4]);
        assert_eq!(s.cwnd(), 3.0);
    }

    #[test]
    fn congestion_avoidance_grows_slowly() {
        let cfg = TcpConfig {
            initial_ssthresh: 2.0,
            ..TcpConfig::default()
        };
        let mut s = TcpSender::new(FlowId(0), cfg);
        s.start(SimTime::ZERO);
        s.on_ack(SimTime::from_millis(10), 1); // cwnd 2 = ssthresh
        let cwnd_before = s.cwnd();
        s.on_ack(SimTime::from_millis(20), 2);
        assert!((s.cwnd() - (cwnd_before + 1.0 / cwnd_before)).abs() < 1e-9);
    }

    #[test]
    fn fast_retransmit_on_three_dupacks() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        // Grow the window a bit.
        for i in 1..=6 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        let flight = s.flight_size();
        assert!(flight >= 4, "need enough in flight, got {flight}");
        // Three dup ACKs for seq 6.
        s.on_ack(SimTime::from_millis(100), 6);
        s.on_ack(SimTime::from_millis(101), 6);
        let out = s.on_ack(SimTime::from_millis(102), 6);
        assert_eq!(sends(&out), vec![6], "fast retransmit of snd_una");
        assert_eq!(s.retransmissions, 1);
        assert!((s.ssthresh() - (flight as f64 / 2.0).max(2.0)).abs() < 1e-9);
        // Full ACK (covering everything outstanding at entry) exits
        // recovery with cwnd = ssthresh.
        let full = s.recover + 1;
        s.on_ack(SimTime::from_millis(110), full);
        assert!(!s.in_recovery);
        assert!((s.cwnd() - s.ssthresh()).abs() < 1e-9);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        for i in 1..=6 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        // Two holes: 6 and 8 lost. Dup ACKs for 6 trigger recovery.
        s.on_ack(SimTime::from_millis(100), 6);
        s.on_ack(SimTime::from_millis(101), 6);
        let out = s.on_ack(SimTime::from_millis(102), 6);
        assert_eq!(sends(&out), vec![6]);
        let recover = s.recover;
        // Partial ACK up to 8 (6..7 repaired, 8 still missing):
        // NewReno retransmits 8 immediately, stays in recovery.
        let out = s.on_ack(SimTime::from_millis(110), 8);
        assert!(sends(&out).contains(&8), "next hole must be retransmitted");
        assert!(s.in_recovery);
        assert_eq!(s.retransmissions, 2);
        // Full ACK ends recovery.
        s.on_ack(SimTime::from_millis(120), recover + 1);
        assert!(!s.in_recovery);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        for i in 1..=6 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        let out = s.on_timeout(SimTime::from_secs(2));
        assert_eq!(sends(&out), vec![6]);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.timeouts, 1);
        // A second timeout doubles the RTO (backoff) — the re-armed timer
        // must be at least as long.
        let rto1 = match out.last() {
            Some(TcpOutput::ArmTimer(d)) => *d,
            _ => panic!("timer must be re-armed"),
        };
        let out2 = s.on_timeout(SimTime::from_secs(4));
        let rto2 = match out2.last() {
            Some(TcpOutput::ArmTimer(d)) => *d,
            _ => panic!("timer must be re-armed"),
        };
        assert!(rto2 >= rto1 * 2 - SimDuration::from_millis(1));
    }

    #[test]
    fn stale_timeout_with_nothing_outstanding_is_ignored() {
        // Before `start` nothing is in flight; a stray timer is a no-op.
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        assert_eq!(s.flight_size(), 0);
        assert!(s.on_timeout(SimTime::from_secs(1)).is_empty());
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn infinite_backlog_keeps_pipe_full() {
        // With an infinite source, acking everything immediately refills
        // the window, so flight never drains to zero after start.
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        s.on_ack(SimTime::from_millis(5), 1);
        let next = s.next_seq;
        s.on_ack(SimTime::from_millis(6), next);
        assert!(s.flight_size() > 0);
    }

    #[test]
    fn window_respects_receiver_cap() {
        let cfg = TcpConfig {
            max_window: 4.0,
            ..TcpConfig::default()
        };
        let mut s = TcpSender::new(FlowId(0), cfg);
        s.start(SimTime::ZERO);
        for i in 1..=20 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        assert!(s.flight_size() <= 4);
    }

    #[test]
    fn receiver_acks_cumulatively_and_buffers_ooo() {
        let mut r = TcpReceiver::new(FlowId(0));
        assert_eq!(r.on_data(0, 1078), Segment::tcp_ack(FlowId(0), 1));
        // Gap: 2 arrives before 1 → dup ack 1, buffered.
        assert_eq!(r.on_data(2, 1078), Segment::tcp_ack(FlowId(0), 1));
        // 1 fills the hole → ack jumps to 3.
        assert_eq!(r.on_data(1, 1078), Segment::tcp_ack(FlowId(0), 3));
        assert_eq!(r.distinct_segments, 3);
        assert_eq!(r.duplicates, 0);
    }

    #[test]
    fn receiver_counts_duplicates_once() {
        let mut r = TcpReceiver::new(FlowId(0));
        r.on_data(0, 1078);
        r.on_data(0, 1078);
        assert_eq!(r.distinct_segments, 1);
        assert_eq!(r.duplicates, 1);
        // Old (already delivered) segment is also a duplicate.
        r.on_data(5, 1078);
        r.on_data(5, 1078);
        assert_eq!(r.duplicates, 2);
    }

    #[test]
    fn avg_cwnd_is_time_weighted() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        s.on_ack(SimTime::from_secs(1), 1); // cwnd 1 for 1 s, then 2
        let avg = s.avg_cwnd(SimTime::from_secs(2)).unwrap();
        assert!((avg - 1.5).abs() < 1e-9, "avg={avg}");
    }

    #[test]
    fn sender_snapshot_round_trips_mid_recovery() {
        use snap::{Dec, Enc, SnapState};
        let mut a = TcpSender::new(FlowId(3), TcpConfig::default());
        a.start(SimTime::ZERO);
        for i in 1..=6 {
            a.on_ack(SimTime::from_millis(i * 10), i);
        }
        // Three dup ACKs put the sender in fast recovery mid-snapshot.
        a.on_ack(SimTime::from_millis(100), 6);
        a.on_ack(SimTime::from_millis(101), 6);
        a.on_ack(SimTime::from_millis(102), 6);
        assert!(a.in_recovery);
        let mut w = Enc::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut b = TcpSender::new(FlowId(3), TcpConfig::default());
        b.snap_restore(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(a.snap_digest(), b.snap_digest());
        // Both react identically to a partial ACK and a later timeout.
        let (xa, xb) = (
            a.on_ack(SimTime::from_millis(110), 8),
            b.on_ack(SimTime::from_millis(110), 8),
        );
        assert_eq!(xa, xb);
        let (xa, xb) = (
            a.on_timeout(SimTime::from_secs(2)),
            b.on_timeout(SimTime::from_secs(2)),
        );
        assert_eq!(xa, xb);
        assert_eq!(a.cwnd(), b.cwnd());
        assert_eq!(a.retransmissions, b.retransmissions);
    }

    #[test]
    fn future_ack_ignored() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        assert!(s.on_ack(SimTime::from_millis(1), 999).is_empty());
        assert_eq!(s.snd_una, 0);
    }
}
