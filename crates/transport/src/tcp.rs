//! TCP sender and receiver (packet-granular, ns-2 style) with pluggable
//! congestion control.
//!
//! The sender owns loss *detection*: fast retransmit on three duplicate
//! ACKs, NewReno fast recovery (partial ACKs retransmit the next hole
//! without leaving recovery, so a burst of drops costs one RTT per drop
//! instead of a retransmission timeout) and RTO-based recovery with
//! Karn's rule and exponential backoff. Every congestion-window
//! *decision* is delegated to the [`cc::CongestionController`] selected
//! by [`TcpConfig::cc`] — NewReno (the paper's baseline, byte-identical
//! to the formerly-inlined arithmetic), CUBIC, BBR, or NewReno/CUBIC
//! with HyStart. The receiver delivers in order, buffers out-of-order
//! segments, and emits an immediate cumulative ACK for every data
//! segment (no delayed ACKs, matching the paper's ns-2 setup).
//!
//! Sequence numbers count *segments*, not bytes. The flow is assumed
//! infinite (always more data to send), as in the paper's long-lived FTP
//! transfers.

use std::collections::{BTreeSet, HashMap};

use sim::{SimDuration, SimTime, TimeWeightedMean};

use crate::cc::{AckSample, Cc, CcConfig, CcObs, CongestionController, RttEstimator};
use crate::packet::{FlowId, Segment};
use crate::rto::RtoEstimator;

/// Configuration of a TCP connection.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Payload bytes per data segment (the paper's 1024).
    pub mss: usize,
    /// Receiver-advertised window cap, in segments.
    pub max_window: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Floor of the retransmission timeout.
    pub min_rto: SimDuration,
    /// Ceiling of the retransmission timeout.
    pub max_rto: SimDuration,
    /// Congestion-control algorithm (NewReno by default).
    pub cc: CcConfig,
}

impl Default for TcpConfig {
    fn default() -> Self {
        // The window cap equals the MAC interface-queue capacity (50) so a
        // single flow cannot overflow its own queue — matching the paper's
        // setup, where Table II's congestion windows plateau just below 50.
        TcpConfig {
            mss: 1024,
            max_window: 50.0,
            initial_ssthresh: 50.0,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            cc: CcConfig::default(),
        }
    }
}

/// Per-segment bookkeeping at send time: when it left and what the
/// cumulative delivered count (`snd_una`) was — the pair BBR turns into
/// a delivery-rate sample when the segment is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SendStamp {
    at: SimTime,
    delivered: u64,
}

/// Outputs a TCP endpoint hands to the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOutput {
    /// Transmit this segment toward the peer.
    Send(Segment),
    /// (Re)arm the retransmission timer after this delay, replacing any
    /// previously armed timer.
    ArmTimer(SimDuration),
    /// Cancel the retransmission timer (no data outstanding).
    CancelTimer,
}

/// TCP Reno sender with an infinite backlog.
///
/// # Examples
///
/// ```
/// use gr_transport::tcp::{TcpSender, TcpConfig, TcpOutput};
/// use sim::SimTime;
///
/// let mut s = TcpSender::new(gr_transport::FlowId(0), TcpConfig::default());
/// let out = s.start(SimTime::ZERO);
/// // Initial window: one segment plus the armed timer.
/// assert!(matches!(out[0], TcpOutput::Send(_)));
/// ```
#[derive(Debug)]
pub struct TcpSender {
    flow: FlowId,
    cfg: TcpConfig,
    next_seq: u64,
    snd_una: u64,
    cc: Cc,
    rtt: RttEstimator,
    dupacks: u32,
    in_recovery: bool,
    /// Highest sequence outstanding when fast recovery began; recovery
    /// ends only once everything up to here is acknowledged (NewReno).
    recover: u64,
    rto: RtoEstimator,
    send_times: HashMap<u64, SendStamp>,
    timer_armed: bool,
    /// Retransmissions performed (fast + timeout), for the cross-layer
    /// spoof detector and experiment reporting.
    pub retransmissions: u64,
    /// Timeout events.
    pub timeouts: u64,
    cwnd_timeline: TimeWeightedMean,
    /// Flight recorder and the station id hosting this sender, if this
    /// run records (see [`TcpSender::set_recorder`]).
    recorder: Option<(::obs::RecorderHandle, u16)>,
    /// Scratch buffer the controller's observability records drain into
    /// (always drained, emitted only when a recorder is attached).
    cc_obs: Vec<CcObs>,
}

impl TcpSender {
    /// Creates a sender for `flow`.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        let cc = Cc::new(cfg.cc, cfg.initial_ssthresh, cfg.max_window);
        let mut cwnd_timeline = TimeWeightedMean::new();
        cwnd_timeline.set(SimTime::ZERO, cc.cwnd().min(cfg.max_window));
        TcpSender {
            flow,
            next_seq: 0,
            snd_una: 0,
            cc,
            rtt: RttEstimator::new(),
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            rto: RtoEstimator::new(cfg.min_rto, cfg.max_rto),
            send_times: HashMap::new(),
            timer_armed: false,
            retransmissions: 0,
            timeouts: 0,
            cwnd_timeline,
            recorder: None,
            cc_obs: Vec::new(),
            cfg,
        }
    }

    /// Installs a flight recorder; `node` is the station the sender runs
    /// on (transport events are attributed to it). Instrumentation sites
    /// are no-ops until this is called.
    pub fn set_recorder(&mut self, recorder: ::obs::RecorderHandle, node: u16) {
        self.recorder = Some((recorder, node));
    }

    fn obs_emit(&self, at: SimTime, kind: &'static ::obs::EventKind, vals: &[f64]) {
        if let Some((rec, node)) = &self.recorder {
            rec.borrow_mut().emit(at, *node, kind, vals);
        }
    }

    /// The flow identifier.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Current slow-start threshold in segments (model-based controllers
    /// report the receiver window cap).
    pub fn ssthresh(&self) -> f64 {
        self.cc.ssthresh()
    }

    /// The congestion controller configured for this sender.
    pub fn cc_config(&self) -> CcConfig {
        self.cfg.cc
    }

    /// The shared passive RTT estimator (smoothed/min RTT).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Segments in flight.
    pub fn flight_size(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    /// Time-weighted average congestion window over `[0, end]`
    /// (paper Table II).
    pub fn avg_cwnd(&self, end: SimTime) -> Option<f64> {
        self.cwnd_timeline.finish(end)
    }

    fn effective_window(&self) -> u64 {
        self.cc.cwnd().min(self.cfg.max_window).floor().max(1.0) as u64
    }

    fn record_cwnd(&mut self, now: SimTime) {
        self.cwnd_timeline
            .set(now, self.cc.cwnd().min(self.cfg.max_window));
        self.obs_emit(
            now,
            &crate::obs::CWND,
            &[
                self.flow.0 as f64,
                self.cc.cwnd(),
                self.cc.ssthresh(),
                self.flight_size() as f64,
            ],
        );
        self.drain_cc_obs(now);
    }

    /// Drains the controller's queued observability records. Always
    /// drains (bounded memory whether or not this run records); emits
    /// only when a recorder is attached. NewReno queues nothing, so the
    /// default path performs no work here.
    fn drain_cc_obs(&mut self, now: SimTime) {
        let mut queue = std::mem::take(&mut self.cc_obs);
        self.cc.take_obs(&mut queue);
        if self.recorder.is_some() {
            let flow = self.flow.0 as f64;
            for rec in &queue {
                match *rec {
                    CcObs::State {
                        state,
                        pacing_gain,
                        btl_bw_sps,
                        min_rtt_us,
                    } => self.obs_emit(
                        now,
                        &crate::obs::CC_STATE,
                        &[flow, state as f64, pacing_gain, btl_bw_sps, min_rtt_us],
                    ),
                    CcObs::Pacing { pacing_sps } => {
                        self.obs_emit(now, &crate::obs::CC_PACING, &[flow, pacing_sps])
                    }
                    CcObs::SsExit { cwnd } => {
                        self.obs_emit(now, &crate::obs::CC_SS_EXIT, &[flow, cwnd])
                    }
                }
            }
        }
        queue.clear();
        self.cc_obs = queue;
    }

    fn fill_window(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.next_seq < self.snd_una + self.effective_window() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.send_times.insert(
                seq,
                SendStamp {
                    at: now,
                    delivered: self.snd_una,
                },
            );
            self.cc.on_send(now, seq);
            out.push(TcpOutput::Send(Segment::tcp_data(
                self.flow,
                seq,
                self.cfg.mss,
            )));
        }
    }

    fn manage_timer(&mut self, out: &mut Vec<TcpOutput>) {
        if self.snd_una < self.next_seq {
            out.push(TcpOutput::ArmTimer(self.rto.rto()));
            self.timer_armed = true;
        } else if self.timer_armed {
            out.push(TcpOutput::CancelTimer);
            self.timer_armed = false;
        }
    }

    /// Opens the connection: sends the initial window.
    pub fn start(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.fill_window(now, &mut out);
        self.manage_timer(&mut out);
        out
    }

    /// Handles a cumulative ACK (`ack` = peer's next expected sequence).
    pub fn on_ack(&mut self, now: SimTime, ack: u64) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if ack > self.next_seq {
            // Corrupt/duplicate future ACK; ignore defensively.
            return out;
        }
        if ack > self.snd_una {
            // New data acknowledged.
            let mut stamp_info = None;
            if let Some(stamp) = self.send_times.remove(&(ack - 1)) {
                // Karn-valid sample: the newest acked segment was never
                // retransmitted (retransmission removes its stamp).
                let rtt = now.saturating_since(stamp.at);
                self.rto.sample(rtt);
                self.rtt.sample(now, rtt);
                stamp_info = Some(stamp);
                if let Some((rec, _)) = &self.recorder {
                    rec.borrow_mut()
                        .record_hist(crate::obs::HIST_RTT_US, rtt.as_micros() as f64);
                }
            }
            for seq in self.snd_una..ack {
                self.send_times.remove(&seq);
            }
            let newly_acked = (ack - self.snd_una) as f64;
            self.snd_una = ack;
            self.dupacks = 0;
            let sample = AckSample {
                now,
                newly_acked,
                flight: self.next_seq - self.snd_una,
                delivered: self.snd_una,
                delivered_at_send: stamp_info.map(|s| s.delivered),
                sent_at: stamp_info.map(|s| s.at),
                rtt: &self.rtt,
            };
            if self.in_recovery {
                self.cc.on_ack_in_recovery(&sample);
                if ack > self.recover {
                    // Full ACK: leave fast recovery.
                    self.in_recovery = false;
                    self.cc.on_recovery_exit(now);
                } else {
                    // NewReno partial ACK: the next hole is lost too —
                    // retransmit it immediately, let the controller
                    // deflate by the amount acknowledged, stay in
                    // recovery.
                    self.retransmissions += 1;
                    self.send_times.remove(&ack); // Karn
                    self.cc.on_partial_ack(now, newly_acked);
                    self.obs_emit(
                        now,
                        &crate::obs::RETX_PARTIAL,
                        &[self.flow.0 as f64, ack as f64],
                    );
                    out.push(TcpOutput::Send(Segment::tcp_data(
                        self.flow,
                        ack,
                        self.cfg.mss,
                    )));
                }
            } else {
                self.cc.on_ack(&sample);
            }
            self.record_cwnd(now);
            self.fill_window(now, &mut out);
            self.manage_timer(&mut out);
        } else if ack == self.snd_una && self.flight_size() > 0 {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.in_recovery {
                // Controller-side window inflation keeps the pipe full.
                self.cc.on_dup_ack(now);
                self.record_cwnd(now);
                self.fill_window(now, &mut out);
            } else if self.dupacks == 3 {
                // Fast retransmit + fast recovery.
                self.cc.on_loss(now, self.flight_size());
                self.in_recovery = true;
                self.recover = self.next_seq.saturating_sub(1);
                self.retransmissions += 1;
                self.send_times.remove(&self.snd_una); // Karn
                self.record_cwnd(now);
                self.obs_emit(
                    now,
                    &crate::obs::RETX_FAST,
                    &[self.flow.0 as f64, self.snd_una as f64],
                );
                out.push(TcpOutput::Send(Segment::tcp_data(
                    self.flow,
                    self.snd_una,
                    self.cfg.mss,
                )));
                out.push(TcpOutput::ArmTimer(self.rto.rto()));
                self.timer_armed = true;
            }
        }
        out
    }

    /// Handles a retransmission-timer expiry.
    pub fn on_timeout(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if self.snd_una >= self.next_seq {
            return out; // nothing outstanding; stale timer
        }
        self.timeouts += 1;
        self.cc.on_rto(now, self.flight_size());
        self.dupacks = 0;
        self.in_recovery = false;
        self.recover = self.next_seq.saturating_sub(1);
        self.rto.back_off();
        self.retransmissions += 1;
        self.send_times.remove(&self.snd_una); // Karn
        self.record_cwnd(now);
        if self.recorder.is_some() {
            self.obs_emit(
                now,
                &crate::obs::RTO_TIMEOUT,
                &[
                    self.flow.0 as f64,
                    self.rto.rto().as_micros() as f64,
                    self.timeouts as f64,
                ],
            );
            self.obs_emit(
                now,
                &crate::obs::RETX_TIMEOUT,
                &[self.flow.0 as f64, self.snd_una as f64],
            );
        }
        out.push(TcpOutput::Send(Segment::tcp_data(
            self.flow,
            self.snd_una,
            self.cfg.mss,
        )));
        out.push(TcpOutput::ArmTimer(self.rto.rto()));
        self.timer_armed = true;
        out
    }
}

/// Snapshot = congestion/retransmission state in declaration order. The
/// flow id and [`TcpConfig`] are configuration the owner rebuilds; the
/// recorder re-attaches separately. Send times are serialized sorted by
/// sequence number so the encoding is `HashMap`-order independent.
impl snap::SnapState for TcpSender {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        w.u64(self.next_seq);
        w.u64(self.snd_una);
        self.cc.snap_save(w);
        self.rtt.save(w);
        w.u32(self.dupacks);
        w.bool(self.in_recovery);
        w.u64(self.recover);
        self.rto.save(w);
        let mut times: Vec<(u64, SimTime, u64)> = self
            .send_times
            .iter()
            .map(|(&k, &v)| (k, v.at, v.delivered))
            .collect();
        times.sort_unstable_by_key(|&(seq, _, _)| seq);
        times.save(w);
        w.bool(self.timer_armed);
        w.u64(self.retransmissions);
        w.u64(self.timeouts);
        self.cwnd_timeline.save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.next_seq = r.u64()?;
        self.snd_una = r.u64()?;
        self.cc.snap_restore(r)?;
        self.rtt = RttEstimator::load(r)?;
        self.dupacks = r.u32()?;
        self.in_recovery = r.bool()?;
        self.recover = r.u64()?;
        self.rto = RtoEstimator::load(r)?;
        self.send_times = Vec::<(u64, SimTime, u64)>::load(r)?
            .into_iter()
            .map(|(seq, at, delivered)| (seq, SendStamp { at, delivered }))
            .collect();
        self.timer_armed = r.bool()?;
        self.retransmissions = r.u64()?;
        self.timeouts = r.u64()?;
        self.cwnd_timeline = TimeWeightedMean::load(r)?;
        Ok(())
    }
}

/// TCP receiver: in-order delivery with out-of-order buffering and an
/// immediate cumulative ACK per data segment.
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    expected: u64,
    buffer: BTreeSet<u64>,
    /// Distinct data segments received (first copies) — the paper's
    /// goodput numerator.
    pub distinct_segments: u64,
    /// Bytes of those segments (wire bytes).
    pub distinct_bytes: u64,
    /// Duplicate data segments received.
    pub duplicates: u64,
}

impl TcpReceiver {
    /// Creates a receiver for `flow`.
    pub fn new(flow: FlowId) -> Self {
        TcpReceiver {
            flow,
            expected: 0,
            buffer: BTreeSet::new(),
            distinct_segments: 0,
            distinct_bytes: 0,
            duplicates: 0,
        }
    }

    /// The flow identifier.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Processes an arriving data segment, returning the ACK to send.
    pub fn on_data(&mut self, seq: u64, wire_bytes: usize) -> Segment {
        let is_new = seq >= self.expected && !self.buffer.contains(&seq);
        if is_new {
            self.distinct_segments += 1;
            self.distinct_bytes += wire_bytes as u64;
            if seq == self.expected {
                self.expected += 1;
                while self.buffer.remove(&self.expected) {
                    self.expected += 1;
                }
            } else {
                self.buffer.insert(seq);
            }
        } else {
            self.duplicates += 1;
        }
        Segment::tcp_ack(self.flow, self.expected)
    }
}

/// Snapshot = reassembly state and goodput counters; the flow id is
/// configuration. `BTreeSet` iterates sorted, so the encoding is
/// canonical as-is.
impl snap::SnapState for TcpReceiver {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        w.u64(self.expected);
        let buffered: Vec<u64> = self.buffer.iter().copied().collect();
        buffered.save(w);
        w.u64(self.distinct_segments);
        w.u64(self.distinct_bytes);
        w.u64(self.duplicates);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.expected = r.u64()?;
        self.buffer = Vec::<u64>::load(r)?.into_iter().collect();
        self.distinct_segments = r.u64()?;
        self.distinct_bytes = r.u64()?;
        self.duplicates = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sends(out: &[TcpOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TcpOutput::Send(Segment::TcpData { seq, .. }) => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_sends_initial_window_of_one() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        let out = s.start(SimTime::ZERO);
        assert_eq!(sends(&out), vec![0]);
        assert!(out.iter().any(|o| matches!(o, TcpOutput::ArmTimer(_))));
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        // ACK seq 0 → cwnd 2, sends 2 more.
        let out = s.on_ack(SimTime::from_millis(10), 1);
        assert_eq!(sends(&out), vec![1, 2]);
        assert_eq!(s.cwnd(), 2.0);
        let out = s.on_ack(SimTime::from_millis(20), 2);
        assert_eq!(sends(&out), vec![3, 4]);
        assert_eq!(s.cwnd(), 3.0);
    }

    #[test]
    fn congestion_avoidance_grows_slowly() {
        let cfg = TcpConfig {
            initial_ssthresh: 2.0,
            ..TcpConfig::default()
        };
        let mut s = TcpSender::new(FlowId(0), cfg);
        s.start(SimTime::ZERO);
        s.on_ack(SimTime::from_millis(10), 1); // cwnd 2 = ssthresh
        let cwnd_before = s.cwnd();
        s.on_ack(SimTime::from_millis(20), 2);
        assert!((s.cwnd() - (cwnd_before + 1.0 / cwnd_before)).abs() < 1e-9);
    }

    #[test]
    fn fast_retransmit_on_three_dupacks() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        // Grow the window a bit.
        for i in 1..=6 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        let flight = s.flight_size();
        assert!(flight >= 4, "need enough in flight, got {flight}");
        // Three dup ACKs for seq 6.
        s.on_ack(SimTime::from_millis(100), 6);
        s.on_ack(SimTime::from_millis(101), 6);
        let out = s.on_ack(SimTime::from_millis(102), 6);
        assert_eq!(sends(&out), vec![6], "fast retransmit of snd_una");
        assert_eq!(s.retransmissions, 1);
        assert!((s.ssthresh() - (flight as f64 / 2.0).max(2.0)).abs() < 1e-9);
        // Full ACK (covering everything outstanding at entry) exits
        // recovery with cwnd = ssthresh.
        let full = s.recover + 1;
        s.on_ack(SimTime::from_millis(110), full);
        assert!(!s.in_recovery);
        assert!((s.cwnd() - s.ssthresh()).abs() < 1e-9);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        for i in 1..=6 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        // Two holes: 6 and 8 lost. Dup ACKs for 6 trigger recovery.
        s.on_ack(SimTime::from_millis(100), 6);
        s.on_ack(SimTime::from_millis(101), 6);
        let out = s.on_ack(SimTime::from_millis(102), 6);
        assert_eq!(sends(&out), vec![6]);
        let recover = s.recover;
        // Partial ACK up to 8 (6..7 repaired, 8 still missing):
        // NewReno retransmits 8 immediately, stays in recovery.
        let out = s.on_ack(SimTime::from_millis(110), 8);
        assert!(sends(&out).contains(&8), "next hole must be retransmitted");
        assert!(s.in_recovery);
        assert_eq!(s.retransmissions, 2);
        // Full ACK ends recovery.
        s.on_ack(SimTime::from_millis(120), recover + 1);
        assert!(!s.in_recovery);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        for i in 1..=6 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        let out = s.on_timeout(SimTime::from_secs(2));
        assert_eq!(sends(&out), vec![6]);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.timeouts, 1);
        // A second timeout doubles the RTO (backoff) — the re-armed timer
        // must be at least as long.
        let rto1 = match out.last() {
            Some(TcpOutput::ArmTimer(d)) => *d,
            _ => panic!("timer must be re-armed"),
        };
        let out2 = s.on_timeout(SimTime::from_secs(4));
        let rto2 = match out2.last() {
            Some(TcpOutput::ArmTimer(d)) => *d,
            _ => panic!("timer must be re-armed"),
        };
        assert!(rto2 >= rto1 * 2 - SimDuration::from_millis(1));
    }

    #[test]
    fn stale_timeout_with_nothing_outstanding_is_ignored() {
        // Before `start` nothing is in flight; a stray timer is a no-op.
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        assert_eq!(s.flight_size(), 0);
        assert!(s.on_timeout(SimTime::from_secs(1)).is_empty());
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn infinite_backlog_keeps_pipe_full() {
        // With an infinite source, acking everything immediately refills
        // the window, so flight never drains to zero after start.
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        s.on_ack(SimTime::from_millis(5), 1);
        let next = s.next_seq;
        s.on_ack(SimTime::from_millis(6), next);
        assert!(s.flight_size() > 0);
    }

    #[test]
    fn window_respects_receiver_cap() {
        let cfg = TcpConfig {
            max_window: 4.0,
            ..TcpConfig::default()
        };
        let mut s = TcpSender::new(FlowId(0), cfg);
        s.start(SimTime::ZERO);
        for i in 1..=20 {
            s.on_ack(SimTime::from_millis(i * 10), i);
        }
        assert!(s.flight_size() <= 4);
    }

    #[test]
    fn receiver_acks_cumulatively_and_buffers_ooo() {
        let mut r = TcpReceiver::new(FlowId(0));
        assert_eq!(r.on_data(0, 1078), Segment::tcp_ack(FlowId(0), 1));
        // Gap: 2 arrives before 1 → dup ack 1, buffered.
        assert_eq!(r.on_data(2, 1078), Segment::tcp_ack(FlowId(0), 1));
        // 1 fills the hole → ack jumps to 3.
        assert_eq!(r.on_data(1, 1078), Segment::tcp_ack(FlowId(0), 3));
        assert_eq!(r.distinct_segments, 3);
        assert_eq!(r.duplicates, 0);
    }

    #[test]
    fn receiver_counts_duplicates_once() {
        let mut r = TcpReceiver::new(FlowId(0));
        r.on_data(0, 1078);
        r.on_data(0, 1078);
        assert_eq!(r.distinct_segments, 1);
        assert_eq!(r.duplicates, 1);
        // Old (already delivered) segment is also a duplicate.
        r.on_data(5, 1078);
        r.on_data(5, 1078);
        assert_eq!(r.duplicates, 2);
    }

    #[test]
    fn avg_cwnd_is_time_weighted() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        s.on_ack(SimTime::from_secs(1), 1); // cwnd 1 for 1 s, then 2
        let avg = s.avg_cwnd(SimTime::from_secs(2)).unwrap();
        assert!((avg - 1.5).abs() < 1e-9, "avg={avg}");
    }

    #[test]
    fn sender_snapshot_round_trips_mid_recovery() {
        use snap::{Dec, Enc, SnapState};
        let mut a = TcpSender::new(FlowId(3), TcpConfig::default());
        a.start(SimTime::ZERO);
        for i in 1..=6 {
            a.on_ack(SimTime::from_millis(i * 10), i);
        }
        // Three dup ACKs put the sender in fast recovery mid-snapshot.
        a.on_ack(SimTime::from_millis(100), 6);
        a.on_ack(SimTime::from_millis(101), 6);
        a.on_ack(SimTime::from_millis(102), 6);
        assert!(a.in_recovery);
        let mut w = Enc::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut b = TcpSender::new(FlowId(3), TcpConfig::default());
        b.snap_restore(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(a.snap_digest(), b.snap_digest());
        // Both react identically to a partial ACK and a later timeout.
        let (xa, xb) = (
            a.on_ack(SimTime::from_millis(110), 8),
            b.on_ack(SimTime::from_millis(110), 8),
        );
        assert_eq!(xa, xb);
        let (xa, xb) = (
            a.on_timeout(SimTime::from_secs(2)),
            b.on_timeout(SimTime::from_secs(2)),
        );
        assert_eq!(xa, xb);
        assert_eq!(a.cwnd(), b.cwnd());
        assert_eq!(a.retransmissions, b.retransmissions);
    }

    #[test]
    fn future_ack_ignored() {
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        assert!(s.on_ack(SimTime::from_millis(1), 999).is_empty());
        assert_eq!(s.snd_una, 0);
        assert_eq!(s.cwnd(), 1.0, "future ACK must not move the window");
    }

    #[test]
    fn karn_excludes_retransmitted_samples() {
        // RFC 6298 §3: no RTT sample from a retransmitted segment. The
        // RTO that precedes the retransmission removes the send stamp,
        // so the ACK that finally covers it yields no sample.
        let mut s = TcpSender::new(FlowId(0), TcpConfig::default());
        s.start(SimTime::ZERO);
        s.on_ack(SimTime::from_millis(10), 1); // clean sample
        let (srtt_before, latest_before) = (s.rtt().srtt(), s.rtt().latest());
        s.on_timeout(SimTime::from_secs(2)); // retransmits seq 1
                                             // The ACK for the retransmitted segment arrives much later; a
                                             // naive sample would measure from the *original* send.
        s.on_ack(SimTime::from_secs(3), 2);
        assert_eq!(s.rtt().srtt(), srtt_before, "Karn: sample must be excluded");
        assert_eq!(s.rtt().latest(), latest_before);
        // The next never-retransmitted segment contributes again.
        let next = s.snd_una + 1;
        s.on_ack(SimTime::from_secs(3) + SimDuration::from_millis(40), next);
        assert_ne!(s.rtt().latest(), latest_before);
    }

    /// Drives a sender through a deterministic pseudo-random mix of
    /// cumulative ACKs, duplicate ACKs, and timeouts.
    fn churn(cfg: CcConfig, steps: u32, mut check: impl FnMut(&TcpSender)) {
        let tcp = TcpConfig {
            cc: cfg,
            max_window: 40.0,
            ..TcpConfig::default()
        };
        let mut s = TcpSender::new(FlowId(0), tcp);
        s.start(SimTime::ZERO);
        let mut state = 0x9e37_79b9_u64 ^ u64::from(cfg.algo.tag()) << 32;
        let mut now = SimTime::ZERO;
        for step in 0..steps {
            // xorshift64 keeps the schedule reproducible without rand.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            now += SimDuration::from_micros(500 + state % 20_000);
            match state % 10 {
                0 => {
                    s.on_timeout(now);
                }
                1..=2 => {
                    // Duplicate ACK burst.
                    for _ in 0..=(state % 4) {
                        s.on_ack(now, s.snd_una);
                    }
                }
                _ => {
                    let span = 1 + state % 5;
                    let ack = (s.snd_una + span).min(s.next_seq);
                    s.on_ack(now, ack);
                }
            }
            check(&s);
            let _ = step;
        }
    }

    #[test]
    fn cwnd_stays_within_bounds_for_every_controller() {
        for cfg in CcConfig::all() {
            churn(cfg, 400, |s| {
                assert!(
                    s.cwnd() >= 1.0,
                    "{}: cwnd {} fell below one segment",
                    cfg.name(),
                    s.cwnd()
                );
                assert!(s.cwnd().is_finite(), "{}: cwnd not finite", cfg.name());
                assert!(
                    s.effective_window() <= 40,
                    "{}: effective window {} exceeds the receiver cap",
                    cfg.name(),
                    s.effective_window()
                );
            });
        }
    }

    #[test]
    fn stale_and_empty_flight_acks_never_move_cwnd() {
        for cfg in CcConfig::all() {
            let tcp = TcpConfig {
                cc: cfg,
                ..TcpConfig::default()
            };
            let mut s = TcpSender::new(FlowId(0), tcp);
            s.start(SimTime::ZERO);
            s.on_ack(SimTime::from_millis(10), 1);
            let next = s.next_seq;
            s.on_ack(SimTime::from_millis(20), next);
            let cwnd = s.cwnd();
            // Old (stale) ACK below snd_una: nothing in flight changes.
            s.on_ack(SimTime::from_millis(30), 0);
            assert_eq!(s.cwnd(), cwnd, "{}: stale ACK moved cwnd", cfg.name());
            // Future ACK beyond next_seq is ignored outright.
            s.on_ack(SimTime::from_millis(31), s.next_seq + 50);
            assert_eq!(s.cwnd(), cwnd, "{}: future ACK moved cwnd", cfg.name());
        }
    }

    #[test]
    fn every_controller_snapshot_round_trips_through_churn() {
        use snap::{Dec, Enc, SnapState};
        for cfg in CcConfig::all() {
            let tcp = TcpConfig {
                cc: cfg,
                ..TcpConfig::default()
            };
            let mut a = TcpSender::new(FlowId(1), tcp.clone());
            a.start(SimTime::ZERO);
            for i in 1..=9 {
                a.on_ack(SimTime::from_millis(i * 7), i);
            }
            a.on_ack(SimTime::from_millis(80), 9);
            a.on_ack(SimTime::from_millis(81), 9);
            a.on_ack(SimTime::from_millis(82), 9); // enter recovery
            let mut w = Enc::new();
            a.snap_save(&mut w);
            let bytes = w.into_bytes();
            let mut b = TcpSender::new(FlowId(1), tcp);
            b.snap_restore(&mut Dec::new(&bytes)).unwrap();
            assert_eq!(a.snap_digest(), b.snap_digest(), "{}", cfg.name());
            let (xa, xb) = (
                a.on_ack(SimTime::from_millis(95), 11),
                b.on_ack(SimTime::from_millis(95), 11),
            );
            assert_eq!(xa, xb, "{}: divergence after restore", cfg.name());
            assert_eq!(a.cwnd().to_bits(), b.cwnd().to_bits(), "{}", cfg.name());
        }
    }

    #[test]
    fn restoring_under_a_different_controller_is_corrupt() {
        use snap::{Dec, Enc, SnapState};
        let mut a = TcpSender::new(FlowId(0), TcpConfig::default());
        a.start(SimTime::ZERO);
        let mut w = Enc::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let cfg = TcpConfig {
            cc: CcConfig::bbr(),
            ..TcpConfig::default()
        };
        let mut b = TcpSender::new(FlowId(0), cfg);
        assert!(matches!(
            b.snap_restore(&mut Dec::new(&bytes)),
            Err(snap::SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn bbr_cc_state_events_fit_the_recorder_payload_width() {
        // cc_state is the widest event kind (5 values); a
        // recorder-attached BBR sender must emit it without tripping
        // the obs::MAX_FIELDS bound.
        let rec = ::obs::ObsSpec::default().recorder();
        let cfg = TcpConfig {
            cc: CcConfig::bbr(),
            ..TcpConfig::default()
        };
        let mut s = TcpSender::new(FlowId(0), cfg);
        s.set_recorder(rec.clone(), 1);
        s.start(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += SimDuration::from_millis(10);
            let ack = (s.snd_una + 1).min(s.next_seq);
            s.on_ack(now, ack);
        }
        let seen: Vec<&'static str> = rec.borrow().events().map(|e| e.kind.name).collect();
        assert!(
            seen.contains(&"cc_state"),
            "no cc_state among {} events",
            seen.len()
        );
    }
}
