//! Transport-layer flight-recorder events and histogram names.
//!
//! [`crate::TcpSender`] emits these when a recorder is installed (see
//! [`crate::TcpSender::set_recorder`]): congestion-window evolution and
//! every retransmission tagged with its cause (fast retransmit, NewReno
//! partial ACK, RTO expiry). Event `node` is the station hosting the
//! sender.

use ::obs::{EventKind, Layer};

/// The congestion window changed. Payload: flow id, new cwnd (segments),
/// slow-start threshold, and segments in flight.
pub static CWND: EventKind = EventKind {
    name: "cwnd",
    layer: Layer::Transport,
    fields: &["flow", "cwnd", "ssthresh", "flight"],
};

/// The retransmission timer expired. Payload: flow id, the backed-off
/// RTO now armed, and the cumulative timeout count.
pub static RTO_TIMEOUT: EventKind = EventKind {
    name: "rto_timeout",
    layer: Layer::Transport,
    fields: &["flow", "rto_us", "timeouts"],
};

/// Fast retransmit after three duplicate ACKs. Payload: flow id and the
/// retransmitted sequence.
pub static RETX_FAST: EventKind = EventKind {
    name: "retx_fast",
    layer: Layer::Transport,
    fields: &["flow", "seq"],
};

/// NewReno partial-ACK retransmission of the next hole while in fast
/// recovery. Payload: flow id and the retransmitted sequence.
pub static RETX_PARTIAL: EventKind = EventKind {
    name: "retx_partial",
    layer: Layer::Transport,
    fields: &["flow", "seq"],
};

/// RTO-driven retransmission (window collapsed to one). Payload: flow id
/// and the retransmitted sequence.
pub static RETX_TIMEOUT: EventKind = EventKind {
    name: "retx_timeout",
    layer: Layer::Transport,
    fields: &["flow", "seq"],
};

/// A TCP data segment entered the sender's station queue (first
/// transmission or retransmission alike). Node = sending station.
pub static TCP_TX: EventKind = EventKind {
    name: "tcp_tx",
    layer: Layer::Transport,
    fields: &["flow", "seq", "bytes"],
};

/// A TCP data segment reached the flow's destination station and was
/// handed to the receiver. Node = destination station.
pub static TCP_DELIVER: EventKind = EventKind {
    name: "tcp_deliver",
    layer: Layer::Transport,
    fields: &["flow", "seq", "bytes"],
};

/// A CBR/UDP datagram was generated at the source. Node = source station.
pub static UDP_TX: EventKind = EventKind {
    name: "udp_tx",
    layer: Layer::Transport,
    fields: &["flow", "seq", "bytes"],
};

/// A UDP datagram reached the flow's destination station. Node =
/// destination station.
pub static UDP_DELIVER: EventKind = EventKind {
    name: "udp_deliver",
    layer: Layer::Transport,
    fields: &["flow", "seq", "bytes"],
};

/// A congestion-controller state-machine transition (BBR: startup=0,
/// drain=1, probe-bw=2, probe-rtt=3). Payload: flow id, numeric state,
/// the pacing gain now applied, bottleneck-bandwidth estimate
/// (segments/s, 0 if unknown) and min-RTT estimate (µs, 0 if unknown).
pub static CC_STATE: EventKind = EventKind {
    name: "cc_state",
    layer: Layer::Transport,
    fields: &["flow", "state", "pacing_gain", "btl_bw_sps", "min_rtt_us"],
};

/// The controller's pacing-derived rate changed (BBR probe-bw gain-cycle
/// advance). Payload: flow id and pacing rate in segments per second.
pub static CC_PACING: EventKind = EventKind {
    name: "cc_pacing",
    layer: Layer::Transport,
    fields: &["flow", "pacing_sps"],
};

/// HyStart ended slow start early (ssthresh pulled down to cwnd).
/// Payload: flow id and the congestion window at exit.
pub static CC_SS_EXIT: EventKind = EventKind {
    name: "cc_ss_exit",
    layer: Layer::Transport,
    fields: &["flow", "cwnd"],
};

/// Histogram of sender-measured RTT samples in µs (Karn-filtered).
pub const HIST_RTT_US: &str = "tcp_rtt_us";
