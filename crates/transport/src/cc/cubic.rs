//! CUBIC congestion control (RFC 8312).
//!
//! Congestion avoidance follows the cubic curve
//! `W_cubic(t) = C·(t − K)³ + W_max` anchored at the window where the
//! last congestion event occurred, with `K = ∛(W_max·(1 − β)/C)` — the
//! time the curve takes to climb back to `W_max`. Two RFC 8312 features
//! ride along:
//!
//! * the **TCP-friendly region** (§4.2): an ACK-driven Reno-rate
//!   estimate `W_est` grows by `3·(1−β)/(1+β) · acked/cwnd` per ACK, and
//!   cwnd never falls below it, so CUBIC is never slower than Reno in
//!   short-RTT regimes like this WLAN;
//! * **fast convergence** (§4.6): a flow whose loss arrives below the
//!   previous `W_max` releases bandwidth early by anchoring the next
//!   curve at `cwnd·(2 − β)/2`.
//!
//! Slow start and the fast-recovery plumbing (dup-ACK inflation,
//! partial-ACK deflation, exit at `ssthresh`) stay Reno-style — the
//! sender's loss detection is shared across controllers — while the
//! multiplicative decrease uses CUBIC's β = 0.7 and the cubic curve
//! governs growth outside recovery.

use sim::SimTime;

use super::{AckSample, CcObs, CongestionController, HyStart};

/// RFC 8312 §5.1 scaling constant.
const C: f64 = 0.4;
/// RFC 8312 §4.5 multiplicative decrease factor.
const BETA: f64 = 0.7;

/// CUBIC controller state.
#[derive(Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    max_window: f64,
    /// Window at the last congestion event (the curve's plateau).
    w_max: f64,
    /// Time (seconds) for the curve to return to `w_max`.
    k: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Reno-rate estimate for the TCP-friendly region.
    w_est: f64,
    hystart: Option<HyStart>,
    obs: Vec<CcObs>,
}

impl Cubic {
    /// Creates a CUBIC controller with the given initial threshold and
    /// receiver window cap.
    pub fn new(initial_ssthresh: f64, max_window: f64, hystart: bool) -> Self {
        Cubic {
            cwnd: 1.0,
            ssthresh: initial_ssthresh,
            max_window,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            w_est: 0.0,
            hystart: hystart.then(HyStart::new),
            obs: Vec::new(),
        }
    }

    /// The current curve anchor `W_max` (test hook).
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Anchors a new cubic epoch at `now` from the current window.
    fn begin_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        if self.w_max < self.cwnd {
            // Exiting slow start above the old plateau: plateau is here.
            self.w_max = self.cwnd;
            self.k = 0.0;
        } else {
            self.k = ((self.w_max - self.cwnd) / C).cbrt();
        }
        self.w_est = self.cwnd;
    }

    /// Multiplicative decrease shared by fast retransmit and RTO.
    fn congestion_event(&mut self) {
        self.epoch_start = None;
        if self.cwnd < self.w_max {
            // Fast convergence (§4.6): losing below the old plateau
            // means capacity shrank — anchor the next curve lower.
            self.w_max = self.cwnd * (2.0 - BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.ssthresh = (self.cwnd * BETA).max(2.0);
    }
}

impl CongestionController for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, sample: &AckSample<'_>) {
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0; // Reno slow start
            self.epoch_start = None;
            if let Some(h) = &mut self.hystart {
                if h.on_ack(sample) {
                    self.ssthresh = self.cwnd;
                    self.obs.push(CcObs::SsExit { cwnd: self.cwnd });
                }
            }
        } else {
            if self.epoch_start.is_none() {
                self.begin_epoch(sample.now);
            }
            let epoch = self.epoch_start.expect("epoch begun above");
            // Project one RTT ahead (§4.1 computes the target at t+RTT).
            let rtt = sample.rtt.srtt().map_or(0.0, |d| d.as_secs_f64());
            let t = sample.now.saturating_since(epoch).as_secs_f64() + rtt;
            let w_cubic = C * (t - self.k).powi(3) + self.w_max;
            self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * (sample.newly_acked / self.cwnd);
            if w_cubic < self.w_est {
                // TCP-friendly region (§4.2).
                self.cwnd = self.w_est;
            } else if w_cubic > self.cwnd {
                // Concave/convex region (§4.3/§4.4): close 1/cwnd of the
                // gap to the curve per ACK.
                self.cwnd += (w_cubic - self.cwnd) / self.cwnd;
            }
        }
        // The curve is unbounded; the receiver cap is a hard ceiling, so
        // clamping here keeps `t − K` from running away while the
        // effective window saturates.
        self.cwnd = self.cwnd.min(self.max_window).max(1.0);
    }

    fn on_dup_ack(&mut self, _now: SimTime) {
        self.cwnd += 1.0; // Reno-style inflation while in recovery
    }

    fn on_partial_ack(&mut self, _now: SimTime, newly_acked: f64) {
        self.cwnd = (self.cwnd - newly_acked + 1.0).max(1.0);
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.cwnd = self.ssthresh;
    }

    fn on_loss(&mut self, _now: SimTime, _flight: u64) {
        self.congestion_event();
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime, _flight: u64) {
        self.congestion_event();
        self.cwnd = 1.0;
        if let Some(h) = &mut self.hystart {
            h.reset();
        }
    }

    fn take_obs(&mut self, out: &mut Vec<CcObs>) {
        out.append(&mut self.obs);
    }
}

/// Snapshot = window state, curve anchor, epoch, and the Reno estimate;
/// HyStart state rides along when configured. `max_window` is
/// configuration.
impl snap::SnapState for Cubic {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        w.f64(self.w_max);
        w.f64(self.k);
        self.epoch_start.save(w);
        w.f64(self.w_est);
        if let Some(h) = &self.hystart {
            h.save(w);
        }
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        self.w_max = r.f64()?;
        self.k = r.f64()?;
        self.epoch_start = Option::<SimTime>::load(r)?;
        self.w_est = r.f64()?;
        if self.hystart.is_some() {
            self.hystart = Some(HyStart::load(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::RttEstimator;
    use super::*;
    use sim::SimDuration;

    fn ack<'a>(rtt: &'a RttEstimator, now: SimTime, newly: f64) -> AckSample<'a> {
        AckSample {
            now,
            newly_acked: newly,
            flight: 8,
            delivered: 100,
            delivered_at_send: None,
            sent_at: None,
            rtt,
        }
    }

    #[test]
    fn multiplicative_decrease_uses_beta_0_7() {
        let mut c = Cubic::new(50.0, 50.0, false);
        c.cwnd = 20.0;
        c.ssthresh = 10.0;
        c.on_loss(SimTime::from_secs(1), 20);
        assert!((c.ssthresh() - 14.0).abs() < 1e-9, "20 × 0.7");
        assert_eq!(c.cwnd(), c.ssthresh());
        assert_eq!(c.w_max(), 20.0);
    }

    #[test]
    fn fast_convergence_lowers_the_anchor() {
        let mut c = Cubic::new(50.0, 50.0, false);
        c.cwnd = 20.0;
        c.w_max = 30.0; // loss arrives below the previous plateau
        c.on_loss(SimTime::from_secs(1), 20);
        assert!((c.w_max() - 20.0 * (2.0 - BETA) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn tcp_friendly_region_tracks_reno_at_short_rtt() {
        // §4.2: right after a loss the cubic curve is nearly flat; the
        // Reno estimate must carry growth instead.
        let mut rtt = RttEstimator::new();
        rtt.sample(SimTime::ZERO, SimDuration::from_millis(5));
        let mut c = Cubic::new(1.0, 50.0, false); // CA from the start
        c.cwnd = 10.0;
        c.ssthresh = 1.0;
        c.w_max = 10.0; // curve plateau at the current window: flat
        let mut now = SimTime::from_millis(10);
        let before = c.cwnd();
        for _ in 0..30 {
            now += SimDuration::from_millis(5);
            c.on_ack(&ack(&rtt, now, 1.0));
        }
        // Reno would add ~30/cwnd ≈ 2.4; the flat curve alone adds ~0.
        // The TCP-friendly region must have carried the difference.
        assert!(
            c.cwnd() > before + 1.0,
            "w_est must lift cwnd, got {}",
            c.cwnd()
        );
    }

    #[test]
    fn cubic_region_outgrows_reno_after_long_idle_growth() {
        // Far from the plateau the convex region accelerates: K for
        // w_max=40, cwnd=10 is ∛(75)≈4.2 s, and past t=K growth is
        // cubic. 8 s into the epoch the curve is ~40+0.4·(3.8)³ ≈ 62,
        // so a single ACK adds (62−10)/10 ≈ 5 segments where Reno's
        // congestion avoidance adds 1/cwnd = 0.1.
        let mut rtt = RttEstimator::new();
        rtt.sample(SimTime::ZERO, SimDuration::from_millis(5));
        let mut c = Cubic::new(1.0, 200.0, false);
        c.cwnd = 10.0;
        c.ssthresh = 1.0;
        c.w_max = 40.0;
        let mut now = SimTime::from_secs(1);
        c.on_ack(&ack(&rtt, now, 1.0)); // anchors the epoch
        now += SimDuration::from_secs(8);
        c.on_ack(&ack(&rtt, now, 1.0));
        assert!(
            c.cwnd() > 14.0,
            "convex region must close the gap fast, got {}",
            c.cwnd()
        );
    }

    #[test]
    fn cwnd_never_exceeds_the_receiver_cap() {
        let mut rtt = RttEstimator::new();
        rtt.sample(SimTime::ZERO, SimDuration::from_millis(5));
        let mut c = Cubic::new(1.0, 50.0, false);
        c.cwnd = 49.0;
        c.ssthresh = 1.0;
        c.w_max = 49.0;
        let mut now = SimTime::from_secs(1);
        for _ in 0..5000 {
            now += SimDuration::from_millis(1);
            c.on_ack(&ack(&rtt, now, 1.0));
        }
        assert!(c.cwnd() <= 50.0);
    }

    #[test]
    fn snapshot_round_trips_mid_epoch() {
        use snap::SnapState as _;
        let mut rtt = RttEstimator::new();
        rtt.sample(SimTime::ZERO, SimDuration::from_millis(5));
        let mut a = Cubic::new(2.0, 50.0, true);
        let mut now = SimTime::from_millis(1);
        for _ in 0..20 {
            now += SimDuration::from_millis(5);
            a.on_ack(&ack(&rtt, now, 1.0));
        }
        let mut w = snap::Enc::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut b = Cubic::new(2.0, 50.0, true);
        b.snap_restore(&mut snap::Dec::new(&bytes)).unwrap();
        assert_eq!(a.snap_digest(), b.snap_digest());
        // Identical future behavior.
        now += SimDuration::from_millis(5);
        a.on_ack(&ack(&rtt, now, 1.0));
        b.on_ack(&ack(&rtt, now, 1.0));
        assert_eq!(a.cwnd().to_bits(), b.cwnd().to_bits());
    }
}
