//! Hybrid slow start (HyStart): heuristic early exit from slow start.
//!
//! Classic slow start exits only on loss, overshooting the path's BDP by
//! up to 2×. HyStart (Ha & Rhee, and the scheme adopted by Linux CUBIC
//! and s2n-quic) watches two signals and ends slow start — by raising
//! `ssthresh` to the current cwnd — as soon as either fires:
//!
//! 1. **ACK train length**: closely-spaced ACKs (≤ 2 ms apart) form a
//!    train; once the train spans at least `min_rtt / 2`, the in-flight
//!    data already occupies half the pipe.
//! 2. **Delay increase**: the minimum RTT of the first eight samples in
//!    a round exceeding last round's minimum by `η = clamp(last_min/8,
//!    4 ms, 16 ms)` means the bottleneck queue has started to build.
//!
//! Rounds are delimited by the delivered count reaching the value of
//! `next_seq` at round start. The modifier composes with NewReno and
//! CUBIC; BBR has no classic slow start to modify.

use sim::{SimDuration, SimTime};

use super::AckSample;

/// Maximum ACK spacing for two ACKs to belong to the same train.
const TRAIN_SPACING: SimDuration = SimDuration::from_millis(2);
/// RTT samples per round inspected by the delay-increase trigger.
const DELAY_SAMPLES: u32 = 8;
/// Clamp bounds of the delay-increase threshold η.
const ETA_MIN: SimDuration = SimDuration::from_millis(4);
/// Upper clamp bound of η.
const ETA_MAX: SimDuration = SimDuration::from_millis(16);

/// Slow-start exit heuristic state (one per sender, embedded in a
/// loss-based controller).
#[derive(Debug, Clone)]
pub struct HyStart {
    active: bool,
    end_seq: u64,
    round_min: Option<SimDuration>,
    last_round_min: Option<SimDuration>,
    samples: u32,
    last_ack_at: SimTime,
    train_start_at: SimTime,
}

impl HyStart {
    /// Creates an armed HyStart tracker.
    pub fn new() -> Self {
        HyStart {
            active: true,
            end_seq: 0,
            round_min: None,
            last_round_min: None,
            samples: 0,
            last_ack_at: SimTime::ZERO,
            train_start_at: SimTime::ZERO,
        }
    }

    /// Re-arms after an RTO returns the sender to slow start.
    pub fn reset(&mut self) {
        *self = HyStart::new();
    }

    /// True while the heuristics are still watching (no exit yet).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Feeds one new-data ACK taken during slow start. Returns `true`
    /// exactly once, when either trigger fires: the controller must then
    /// set `ssthresh = cwnd`.
    pub fn on_ack(&mut self, s: &AckSample<'_>) -> bool {
        if !self.active {
            return false;
        }
        if s.delivered >= self.end_seq {
            // New round: everything outstanding at the last boundary is
            // delivered. The next boundary is today's next_seq.
            self.last_round_min = self.round_min;
            self.round_min = None;
            self.samples = 0;
            self.end_seq = s.delivered + s.flight;
            self.train_start_at = s.now;
            self.last_ack_at = s.now;
        }
        let mut exit = false;
        // ACK-train trigger.
        if s.now.saturating_since(self.last_ack_at) <= TRAIN_SPACING {
            if let Some(min_rtt) = s.rtt.min_rtt() {
                let half_min = SimDuration::from_nanos(min_rtt.as_nanos() / 2);
                if s.now.saturating_since(self.train_start_at) >= half_min {
                    exit = true;
                }
            }
        } else {
            self.train_start_at = s.now;
        }
        self.last_ack_at = s.now;
        // Delay-increase trigger, fed only fresh (Karn-valid) samples.
        if s.sent_at.is_some() {
            if let Some(latest) = s.rtt.latest() {
                if self.samples < DELAY_SAMPLES {
                    self.samples += 1;
                    self.round_min = Some(match self.round_min {
                        Some(m) => m.min(latest),
                        None => latest,
                    });
                }
                if self.samples >= DELAY_SAMPLES {
                    if let (Some(cur), Some(last)) = (self.round_min, self.last_round_min) {
                        let eta = SimDuration::from_nanos(last.as_nanos() / 8)
                            .max(ETA_MIN)
                            .min(ETA_MAX);
                        if cur >= last + eta {
                            exit = true;
                        }
                    }
                }
            }
        }
        if exit {
            self.active = false;
        }
        exit
    }
}

impl Default for HyStart {
    fn default() -> Self {
        HyStart::new()
    }
}

impl snap::SnapValue for HyStart {
    fn save(&self, w: &mut snap::Enc) {
        w.bool(self.active);
        w.u64(self.end_seq);
        self.round_min.save(w);
        self.last_round_min.save(w);
        w.u32(self.samples);
        self.last_ack_at.save(w);
        self.train_start_at.save(w);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(HyStart {
            active: r.bool()?,
            end_seq: r.u64()?,
            round_min: Option::<SimDuration>::load(r)?,
            last_round_min: Option::<SimDuration>::load(r)?,
            samples: r.u32()?,
            last_ack_at: SimTime::load(r)?,
            train_start_at: SimTime::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::RttEstimator;
    use super::*;

    fn sample<'a>(
        now: SimTime,
        delivered: u64,
        flight: u64,
        rtt: &'a RttEstimator,
        fresh: bool,
    ) -> AckSample<'a> {
        AckSample {
            now,
            newly_acked: 1.0,
            flight,
            delivered,
            delivered_at_send: fresh.then_some(delivered.saturating_sub(1)),
            sent_at: fresh.then_some(now),
            rtt,
        }
    }

    #[test]
    fn ack_train_spanning_half_min_rtt_exits() {
        let mut h = HyStart::new();
        let mut rtt = RttEstimator::new();
        // min RTT 20 ms → train must span ≥ 10 ms of ≤2 ms-spaced ACKs.
        rtt.sample(SimTime::ZERO, SimDuration::from_millis(20));
        let mut now = SimTime::from_millis(100);
        // Round starts here (delivered 0 ≥ end_seq 0).
        assert!(!h.on_ack(&sample(now, 10, 10, &rtt, false)));
        let mut fired = false;
        for _ in 0..10 {
            now += SimDuration::from_millis(2);
            if h.on_ack(&sample(now, 11, 10, &rtt, false)) {
                fired = true;
                break;
            }
        }
        assert!(fired, "10 ms ACK train with 20 ms min RTT must exit");
        assert!(!h.is_active());
    }

    #[test]
    fn spaced_acks_reset_the_train() {
        let mut h = HyStart::new();
        let mut rtt = RttEstimator::new();
        rtt.sample(SimTime::ZERO, SimDuration::from_millis(20));
        let mut now = SimTime::from_millis(100);
        h.on_ack(&sample(now, 10, 10, &rtt, false));
        // ACKs 5 ms apart never form a train.
        for _ in 0..20 {
            now += SimDuration::from_millis(5);
            assert!(!h.on_ack(&sample(now, 11, 10, &rtt, false)));
        }
        assert!(h.is_active());
    }

    #[test]
    fn delay_increase_across_rounds_exits() {
        let mut h = HyStart::new();
        let mut rtt = RttEstimator::new();
        // Round 1: eight 10 ms samples (delivered stays below end_seq
        // after the boundary ack).
        let mut now = SimTime::from_millis(0);
        rtt.sample(now, SimDuration::from_millis(10));
        assert!(!h.on_ack(&sample(now, 0, 8, &rtt, true))); // boundary: end_seq = 8
        for i in 1..8 {
            now += SimDuration::from_millis(10);
            rtt.sample(now, SimDuration::from_millis(10));
            assert!(!h.on_ack(&sample(now, i, 8 - i, &rtt, true)));
        }
        // Round 2 boundary (delivered reaches 8); queue has built: RTT
        // jumped to 18 ms ≥ 10 ms + η (η = clamp(10/8, 4, 16) = 4 ms).
        let mut fired = false;
        for i in 0..8 {
            now += SimDuration::from_millis(18);
            rtt.sample(now, SimDuration::from_millis(18));
            if h.on_ack(&sample(now, 8 + i, 8, &rtt, true)) {
                fired = true;
                break;
            }
        }
        assert!(fired, "18 ms round after a 10 ms round must exit");
    }

    #[test]
    fn small_jitter_does_not_exit() {
        let mut h = HyStart::new();
        let mut rtt = RttEstimator::new();
        let mut now = SimTime::from_millis(0);
        let mut delivered = 0;
        // Many rounds of 10 ms ± 2 ms jitter (below η = 4 ms): no exit.
        for round in 0..6 {
            for i in 0..9 {
                now += SimDuration::from_millis(10);
                let rtt_ms = if (round + i) % 2 == 0 { 10 } else { 12 };
                rtt.sample(now, SimDuration::from_millis(rtt_ms));
                assert!(!h.on_ack(&sample(now, delivered, 9 - i, &rtt, true)));
                delivered += 1;
            }
        }
        assert!(h.is_active());
    }

    #[test]
    fn reset_rearms_after_exit() {
        let mut h = HyStart::new();
        h.active = false;
        h.reset();
        assert!(h.is_active());
    }

    #[test]
    fn snapshot_round_trips() {
        use snap::SnapValue as _;
        let mut h = HyStart::new();
        let rtt = {
            let mut r = RttEstimator::new();
            r.sample(SimTime::from_millis(1), SimDuration::from_millis(9));
            r
        };
        h.on_ack(&sample(SimTime::from_millis(5), 3, 4, &rtt, true));
        let mut w = snap::Enc::new();
        h.save(&mut w);
        let bytes = w.into_bytes();
        let b = HyStart::load(&mut snap::Dec::new(&bytes)).unwrap();
        assert_eq!(b.end_seq, h.end_seq);
        assert_eq!(b.samples, h.samples);
        assert_eq!(b.round_min, h.round_min);
    }
}
