//! TCP NewReno congestion control (the paper's baseline).
//!
//! This is the window arithmetic that lived inline in
//! [`crate::TcpSender`] before the controller trait existed, extracted
//! verbatim: slow start (+1 per ACK), congestion avoidance (+1/cwnd per
//! ACK), halving on fast retransmit with dup-ACK window inflation,
//! NewReno partial-ACK deflation, and collapse to one segment on RTO.
//! With HyStart disabled (the default) every floating-point operation
//! happens in the same order on the same values as the pre-refactor
//! sender, keeping all 37 experiment CSVs byte-identical.

use sim::SimTime;

use super::{AckSample, CcObs, CongestionController, HyStart};

/// NewReno state: the classic `(cwnd, ssthresh)` pair, plus the optional
/// HyStart slow-start modifier.
#[derive(Debug)]
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
    hystart: Option<HyStart>,
    obs: Vec<CcObs>,
}

impl NewReno {
    /// Creates a NewReno controller with the given initial threshold.
    pub fn new(initial_ssthresh: f64, hystart: bool) -> Self {
        NewReno {
            cwnd: 1.0,
            ssthresh: initial_ssthresh,
            hystart: hystart.then(HyStart::new),
            obs: Vec::new(),
        }
    }
}

impl CongestionController for NewReno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, sample: &AckSample<'_>) {
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0; // slow start
            if let Some(h) = &mut self.hystart {
                if h.on_ack(sample) {
                    self.ssthresh = self.cwnd;
                    self.obs.push(CcObs::SsExit { cwnd: self.cwnd });
                }
            }
        } else {
            self.cwnd += 1.0 / self.cwnd; // congestion avoidance
        }
    }

    fn on_dup_ack(&mut self, _now: SimTime) {
        // Window inflation keeps the pipe full during fast recovery.
        self.cwnd += 1.0;
    }

    fn on_partial_ack(&mut self, _now: SimTime, newly_acked: f64) {
        // Deflate by the amount acknowledged, stay in recovery.
        self.cwnd = (self.cwnd - newly_acked + 1.0).max(1.0);
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.cwnd = self.ssthresh;
    }

    fn on_loss(&mut self, _now: SimTime, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(2.0);
        self.cwnd = self.ssthresh + 3.0;
    }

    fn on_rto(&mut self, _now: SimTime, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        if let Some(h) = &mut self.hystart {
            h.reset(); // slow start restarts; re-arm the exit heuristics
        }
    }

    fn take_obs(&mut self, out: &mut Vec<CcObs>) {
        out.append(&mut self.obs);
    }
}

/// Snapshot = `(cwnd, ssthresh)` plus HyStart state when configured
/// (presence is configuration, not state).
impl snap::SnapState for NewReno {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        if let Some(h) = &self.hystart {
            h.save(w);
        }
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        if self.hystart.is_some() {
            self.hystart = Some(HyStart::load(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::RttEstimator;
    use super::*;
    use sim::SimDuration;

    fn ack<'a>(rtt: &'a RttEstimator, now: SimTime) -> AckSample<'a> {
        AckSample {
            now,
            newly_acked: 1.0,
            flight: 4,
            delivered: 10,
            delivered_at_send: None,
            sent_at: None,
            rtt,
        }
    }

    #[test]
    fn matches_the_classic_arithmetic() {
        let rtt = RttEstimator::new();
        let mut c = NewReno::new(2.0, false);
        c.on_ack(&ack(&rtt, SimTime::ZERO)); // slow start: 1 → 2
        assert_eq!(c.cwnd(), 2.0);
        c.on_ack(&ack(&rtt, SimTime::ZERO)); // CA: 2 + 1/2
        assert_eq!(c.cwnd(), 2.5);
        c.on_loss(SimTime::ZERO, 10);
        assert_eq!(c.ssthresh(), 5.0);
        assert_eq!(c.cwnd(), 8.0); // ssthresh + 3
        c.on_dup_ack(SimTime::ZERO);
        assert_eq!(c.cwnd(), 9.0);
        c.on_partial_ack(SimTime::ZERO, 4.0);
        assert_eq!(c.cwnd(), 6.0);
        c.on_recovery_exit(SimTime::ZERO);
        assert_eq!(c.cwnd(), 5.0);
        c.on_rto(SimTime::ZERO, 6);
        assert_eq!(c.cwnd(), 1.0);
        assert_eq!(c.ssthresh(), 3.0);
    }

    #[test]
    fn hystart_exit_caps_slow_start() {
        let mut rtt = RttEstimator::new();
        rtt.sample(SimTime::ZERO, SimDuration::from_millis(20));
        let mut c = NewReno::new(50.0, true);
        // A dense ACK train (1 ms spacing) longer than min_rtt/2 fires
        // the train trigger; ssthresh drops from 50 to the current cwnd.
        let mut now = SimTime::from_millis(10);
        for _ in 0..40 {
            now += SimDuration::from_millis(1);
            c.on_ack(&ack(&rtt, now));
            if c.ssthresh() < 50.0 {
                break;
            }
        }
        assert!(c.ssthresh() < 50.0, "HyStart must have exited");
        assert_eq!(c.ssthresh(), c.cwnd());
        let mut drained = Vec::new();
        c.take_obs(&mut drained);
        assert!(drained.iter().any(|o| matches!(o, CcObs::SsExit { .. })));
    }

    #[test]
    fn snapshot_round_trips_with_and_without_hystart() {
        use snap::SnapState as _;
        for hy in [false, true] {
            let rtt = RttEstimator::new();
            let mut a = NewReno::new(50.0, hy);
            a.on_ack(&ack(&rtt, SimTime::from_millis(3)));
            let mut w = snap::Enc::new();
            a.snap_save(&mut w);
            let bytes = w.into_bytes();
            let mut b = NewReno::new(50.0, hy);
            b.snap_restore(&mut snap::Dec::new(&bytes)).unwrap();
            assert_eq!(a.snap_digest(), b.snap_digest());
        }
    }
}
