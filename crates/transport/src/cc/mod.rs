//! Pluggable congestion control for the TCP sender.
//!
//! [`TcpSender`](crate::TcpSender) owns loss *detection* — duplicate-ACK
//! counting, NewReno recovery bookkeeping (`recover`, partial-ACK hole
//! retransmission), the RTO timer with Karn's rule — and delegates every
//! congestion-window *decision* to a [`CongestionController`]. Four
//! controller configurations are selectable via [`CcConfig`]:
//!
//! * **NewReno** ([`newreno`]) — the paper's loss-based baseline,
//!   extracted verbatim from the previously-inlined arithmetic (the
//!   default path is bit-identical to the pre-refactor sender);
//! * **CUBIC** ([`cubic`]) — RFC 8312 window curve with the
//!   TCP-friendly region and fast convergence;
//! * **BBR** ([`bbr`]) — model-based: windowed max-bandwidth / min-RTT
//!   estimator driving a startup/drain/probe-bw/probe-rtt state machine,
//!   with the pacing-gain cycle adapted to this packet-granular sender;
//! * **HyStart** ([`hystart`]) — a slow-start *modifier* (delay increase
//!   and ACK-train length exit triggers) composable with NewReno and
//!   CUBIC.
//!
//! Controllers receive a shared passive [`RttEstimator`] (smoothed RTT,
//! variance, windowed min) fed the same Karn-filtered samples as the RTO
//! estimator, and report observability through [`CcObs`] records the
//! sender drains into the flight recorder.

pub mod bbr;
pub mod cubic;
pub mod hystart;
pub mod newreno;
pub mod rtt;
pub mod spec;

pub use bbr::Bbr;
pub use cubic::Cubic;
pub use hystart::HyStart;
pub use newreno::NewReno;
pub use rtt::RttEstimator;

use sim::SimTime;

/// Everything a controller may inspect when new data is acknowledged.
///
/// `delivered_at_send`/`sent_at` describe the highest newly-acked
/// segment *if* it yields a Karn-valid sample (never retransmitted):
/// what `snd_una` was when it left and when it left. BBR turns the pair
/// into a delivery-rate sample; they are `None` for ACKs whose newest
/// segment was retransmitted.
#[derive(Debug)]
pub struct AckSample<'a> {
    /// Virtual time of the ACK.
    pub now: SimTime,
    /// Segments newly acknowledged by this cumulative ACK.
    pub newly_acked: f64,
    /// Segments still in flight *after* applying the ACK.
    pub flight: u64,
    /// Cumulative segments delivered so far (the new `snd_una`).
    pub delivered: u64,
    /// `delivered` at the moment the newest acked segment was sent.
    pub delivered_at_send: Option<u64>,
    /// When the newest acked segment was sent.
    pub sent_at: Option<SimTime>,
    /// The shared passive RTT estimator (already fed this ACK's sample).
    pub rtt: &'a RttEstimator,
}

/// An observability record a controller queues for the sender to drain
/// into the flight recorder (see `cc_state`/`cc_pacing`/`cc_ss_exit`
/// event kinds in [`crate::obs`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CcObs {
    /// A state-machine transition (BBR). Values: numeric state id,
    /// pacing gain, bottleneck bandwidth estimate (segments/s), min RTT
    /// (µs).
    State {
        /// Numeric state id (BBR: 0 startup, 1 drain, 2 probe-bw,
        /// 3 probe-rtt).
        state: u8,
        /// Pacing gain now applied to the window target.
        pacing_gain: f64,
        /// Bottleneck bandwidth estimate, segments per second (0 if
        /// unknown).
        btl_bw_sps: f64,
        /// Minimum RTT estimate in microseconds (0 if unknown).
        min_rtt_us: f64,
    },
    /// The pacing-derived window target changed (BBR probe-bw cycle
    /// advance). Value: pacing rate in segments per second.
    Pacing {
        /// Pacing rate (gain × bottleneck bandwidth), segments/s.
        pacing_sps: f64,
    },
    /// HyStart ended slow start early. Value: cwnd at exit.
    SsExit {
        /// Congestion window (segments) when slow start ended.
        cwnd: f64,
    },
}

/// The congestion-window policy behind [`crate::TcpSender`].
///
/// The sender calls exactly one hook per event, always followed by a
/// `record_cwnd` that drains [`CongestionController::take_obs`]; hooks
/// therefore may queue observability records without unbounded growth.
/// Loss detection and retransmission scheduling stay in the sender —
/// controllers only move the window.
pub trait CongestionController {
    /// Current congestion window in segments (raw, not clamped to the
    /// receiver window).
    fn cwnd(&self) -> f64;
    /// Current slow-start threshold in segments (model-based controllers
    /// without one report the receiver window cap).
    fn ssthresh(&self) -> f64;
    /// New data acknowledged outside recovery.
    fn on_ack(&mut self, sample: &AckSample<'_>);
    /// New data acknowledged while the sender is in fast recovery
    /// (model update only; window moves via the recovery hooks).
    fn on_ack_in_recovery(&mut self, _sample: &AckSample<'_>) {}
    /// Duplicate ACK while in fast recovery (Reno window inflation).
    fn on_dup_ack(&mut self, _now: SimTime) {}
    /// NewReno partial ACK while in fast recovery: `newly_acked`
    /// segments were acknowledged but a hole remains.
    fn on_partial_ack(&mut self, _now: SimTime, _newly_acked: f64) {}
    /// A full ACK ended fast recovery.
    fn on_recovery_exit(&mut self, _now: SimTime) {}
    /// Third duplicate ACK: fast retransmit fired, recovery begins.
    /// `flight` is the flight size at detection.
    fn on_loss(&mut self, now: SimTime, flight: u64);
    /// The retransmission timer expired. `flight` is the flight size at
    /// expiry.
    fn on_rto(&mut self, now: SimTime, flight: u64);
    /// A data segment was handed to the MAC queue.
    fn on_send(&mut self, _now: SimTime, _seq: u64) {}
    /// Drains queued observability records into `out`.
    fn take_obs(&mut self, _out: &mut Vec<CcObs>) {}
}

/// Which congestion-control algorithm a sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcAlgorithm {
    /// Loss-based NewReno (the paper's baseline; default).
    #[default]
    NewReno,
    /// RFC 8312 CUBIC.
    Cubic,
    /// BBR (model-based).
    Bbr,
}

impl CcAlgorithm {
    pub(crate) fn tag(self) -> u8 {
        match self {
            CcAlgorithm::NewReno => 0,
            CcAlgorithm::Cubic => 1,
            CcAlgorithm::Bbr => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, snap::SnapError> {
        match tag {
            0 => Ok(CcAlgorithm::NewReno),
            1 => Ok(CcAlgorithm::Cubic),
            2 => Ok(CcAlgorithm::Bbr),
            _ => Err(snap::SnapError::Corrupt(format!(
                "unknown cc algorithm tag {tag}"
            ))),
        }
    }
}

/// Selects the congestion controller (and the optional HyStart slow
/// start modifier) for a TCP sender.
///
/// # Examples
///
/// ```
/// use gr_transport::cc::CcConfig;
///
/// assert_eq!(CcConfig::default().name(), "newreno");
/// assert_eq!(CcConfig::parse("cubic+hystart").unwrap().name(), "cubic+hystart");
/// assert!(CcConfig::parse("bbr+hystart").is_none()); // BBR has no slow start to modify
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CcConfig {
    /// The algorithm.
    pub algo: CcAlgorithm,
    /// Replace classic slow-start exit with HyStart's delay/ACK-train
    /// triggers (NewReno and CUBIC only).
    pub hystart: bool,
}

impl CcConfig {
    /// NewReno (the default).
    pub fn newreno() -> Self {
        CcConfig::default()
    }

    /// CUBIC.
    pub fn cubic() -> Self {
        CcConfig {
            algo: CcAlgorithm::Cubic,
            hystart: false,
        }
    }

    /// BBR.
    pub fn bbr() -> Self {
        CcConfig {
            algo: CcAlgorithm::Bbr,
            hystart: false,
        }
    }

    /// Enables HyStart on a loss-based controller.
    ///
    /// # Panics
    ///
    /// Panics for BBR, which has no classic slow start to modify.
    pub fn with_hystart(mut self) -> Self {
        assert!(
            self.algo != CcAlgorithm::Bbr,
            "HyStart does not compose with BBR"
        );
        self.hystart = true;
        self
    }

    /// Canonical name, e.g. `"newreno"`, `"cubic+hystart"`, `"bbr"`.
    pub fn name(&self) -> &'static str {
        match (self.algo, self.hystart) {
            (CcAlgorithm::NewReno, false) => "newreno",
            (CcAlgorithm::NewReno, true) => "newreno+hystart",
            (CcAlgorithm::Cubic, false) => "cubic",
            (CcAlgorithm::Cubic, true) => "cubic+hystart",
            (CcAlgorithm::Bbr, _) => "bbr",
        }
    }

    /// Parses a canonical name back into a config (`None` for unknown
    /// names or the unsupported `bbr+hystart`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "newreno" | "reno" => Some(CcConfig::newreno()),
            "newreno+hystart" => Some(CcConfig::newreno().with_hystart()),
            "cubic" => Some(CcConfig::cubic()),
            "cubic+hystart" => Some(CcConfig::cubic().with_hystart()),
            "bbr" => Some(CcConfig::bbr()),
            _ => None,
        }
    }

    /// Every selectable configuration, in sweep order.
    pub fn all() -> [CcConfig; 5] {
        [
            CcConfig::newreno(),
            CcConfig::cubic(),
            CcConfig::bbr(),
            CcConfig::newreno().with_hystart(),
            CcConfig::cubic().with_hystart(),
        ]
    }
}

impl snap::SnapValue for CcConfig {
    fn save(&self, w: &mut snap::Enc) {
        w.u8(self.algo.tag());
        w.bool(self.hystart);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(CcConfig {
            algo: CcAlgorithm::from_tag(r.u8()?)?,
            hystart: r.bool()?,
        })
    }
}

/// Enum-dispatched controller (same devirtualization pattern as
/// `mac::dcf`): one `match` instead of a vtable on the per-ACK hot path.
#[derive(Debug)]
pub enum Cc {
    /// NewReno (± HyStart).
    NewReno(NewReno),
    /// CUBIC (± HyStart).
    Cubic(Cubic),
    /// BBR.
    Bbr(Bbr),
}

impl Cc {
    /// Builds the controller selected by `cfg` with the sender's
    /// initial slow-start threshold and receiver window cap.
    pub fn new(cfg: CcConfig, initial_ssthresh: f64, max_window: f64) -> Self {
        match cfg.algo {
            CcAlgorithm::NewReno => Cc::NewReno(NewReno::new(initial_ssthresh, cfg.hystart)),
            CcAlgorithm::Cubic => Cc::Cubic(Cubic::new(initial_ssthresh, max_window, cfg.hystart)),
            CcAlgorithm::Bbr => Cc::Bbr(Bbr::new(max_window)),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Cc::NewReno(_) => 0,
            Cc::Cubic(_) => 1,
            Cc::Bbr(_) => 2,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $c:ident => $e:expr) => {
        match $self {
            Cc::NewReno($c) => $e,
            Cc::Cubic($c) => $e,
            Cc::Bbr($c) => $e,
        }
    };
}

impl CongestionController for Cc {
    fn cwnd(&self) -> f64 {
        dispatch!(self, c => c.cwnd())
    }
    fn ssthresh(&self) -> f64 {
        dispatch!(self, c => c.ssthresh())
    }
    fn on_ack(&mut self, sample: &AckSample<'_>) {
        dispatch!(self, c => c.on_ack(sample))
    }
    fn on_ack_in_recovery(&mut self, sample: &AckSample<'_>) {
        dispatch!(self, c => c.on_ack_in_recovery(sample))
    }
    fn on_dup_ack(&mut self, now: SimTime) {
        dispatch!(self, c => c.on_dup_ack(now))
    }
    fn on_partial_ack(&mut self, now: SimTime, newly_acked: f64) {
        dispatch!(self, c => c.on_partial_ack(now, newly_acked))
    }
    fn on_recovery_exit(&mut self, now: SimTime) {
        dispatch!(self, c => c.on_recovery_exit(now))
    }
    fn on_loss(&mut self, now: SimTime, flight: u64) {
        dispatch!(self, c => c.on_loss(now, flight))
    }
    fn on_rto(&mut self, now: SimTime, flight: u64) {
        dispatch!(self, c => c.on_rto(now, flight))
    }
    fn on_send(&mut self, now: SimTime, seq: u64) {
        dispatch!(self, c => c.on_send(now, seq))
    }
    fn take_obs(&mut self, out: &mut Vec<CcObs>) {
        dispatch!(self, c => c.take_obs(out))
    }
}

/// Snapshot = one algorithm tag byte plus the variant's state. The
/// variant itself is configuration (the owner rebuilds it from
/// [`CcConfig`]); restoring into a different variant is a corruption
/// error, not a silent re-interpretation.
impl snap::SnapState for Cc {
    fn snap_save(&self, w: &mut snap::Enc) {
        w.u8(self.tag());
        match self {
            Cc::NewReno(c) => c.snap_save(w),
            Cc::Cubic(c) => c.snap_save(w),
            Cc::Bbr(c) => c.snap_save(w),
        }
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        let tag = r.u8()?;
        if tag != self.tag() {
            return Err(snap::SnapError::Corrupt(
                "snapshot was taken under a different cc algorithm".into(),
            ));
        }
        match self {
            Cc::NewReno(c) => c.snap_restore(r),
            Cc::Cubic(c) => c.snap_restore(r),
            Cc::Bbr(c) => c.snap_restore(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for cfg in CcConfig::all() {
            assert_eq!(CcConfig::parse(cfg.name()), Some(cfg), "{}", cfg.name());
        }
        assert!(CcConfig::parse("bbr+hystart").is_none());
        assert!(CcConfig::parse("vegas").is_none());
    }

    #[test]
    #[should_panic(expected = "HyStart does not compose with BBR")]
    fn bbr_with_hystart_is_rejected() {
        let _ = CcConfig::bbr().with_hystart();
    }

    #[test]
    fn snapshot_tag_mismatch_is_corrupt() {
        use snap::SnapState as _;
        let a = Cc::new(CcConfig::cubic(), 50.0, 50.0);
        let mut w = snap::Enc::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut b = Cc::new(CcConfig::bbr(), 50.0, 50.0);
        assert!(b.snap_restore(&mut snap::Dec::new(&bytes)).is_err());
    }

    #[test]
    fn config_snapshot_round_trips() {
        use snap::SnapValue as _;
        for cfg in CcConfig::all() {
            let mut w = snap::Enc::new();
            cfg.save(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(CcConfig::load(&mut snap::Dec::new(&bytes)).unwrap(), cfg);
        }
    }
}
