//! Machine-readable spec ledger for the congestion controllers.
//!
//! `specs/cc.toml` (s2n-quic style: a `target` URL, the clause text, a
//! `quote` the implementation is held to) binds RFC 9002 / RFC 8312 /
//! BBR-draft clauses to the trait methods that implement them and the
//! unit tests that enforce them. This module carries the same ledger as
//! an in-code registry, a dependency-free parser for the TOML subset the
//! ledger uses, and the generated coverage listing
//! (`specs/cc_coverage.md`). A unit test cross-checks file against
//! registry clause-by-clause, so neither can drift without the other.

/// Compliance status of a clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Implemented and enforced by the named tests.
    Checked,
    /// Known gap, documented deliberately.
    Unimplemented,
}

impl Status {
    /// The string the ledger file stores.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Checked => "checked",
            Status::Unimplemented => "unimplemented",
        }
    }

    /// Inverse of [`Status::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "checked" => Some(Status::Checked),
            "unimplemented" => Some(Status::Unimplemented),
            _ => None,
        }
    }
}

/// One ledger entry: a spec quote bound to the code that honors it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Stable identifier (`rfc8312-4.5-mult-decrease`, …).
    pub id: &'static str,
    /// Section URL of the source document.
    pub target: &'static str,
    /// Requirement level (`MUST`/`SHOULD`/`MAY`).
    pub level: &'static str,
    /// The normative sentence(s) the implementation is held to.
    pub quote: &'static str,
    /// The method/type implementing the clause.
    pub binds: &'static str,
    /// Comma-separated unit tests enforcing it (empty if unimplemented).
    pub tests: &'static str,
    /// Whether the clause is enforced or a documented gap.
    pub status: Status,
}

/// The in-code ledger. `specs/cc.toml` must list exactly these clauses.
pub static REGISTRY: &[Clause] = &[
    Clause {
        id: "rfc6298-3-karn",
        target: "https://www.rfc-editor.org/rfc/rfc6298#section-3",
        level: "MUST",
        quote: "RTT samples MUST NOT be made using segments that were \
                retransmitted (and thus for which it is ambiguous whether \
                the reply was for the first instance of the packet or a \
                later instance).",
        binds: "TcpSender::on_ack (send-stamp removal on retransmit)",
        tests: "tcp::tests::karn_excludes_retransmitted_samples",
        status: Status::Checked,
    },
    Clause {
        id: "rfc6298-2-ewma",
        target: "https://www.rfc-editor.org/rfc/rfc6298#section-2",
        level: "MUST",
        quote: "SRTT <- (1 - alpha) * SRTT + alpha * R'; RTTVAR <- (1 - \
                beta) * RTTVAR + beta * |SRTT - R'| ... alpha=1/8 and \
                beta=1/4.",
        binds: "cc::RttEstimator::sample",
        tests: "cc::rtt::tests::srtt_matches_rto_estimator_gains",
        status: Status::Checked,
    },
    Clause {
        id: "bbr-4.1.2-min-rtt-window",
        target: "https://datatracker.ietf.org/doc/html/draft-cardwell-iccrg-bbr-congestion-control-02#section-4.1.2.3",
        level: "SHOULD",
        quote: "BBR.min_rtt = windowed min of the RTT samples measured \
                over the past MinRTTFilterLen = 10 seconds.",
        binds: "cc::RttEstimator (MIN_RTT_WINDOW expiry)",
        tests: "cc::rtt::tests::min_rtt_window_expiry_accepts_a_higher_floor",
        status: Status::Checked,
    },
    Clause {
        id: "rfc9002-7.3.1-slow-start",
        target: "https://www.rfc-editor.org/rfc/rfc9002#section-7.3.1",
        level: "MUST",
        quote: "While a sender is in slow start, the congestion window \
                increases by the number of bytes acknowledged ... Slow \
                start exits when ... the congestion window gets larger \
                than the slow start threshold.",
        binds: "cc::NewReno::on_ack / cc::Cubic::on_ack (cwnd < ssthresh arm)",
        tests: "tcp::tests::slow_start_doubles_per_rtt, \
                cc::newreno::tests::matches_the_classic_arithmetic",
        status: Status::Checked,
    },
    Clause {
        id: "rfc5681-3.1-congestion-avoidance",
        target: "https://www.rfc-editor.org/rfc/rfc5681#section-3.1",
        level: "MUST",
        quote: "During congestion avoidance, cwnd is incremented by \
                roughly 1 full-sized segment per round-trip time (RTT).",
        binds: "cc::NewReno::on_ack (cwnd += 1/cwnd arm)",
        tests: "tcp::tests::congestion_avoidance_grows_slowly",
        status: Status::Checked,
    },
    Clause {
        id: "rfc8312-4.1-window-curve",
        target: "https://www.rfc-editor.org/rfc/rfc8312#section-4.1",
        level: "MUST",
        quote: "W_cubic(t) = C*(t-K)^3 + W_max ... K = cubic_root(W_max*\
                (1-beta_cubic)/C).",
        binds: "cc::Cubic::on_ack / Cubic::begin_epoch",
        tests: "cc::cubic::tests::cubic_region_outgrows_reno_after_long_idle_growth",
        status: Status::Checked,
    },
    Clause {
        id: "rfc8312-4.2-tcp-friendly",
        target: "https://www.rfc-editor.org/rfc/rfc8312#section-4.2",
        level: "MUST",
        quote: "W_est(t) = W_max*beta_cubic + [3*(1-beta_cubic)/\
                (1+beta_cubic)] * (t/RTT) ... If W_cubic(t) is less than \
                W_est(t) ... cwnd SHOULD be set to W_est(t) at each \
                reception of an ACK.",
        binds: "cc::Cubic::on_ack (w_est arm)",
        tests: "cc::cubic::tests::tcp_friendly_region_tracks_reno_at_short_rtt",
        status: Status::Checked,
    },
    Clause {
        id: "rfc8312-4.5-mult-decrease",
        target: "https://www.rfc-editor.org/rfc/rfc8312#section-4.5",
        level: "MUST",
        quote: "When a packet loss is detected ... ssthresh = cwnd * \
                beta_cubic; cwnd = cwnd * beta_cubic ... beta_cubic = 0.7.",
        binds: "cc::Cubic::congestion_event",
        tests: "cc::cubic::tests::multiplicative_decrease_uses_beta_0_7",
        status: Status::Checked,
    },
    Clause {
        id: "rfc8312-4.6-fast-convergence",
        target: "https://www.rfc-editor.org/rfc/rfc8312#section-4.6",
        level: "SHOULD",
        quote: "With fast convergence, when a congestion event occurs, \
                ... if cwnd < W_max, then W_max = cwnd * (2-beta_cubic)/2.",
        binds: "cc::Cubic::congestion_event",
        tests: "cc::cubic::tests::fast_convergence_lowers_the_anchor",
        status: Status::Checked,
    },
    Clause {
        id: "bbr-4.3.2-startup",
        target: "https://datatracker.ietf.org/doc/html/draft-cardwell-iccrg-bbr-congestion-control-02#section-4.3.2",
        level: "SHOULD",
        quote: "BBR uses a pacing_gain of 2/ln(2) ... in Startup ... If \
                BBR.BtlBw has not grown by at least 25% over three \
                non-app-limited round trips, BBR estimates the pipe is \
                full and exits Startup.",
        binds: "cc::Bbr::update (full-pipe detector, STARTUP_GAIN)",
        tests: "cc::bbr::tests::startup_fills_then_drains_then_probes",
        status: Status::Checked,
    },
    Clause {
        id: "bbr-4.3.4-probe-bw",
        target: "https://datatracker.ietf.org/doc/html/draft-cardwell-iccrg-bbr-congestion-control-02#section-4.3.4.2",
        level: "SHOULD",
        quote: "In ProbeBW, BBR cycles through a sequence of gain values \
                ... 1.25, 0.75, 1, 1, 1, 1, 1, 1 ... advancing to the \
                next gain after each BBR.min_rtt interval.",
        binds: "cc::Bbr::update (CYCLE advance; window-target adaptation)",
        tests: "cc::bbr::tests::probe_bw_cycles_gains_deterministically",
        status: Status::Checked,
    },
    Clause {
        id: "bbr-4.3.5-probe-rtt",
        target: "https://datatracker.ietf.org/doc/html/draft-cardwell-iccrg-bbr-congestion-control-02#section-4.3.5",
        level: "SHOULD",
        quote: "If the BBR.min_rtt estimate has not been updated ... for \
                more than 10 seconds, then BBR enters ProbeRTT and \
                reduces the cwnd to ... BBRMinPipeCwnd (four packets) \
                for at least ProbeRTTDuration (200 ms).",
        binds: "cc::Bbr::update (min_rtt_stamp staleness)",
        tests: "cc::bbr::tests::probe_rtt_floors_the_window_and_recovers",
        status: Status::Checked,
    },
    Clause {
        id: "hystart-delay-increase",
        target: "https://datatracker.ietf.org/doc/html/rfc9406#section-4.2",
        level: "SHOULD",
        quote: "If the RTT increase ... exceeds a threshold (RttThresh, \
                clamped to [4 ms, 16 ms]) compared to the minimum RTT of \
                the previous round, exit slow start (set ssthresh to \
                cwnd).",
        binds: "cc::HyStart::on_ack (delay trigger)",
        tests: "cc::hystart::tests::delay_increase_across_rounds_exits, \
                cc::hystart::tests::small_jitter_does_not_exit",
        status: Status::Checked,
    },
    Clause {
        id: "hystart-ack-train",
        target: "https://datatracker.ietf.org/doc/html/rfc9406#section-1",
        level: "MAY",
        quote: "Hybrid slow start ... exits slow start when the length \
                of an ACK train (ACKs spaced no more than 2 ms apart) \
                reaches half of the minimum forward-path one-way delay.",
        binds: "cc::HyStart::on_ack (train trigger)",
        tests: "cc::hystart::tests::ack_train_spanning_half_min_rtt_exits",
        status: Status::Checked,
    },
    Clause {
        id: "rfc9002-7.6-persistent-congestion",
        target: "https://www.rfc-editor.org/rfc/rfc9002#section-7.6",
        level: "SHOULD",
        quote: "When persistent congestion is declared, the sender's \
                congestion window MUST be reduced to the minimum \
                congestion window.",
        binds: "(none — the RTO path plays this role; no distinct \
                persistent-congestion detection)",
        tests: "",
        status: Status::Unimplemented,
    },
    Clause {
        id: "rfc3168-ecn",
        target: "https://www.rfc-editor.org/rfc/rfc3168#section-6.1",
        level: "MAY",
        quote: "Upon the receipt by an ECN-Capable transport of a single \
                CE packet, the congestion control algorithms followed at \
                the end-systems MUST be essentially the same as the \
                congestion control response to a single dropped packet.",
        binds: "(none — the simulated 802.11 MAC carries no ECN marks)",
        tests: "",
        status: Status::Unimplemented,
    },
];

/// A clause parsed back out of `specs/cc.toml`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedClause {
    /// `id` key.
    pub id: String,
    /// `target` key.
    pub target: String,
    /// `level` key.
    pub level: String,
    /// `quote` key (triple-quoted, whitespace-normalized).
    pub quote: String,
    /// `binds` key.
    pub binds: String,
    /// `tests` key.
    pub tests: String,
    /// `status` key.
    pub status: String,
}

/// Parses the TOML subset the ledger uses: `#` comments, `[[spec]]`
/// array-of-table headers, `key = "value"` single-line strings, and
/// `key = '''…'''` multi-line literal strings.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse_ledger(text: &str) -> Result<Vec<ParsedClause>, String> {
    let mut clauses: Vec<ParsedClause> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[spec]]" {
            clauses.push(ParsedClause::default());
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{line}`", n + 1))?;
        let key = key.trim();
        let value = value.trim();
        let parsed = if let Some(rest) = value.strip_prefix("'''") {
            // Multi-line literal string: runs to the closing '''.
            let mut body = String::new();
            if let Some(inline) = rest.strip_suffix("'''") {
                // Opened and closed on one line.
                body.push_str(inline);
            } else {
                body.push_str(rest);
                let mut closed = false;
                for (m, cont) in lines.by_ref() {
                    if let Some(last) = cont.trim_end().strip_suffix("'''") {
                        if !body.is_empty() && !last.is_empty() {
                            body.push('\n');
                        }
                        body.push_str(last);
                        closed = true;
                        let _ = m;
                        break;
                    }
                    if !body.is_empty() && !cont.is_empty() {
                        body.push('\n');
                    }
                    body.push_str(cont);
                }
                if !closed {
                    return Err(format!("line {}: unterminated ''' string", n + 1));
                }
            }
            normalize_ws(&body)
        } else if value.len() >= 2 && value.starts_with('"') && value.ends_with('"') {
            value[1..value.len() - 1].to_string()
        } else {
            return Err(format!("line {}: unsupported value `{value}`", n + 1));
        };
        let clause = clauses
            .last_mut()
            .ok_or_else(|| format!("line {}: `{key}` appears before any [[spec]]", n + 1))?;
        match key {
            "id" => clause.id = parsed,
            "target" => clause.target = parsed,
            "level" => clause.level = parsed,
            "quote" => clause.quote = parsed,
            "binds" => clause.binds = parsed,
            "tests" => clause.tests = parsed,
            "status" => clause.status = parsed,
            other => return Err(format!("line {}: unknown key `{other}`", n + 1)),
        }
    }
    Ok(clauses)
}

/// Collapses all runs of whitespace to single spaces and trims — quotes
/// in the registry and the TOML wrap differently but must compare equal.
pub fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Renders the ledger in the `specs/cc.toml` format.
pub fn render_ledger() -> String {
    let mut out = String::new();
    out.push_str(
        "# Congestion-control spec ledger (s2n-quic style).\n\
         # Binds RFC 9002 / RFC 8312 / BBR-draft / RFC 9406 clause quotes\n\
         # to the trait methods implementing them and the unit tests\n\
         # enforcing them. Cross-checked 1:1 against\n\
         # `gr_transport::cc::spec::REGISTRY` by\n\
         # `cc::spec::tests::ledger_file_matches_registry`; regenerate\n\
         # with GOLDEN_UPDATE=1.\n",
    );
    for c in REGISTRY {
        out.push('\n');
        out.push_str("[[spec]]\n");
        out.push_str(&format!("id = \"{}\"\n", c.id));
        out.push_str(&format!("target = \"{}\"\n", c.target));
        out.push_str(&format!("level = \"{}\"\n", c.level));
        out.push_str("quote = '''\n");
        out.push_str(&wrap(&normalize_ws(c.quote), 68));
        out.push_str("'''\n");
        out.push_str(&format!("binds = \"{}\"\n", normalize_ws(c.binds)));
        out.push_str(&format!("tests = \"{}\"\n", normalize_ws(c.tests)));
        out.push_str(&format!("status = \"{}\"\n", c.status.as_str()));
    }
    out
}

/// Renders the generated coverage listing (`specs/cc_coverage.md`).
pub fn coverage_report() -> String {
    let checked = REGISTRY
        .iter()
        .filter(|c| c.status == Status::Checked)
        .count();
    let mut out = String::new();
    out.push_str("# CC spec coverage\n\n");
    out.push_str(
        "Generated from `gr_transport::cc::spec::REGISTRY` (run the \
         transport tests with `GOLDEN_UPDATE=1` to regenerate). \n\n",
    );
    out.push_str(&format!(
        "**{checked}/{} clauses checked**, {} documented as unimplemented.\n\n",
        REGISTRY.len(),
        REGISTRY.len() - checked
    ));
    out.push_str("| clause | level | status | binds | tests |\n");
    out.push_str("|--------|-------|--------|-------|-------|\n");
    for c in REGISTRY {
        out.push_str(&format!(
            "| [{}]({}) | {} | {} | `{}` | {} |\n",
            c.id,
            c.target,
            c.level,
            c.status.as_str(),
            normalize_ws(c.binds),
            if c.tests.is_empty() {
                "—".to_string()
            } else {
                normalize_ws(c.tests)
                    .split(", ")
                    .map(|t| format!("`{t}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            },
        ));
    }
    out
}

fn wrap(text: &str, width: usize) -> String {
    let mut out = String::new();
    let mut line_len = 0;
    for word in text.split_whitespace() {
        if line_len > 0 && line_len + 1 + word.len() > width {
            out.push('\n');
            line_len = 0;
        } else if line_len > 0 {
            out.push(' ');
            line_len += 1;
        }
        out.push_str(word);
        line_len += word.len();
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const LEDGER: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/cc.toml");
    const COVERAGE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/cc_coverage.md");

    fn update_goldens() -> bool {
        std::env::var_os("GOLDEN_UPDATE").is_some()
    }

    #[test]
    fn parser_handles_the_subset() {
        let text = "# comment\n\n[[spec]]\nid = \"a\"\nquote = '''\nline one\nline two\n'''\nlevel = \"MUST\"\n";
        let parsed = parse_ledger(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].id, "a");
        assert_eq!(parsed[0].quote, "line one line two");
        assert_eq!(parsed[0].level, "MUST");
        assert!(parse_ledger("id = \"orphan\"\n").is_err());
        assert!(parse_ledger("[[spec]]\nquote = '''\nnever closed\n").is_err());
        assert!(parse_ledger("[[spec]]\nid = bare\n").is_err());
    }

    #[test]
    fn ledger_file_matches_registry() {
        if update_goldens() {
            std::fs::write(LEDGER, render_ledger()).unwrap();
            std::fs::write(COVERAGE, coverage_report()).unwrap();
        }
        let text = std::fs::read_to_string(LEDGER).unwrap_or_else(|e| {
            panic!("specs/cc.toml unreadable ({e}); regenerate with GOLDEN_UPDATE=1")
        });
        let parsed = parse_ledger(&text).expect("specs/cc.toml must parse");
        assert_eq!(
            parsed.len(),
            REGISTRY.len(),
            "clause count drifted between specs/cc.toml and the registry"
        );
        for (p, r) in parsed.iter().zip(REGISTRY) {
            assert_eq!(p.id, r.id, "clause order/id drifted");
            assert_eq!(p.target, r.target, "{}: target drifted", r.id);
            assert_eq!(p.level, r.level, "{}: level drifted", r.id);
            assert_eq!(p.quote, normalize_ws(r.quote), "{}: quote drifted", r.id);
            assert_eq!(p.binds, normalize_ws(r.binds), "{}: binds drifted", r.id);
            assert_eq!(p.tests, normalize_ws(r.tests), "{}: tests drifted", r.id);
            assert_eq!(
                Status::parse(&p.status),
                Some(r.status),
                "{}: status drifted",
                r.id
            );
        }
        // The coverage listing is generated; it must match too.
        let cov = std::fs::read_to_string(COVERAGE).unwrap_or_else(|e| {
            panic!("specs/cc_coverage.md unreadable ({e}); regenerate with GOLDEN_UPDATE=1")
        });
        assert_eq!(
            cov,
            coverage_report(),
            "specs/cc_coverage.md is stale; regenerate with GOLDEN_UPDATE=1"
        );
    }

    #[test]
    fn every_checked_clause_names_its_tests() {
        for c in REGISTRY {
            match c.status {
                Status::Checked => assert!(
                    !c.tests.is_empty(),
                    "{}: checked clauses must name enforcing tests",
                    c.id
                ),
                Status::Unimplemented => {
                    assert!(c.tests.is_empty(), "{}: gaps cannot claim tests", c.id)
                }
            }
        }
        // Ids are unique.
        let mut ids: Vec<_> = REGISTRY.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), REGISTRY.len(), "duplicate clause id");
        let _ = Path::new(LEDGER); // keep the path const referenced
    }
}
