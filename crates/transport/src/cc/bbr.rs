//! BBR congestion control (model-based), adapted to the packet-granular
//! sender.
//!
//! BBR estimates the path's bottleneck bandwidth (windowed maximum of
//! per-ACK delivery-rate samples over the last ten round trips) and its
//! propagation delay (the shared windowed-min RTT), and drives the
//! window toward `gain × BDP` through a four-state machine:
//! startup (gain 2/ln 2 ≈ 2.885, doubling per round), drain (back to
//! one BDP of flight), probe-bw (an eight-phase gain cycle
//! `[1.25, 0.75, 1, 1, 1, 1, 1, 1]` advancing once per min-RTT), and
//! probe-rtt (window floor for 200 ms when the min-RTT estimate goes
//! 10 s without improving).
//!
//! **Pacing adaptation.** This sender transmits whenever the window
//! opens — there is no pacing timer (one would add scheduler events and
//! perturb every RNG stream, breaking byte-identity of the NewReno
//! path). The pacing-gain cycle therefore modulates the *window target*
//! (`pacing_gain × cwnd_gain × BDP` in probe-bw) rather than a send
//! rate: phase 1.25 over-fills the pipe to probe for more bandwidth,
//! phase 0.75 drains the queue it built. All inputs are virtual-time
//! quantities, so the controller is exactly as deterministic as the
//! NewReno it replaces.
//!
//! Loss handling is conservative-window style: on fast retransmit the
//! window collapses to the current flight (packet conservation), on RTO
//! to the minimum window; the pre-loss window is restored when recovery
//! exits, because loss is not a model input for BBR.

use sim::{SimDuration, SimTime};

use super::{AckSample, CcObs, CongestionController};

/// Startup/drain gain (2/ln 2).
const STARTUP_GAIN: f64 = 2.885;
/// Steady-state cwnd gain (two BDPs absorb delayed/stretched ACKs).
const CWND_GAIN: f64 = 2.0;
/// Probe-bw pacing-gain cycle (§ probe-bw of the BBR draft).
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Rounds the max-bandwidth filter remembers.
const BW_WINDOW_ROUNDS: u64 = 10;
/// Minimum congestion window, segments.
const MIN_CWND: f64 = 4.0;
/// Time spent at the window floor in probe-rtt.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// Min-RTT staleness that triggers probe-rtt.
const MIN_RTT_STALE: SimDuration = SimDuration::from_secs(10);
/// Bandwidth growth below this factor counts toward "pipe full".
const FULL_BW_GROWTH: f64 = 1.25;
/// Flat rounds before startup concludes the pipe is full.
const FULL_BW_ROUNDS: u32 = 3;

/// The BBR state machine's mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrMode {
    /// Exponential search for the bottleneck bandwidth.
    Startup,
    /// Drain the queue startup built.
    Drain,
    /// Steady state: cycle pacing gains around 1× BDP.
    ProbeBw,
    /// Periodic window floor to re-measure the propagation delay.
    ProbeRtt,
}

impl BbrMode {
    fn tag(self) -> u8 {
        match self {
            BbrMode::Startup => 0,
            BbrMode::Drain => 1,
            BbrMode::ProbeBw => 2,
            BbrMode::ProbeRtt => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, snap::SnapError> {
        match tag {
            0 => Ok(BbrMode::Startup),
            1 => Ok(BbrMode::Drain),
            2 => Ok(BbrMode::ProbeBw),
            3 => Ok(BbrMode::ProbeRtt),
            _ => Err(snap::SnapError::Corrupt(format!("bbr mode tag {tag}"))),
        }
    }
}

/// Windowed maximum of `(round, bandwidth)` samples: the bottleneck
/// bandwidth filter. Samples expire [`BW_WINDOW_ROUNDS`] rounds after
/// they were taken; the kept set is a monotone deque (each entry strictly
/// larger than every later one), so it stays tiny.
#[derive(Debug, Default)]
struct MaxBwFilter {
    samples: Vec<(u64, f64)>,
}

impl MaxBwFilter {
    fn update(&mut self, round: u64, bw: f64) {
        self.samples.retain(|&(r, _)| r + BW_WINDOW_ROUNDS > round);
        while let Some(&(_, last)) = self.samples.last() {
            if last <= bw {
                self.samples.pop();
            } else {
                break;
            }
        }
        self.samples.push((round, bw));
    }

    fn get(&self) -> Option<f64> {
        self.samples.first().map(|&(_, bw)| bw)
    }
}

/// BBR controller state.
#[derive(Debug)]
pub struct Bbr {
    mode: BbrMode,
    cwnd: f64,
    max_window: f64,
    /// Window saved on loss, restored when recovery exits.
    prior_cwnd: f64,
    pacing_gain: f64,
    btl_bw: MaxBwFilter,
    /// Best bandwidth seen by the full-pipe detector.
    full_bw: f64,
    full_bw_count: u32,
    filled_pipe: bool,
    round_count: u64,
    next_round_delivered: u64,
    round_start: bool,
    cycle_index: usize,
    cycle_stamp: SimTime,
    probe_rtt_done_at: Option<SimTime>,
    /// Lowest min-RTT believed so far and when it was last improved —
    /// the probe-rtt staleness clock.
    seen_min_rtt: Option<SimDuration>,
    min_rtt_stamp: SimTime,
    obs: Vec<CcObs>,
}

impl Bbr {
    /// Creates a BBR controller bounded by the receiver window cap.
    pub fn new(max_window: f64) -> Self {
        Bbr {
            mode: BbrMode::Startup,
            cwnd: MIN_CWND,
            max_window,
            prior_cwnd: 0.0,
            pacing_gain: STARTUP_GAIN,
            btl_bw: MaxBwFilter::default(),
            full_bw: 0.0,
            full_bw_count: 0,
            filled_pipe: false,
            round_count: 0,
            next_round_delivered: 0,
            round_start: false,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            probe_rtt_done_at: None,
            seen_min_rtt: None,
            min_rtt_stamp: SimTime::ZERO,
            obs: Vec::new(),
        }
    }

    /// Current mode (test hook).
    pub fn mode(&self) -> BbrMode {
        self.mode
    }

    /// Bottleneck bandwidth estimate, segments/s (test hook).
    pub fn btl_bw(&self) -> Option<f64> {
        self.btl_bw.get()
    }

    /// True once startup decided the pipe is full (test hook).
    pub fn filled_pipe(&self) -> bool {
        self.filled_pipe
    }

    fn bdp(&self, min_rtt: Option<SimDuration>) -> Option<f64> {
        let bw = self.btl_bw.get()?;
        let rtt = min_rtt?;
        Some(bw * rtt.as_secs_f64())
    }

    fn enter(&mut self, mode: BbrMode, sample: &AckSample<'_>) {
        self.mode = mode;
        self.pacing_gain = match mode {
            BbrMode::Startup => STARTUP_GAIN,
            BbrMode::Drain => 1.0 / STARTUP_GAIN,
            BbrMode::ProbeBw => {
                // Deterministic cycle start: phase 2 (the first neutral
                // phase), so a fresh probe-bw neither spikes nor drains.
                self.cycle_index = 2;
                self.cycle_stamp = sample.now;
                CYCLE[self.cycle_index]
            }
            BbrMode::ProbeRtt => 1.0,
        };
        self.obs.push(CcObs::State {
            state: mode.tag(),
            pacing_gain: self.pacing_gain,
            btl_bw_sps: self.btl_bw.get().unwrap_or(0.0),
            min_rtt_us: sample.rtt.min_rtt().map_or(0.0, |d| d.as_micros() as f64),
        });
    }

    /// One model + state-machine step per ACK of new data. `move_cwnd`
    /// is false during fast recovery, where the sender's conservative
    /// window rules; the bandwidth filter still learns from every ACK.
    fn update(&mut self, s: &AckSample<'_>, move_cwnd: bool) {
        // Round accounting and the delivery-rate sample (only ACKs that
        // carry a Karn-valid stamp can produce either).
        if let (Some(delivered_at_send), Some(sent_at)) = (s.delivered_at_send, s.sent_at) {
            if delivered_at_send >= self.next_round_delivered {
                self.next_round_delivered = s.delivered;
                self.round_count += 1;
                self.round_start = true;
            } else {
                self.round_start = false;
            }
            let interval = s.now.saturating_since(sent_at).as_secs_f64();
            if interval > 0.0 {
                let bw = (s.delivered - delivered_at_send) as f64 / interval;
                self.btl_bw.update(self.round_count, bw);
            }
        } else {
            self.round_start = false;
        }

        // Track min-RTT improvements for the probe-rtt staleness clock.
        if let Some(min) = s.rtt.min_rtt() {
            if self.seen_min_rtt.is_none_or(|m| min < m) {
                self.seen_min_rtt = Some(min);
                self.min_rtt_stamp = s.now;
            }
        }

        // Full-pipe detection (startup only, once per round).
        if self.round_start && !self.filled_pipe {
            if let Some(bw) = self.btl_bw.get() {
                if bw >= self.full_bw * FULL_BW_GROWTH {
                    self.full_bw = bw;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= FULL_BW_ROUNDS {
                        self.filled_pipe = true;
                    }
                }
            }
        }

        let min_rtt = s.rtt.min_rtt();

        // State transitions.
        match self.mode {
            BbrMode::Startup => {
                if self.filled_pipe {
                    self.enter(BbrMode::Drain, s);
                }
            }
            BbrMode::Drain => {
                if let Some(bdp) = self.bdp(min_rtt) {
                    if (s.flight as f64) <= bdp {
                        self.enter(BbrMode::ProbeBw, s);
                    }
                }
            }
            BbrMode::ProbeBw => {
                if let Some(mr) = min_rtt {
                    if s.now.saturating_since(self.cycle_stamp) >= mr {
                        self.cycle_index = (self.cycle_index + 1) % CYCLE.len();
                        self.cycle_stamp = s.now;
                        self.pacing_gain = CYCLE[self.cycle_index];
                        if let Some(bw) = self.btl_bw.get() {
                            self.obs.push(CcObs::Pacing {
                                pacing_sps: self.pacing_gain * bw,
                            });
                        }
                    }
                }
            }
            BbrMode::ProbeRtt => {
                if let Some(done) = self.probe_rtt_done_at {
                    if s.now >= done {
                        self.probe_rtt_done_at = None;
                        self.min_rtt_stamp = s.now;
                        self.cwnd = self.cwnd.max(self.prior_cwnd);
                        if self.filled_pipe {
                            self.enter(BbrMode::ProbeBw, s);
                        } else {
                            self.enter(BbrMode::Startup, s);
                        }
                    }
                }
            }
        }

        // Probe-rtt entry: the min-RTT estimate went stale.
        if self.mode != BbrMode::ProbeRtt
            && min_rtt.is_some()
            && s.now.saturating_since(self.min_rtt_stamp) >= MIN_RTT_STALE
        {
            self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
            self.probe_rtt_done_at = Some(s.now + PROBE_RTT_DURATION);
            self.enter(BbrMode::ProbeRtt, s);
        }

        if !move_cwnd {
            return;
        }

        // Window update toward gain × BDP.
        if self.mode == BbrMode::ProbeRtt {
            self.cwnd = MIN_CWND;
        } else if let Some(bdp) = self.bdp(min_rtt) {
            let target = match self.mode {
                BbrMode::Startup => STARTUP_GAIN * bdp,
                BbrMode::Drain => bdp,
                BbrMode::ProbeBw => self.pacing_gain * CWND_GAIN * bdp,
                BbrMode::ProbeRtt => unreachable!("handled above"),
            };
            if self.filled_pipe {
                self.cwnd = (self.cwnd + s.newly_acked).min(target);
            } else {
                // Startup never decreases the window on a smaller
                // target — it is still searching for the ceiling.
                self.cwnd = (self.cwnd + s.newly_acked).max(target.min(self.cwnd));
            }
        } else {
            // No model yet: grow like slow start.
            self.cwnd += s.newly_acked;
        }
        self.cwnd = self.cwnd.clamp(MIN_CWND, self.max_window);
    }
}

impl CongestionController for Bbr {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        // BBR has no slow-start threshold; report the window cap so
        // exports and gauges stay finite.
        self.max_window
    }

    fn on_ack(&mut self, sample: &AckSample<'_>) {
        self.update(sample, true);
    }

    fn on_ack_in_recovery(&mut self, sample: &AckSample<'_>) {
        self.update(sample, false);
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        // Loss is not a model signal: restore the pre-loss window.
        self.cwnd = self
            .cwnd
            .max(self.prior_cwnd)
            .clamp(MIN_CWND, self.max_window);
        self.prior_cwnd = 0.0;
    }

    fn on_loss(&mut self, _now: SimTime, flight: u64) {
        // Packet conservation while the sender repairs the hole.
        self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
        self.cwnd = (flight as f64).clamp(MIN_CWND, self.max_window);
    }

    fn on_rto(&mut self, _now: SimTime, _flight: u64) {
        self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
        self.cwnd = MIN_CWND;
    }

    fn take_obs(&mut self, out: &mut Vec<CcObs>) {
        out.append(&mut self.obs);
    }
}

/// Snapshot = the full model and state machine; `max_window` is
/// configuration. The bandwidth filter serializes its deque verbatim.
impl snap::SnapState for Bbr {
    fn snap_save(&self, w: &mut snap::Enc) {
        use snap::SnapValue as _;
        w.u8(self.mode.tag());
        w.f64(self.cwnd);
        w.f64(self.prior_cwnd);
        w.f64(self.pacing_gain);
        self.btl_bw.samples.save(w);
        w.f64(self.full_bw);
        w.u32(self.full_bw_count);
        w.bool(self.filled_pipe);
        w.u64(self.round_count);
        w.u64(self.next_round_delivered);
        w.bool(self.round_start);
        w.usize(self.cycle_index);
        self.cycle_stamp.save(w);
        self.probe_rtt_done_at.save(w);
        self.seen_min_rtt.save(w);
        self.min_rtt_stamp.save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        use snap::SnapValue as _;
        self.mode = BbrMode::from_tag(r.u8()?)?;
        self.cwnd = r.f64()?;
        self.prior_cwnd = r.f64()?;
        self.pacing_gain = r.f64()?;
        self.btl_bw.samples = Vec::<(u64, f64)>::load(r)?;
        self.full_bw = r.f64()?;
        self.full_bw_count = r.u32()?;
        self.filled_pipe = r.bool()?;
        self.round_count = r.u64()?;
        self.next_round_delivered = r.u64()?;
        self.round_start = r.bool()?;
        self.cycle_index = r.usize()?;
        self.cycle_stamp = SimTime::load(r)?;
        self.probe_rtt_done_at = Option::<SimTime>::load(r)?;
        self.seen_min_rtt = Option::<SimDuration>::load(r)?;
        self.min_rtt_stamp = SimTime::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::RttEstimator;
    use super::*;

    /// Drives the controller like the sender would: a steady pipe with
    /// the given bandwidth (segments/s) and RTT, one cumulative ACK per
    /// segment.
    struct Pipe {
        rtt: RttEstimator,
        now: SimTime,
        delivered: u64,
        rtt_ms: u64,
        seg_per_s: f64,
    }

    impl Pipe {
        fn new(rtt_ms: u64, seg_per_s: f64) -> Self {
            Pipe {
                rtt: RttEstimator::new(),
                now: SimTime::from_millis(1),
                delivered: 0,
                rtt_ms,
                seg_per_s,
            }
        }

        fn step(&mut self, bbr: &mut Bbr) {
            let spacing = SimDuration::from_secs_f64(1.0 / self.seg_per_s);
            self.now += spacing;
            let rtt = SimDuration::from_millis(self.rtt_ms);
            self.rtt.sample(self.now, rtt);
            let sent_at = self.now - rtt;
            // delivered_at_send: what was delivered one RTT ago.
            let behind = (self.seg_per_s * rtt.as_secs_f64()) as u64;
            let delivered_at_send = self.delivered.saturating_sub(behind);
            self.delivered += 1;
            let s = AckSample {
                now: self.now,
                newly_acked: 1.0,
                flight: bbr.cwnd() as u64,
                delivered: self.delivered,
                delivered_at_send: Some(delivered_at_send),
                sent_at: Some(sent_at),
                rtt: &self.rtt,
            };
            bbr.on_ack(&s);
        }
    }

    #[test]
    fn startup_fills_then_drains_then_probes() {
        let mut bbr = Bbr::new(200.0);
        let mut pipe = Pipe::new(10, 500.0);
        let mut saw_drain = false;
        for _ in 0..3000 {
            pipe.step(&mut bbr);
            if bbr.mode() == BbrMode::Drain {
                saw_drain = true;
            }
            if bbr.mode() == BbrMode::ProbeBw {
                break;
            }
        }
        assert!(bbr.filled_pipe(), "flat bandwidth must fill the pipe");
        assert!(saw_drain, "drain must follow startup");
        assert_eq!(bbr.mode(), BbrMode::ProbeBw);
        // The model should have converged near the true 500 seg/s.
        let bw = bbr.btl_bw().unwrap();
        assert!(
            (400.0..=650.0).contains(&bw),
            "btl_bw {bw} far from 500 seg/s"
        );
    }

    #[test]
    fn probe_bw_cycles_gains_deterministically() {
        let mut bbr = Bbr::new(200.0);
        let mut pipe = Pipe::new(10, 500.0);
        for _ in 0..3000 {
            pipe.step(&mut bbr);
            if bbr.mode() == BbrMode::ProbeBw {
                break;
            }
        }
        let start_idx = bbr.cycle_index;
        assert_eq!(start_idx, 2, "probe-bw starts at the neutral phase");
        // Advance ≥ one full cycle: every gain visited in order.
        let mut gains = Vec::new();
        let mut last = bbr.cycle_index;
        for _ in 0..10_000 {
            pipe.step(&mut bbr);
            if bbr.mode() == BbrMode::ProbeRtt {
                continue;
            }
            if bbr.cycle_index != last {
                last = bbr.cycle_index;
                gains.push(bbr.pacing_gain);
                if gains.len() >= 8 {
                    break;
                }
            }
        }
        assert!(gains.len() >= 8, "cycle must advance once per min-RTT");
        assert!(gains.contains(&1.25) && gains.contains(&0.75));
    }

    #[test]
    fn probe_rtt_floors_the_window_and_recovers() {
        let mut bbr = Bbr::new(200.0);
        // RTT never improves after the first sample → stale after 10 s.
        let mut pipe = Pipe::new(10, 500.0);
        let mut entered = false;
        let mut floored = false;
        for _ in 0..12_000 {
            pipe.step(&mut bbr);
            if bbr.mode() == BbrMode::ProbeRtt {
                entered = true;
                if bbr.cwnd() <= MIN_CWND {
                    floored = true;
                }
            }
            if entered && bbr.mode() != BbrMode::ProbeRtt {
                break;
            }
        }
        assert!(entered, "stale min-RTT must trigger probe-rtt");
        assert!(floored, "probe-rtt must floor the window");
        assert!(bbr.mode() != BbrMode::ProbeRtt, "probe-rtt must end");
        assert!(bbr.cwnd() > MIN_CWND, "window must be restored");
    }

    #[test]
    fn loss_collapses_to_flight_and_exit_restores() {
        let mut bbr = Bbr::new(200.0);
        let mut pipe = Pipe::new(10, 500.0);
        for _ in 0..500 {
            pipe.step(&mut bbr);
        }
        let before = bbr.cwnd();
        assert!(before > 10.0);
        bbr.on_loss(pipe.now, 8);
        assert_eq!(bbr.cwnd(), 8.0);
        bbr.on_recovery_exit(pipe.now);
        assert_eq!(bbr.cwnd(), before, "prior cwnd restored after recovery");
    }

    #[test]
    fn max_bw_filter_expires_old_rounds() {
        let mut f = MaxBwFilter::default();
        f.update(1, 100.0);
        f.update(2, 50.0);
        assert_eq!(f.get(), Some(100.0));
        // Round 12: the 100 seg/s sample (round 1) is out of window.
        f.update(12, 60.0);
        assert_eq!(f.get(), Some(60.0));
    }

    #[test]
    fn snapshot_round_trips_mid_probe_bw() {
        use snap::SnapState as _;
        let mut a = Bbr::new(200.0);
        let mut pipe = Pipe::new(10, 500.0);
        for _ in 0..2000 {
            pipe.step(&mut a);
        }
        let mut w = snap::Enc::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut b = Bbr::new(200.0);
        b.snap_restore(&mut snap::Dec::new(&bytes)).unwrap();
        assert_eq!(a.snap_digest(), b.snap_digest());
        // Identical sample stream → identical future state, bit for bit.
        for _ in 0..200 {
            let spacing = SimDuration::from_secs_f64(1.0 / pipe.seg_per_s);
            pipe.now += spacing;
            let rtt_dur = SimDuration::from_millis(pipe.rtt_ms);
            pipe.rtt.sample(pipe.now, rtt_dur);
            let behind = (pipe.seg_per_s * rtt_dur.as_secs_f64()) as u64;
            let delivered_at_send = pipe.delivered.saturating_sub(behind);
            pipe.delivered += 1;
            let s = AckSample {
                now: pipe.now,
                newly_acked: 1.0,
                flight: 20,
                delivered: pipe.delivered,
                delivered_at_send: Some(delivered_at_send),
                sent_at: Some(pipe.now - rtt_dur),
                rtt: &pipe.rtt,
            };
            a.on_ack(&s);
            b.on_ack(&s);
        }
        assert_eq!(a.snap_digest(), b.snap_digest());
        assert_eq!(a.cwnd().to_bits(), b.cwnd().to_bits());
    }
}
