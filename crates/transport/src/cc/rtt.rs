//! Passive round-trip-time estimator shared by every congestion
//! controller.
//!
//! [`RtoEstimator`](crate::rto::RtoEstimator) remains the sole authority
//! for the retransmission timeout; this estimator is a read-only
//! companion fed the *same* Karn-filtered samples, carrying the smoothed
//! RTT, its variance, the latest raw sample, and a windowed minimum the
//! model-based controllers (BBR) and slow-start heuristics (HyStart)
//! consume.

use sim::{SimDuration, SimTime};

/// Default expiry window for the minimum-RTT filter (BBR's 10 s).
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Smoothed/minimum RTT tracker (RFC 6298 gains, windowed min).
///
/// The minimum filter keeps the lowest sample seen in the last
/// [`MIN_RTT_WINDOW`]; once the held minimum is older than the window,
/// the next sample replaces it unconditionally so a route change that
/// raises the floor is eventually believed.
///
/// # Examples
///
/// ```
/// use gr_transport::cc::RttEstimator;
/// use sim::{SimDuration, SimTime};
///
/// let mut r = RttEstimator::new();
/// r.sample(SimTime::from_millis(5), SimDuration::from_millis(10));
/// assert_eq!(r.min_rtt(), Some(SimDuration::from_millis(10)));
/// ```
#[derive(Debug, Clone)]
pub struct RttEstimator {
    latest: Option<SimDuration>,
    srtt: Option<f64>,
    rttvar: f64,
    min_rtt: Option<SimDuration>,
    min_rtt_at: SimTime,
    window: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator with the default 10 s minimum window.
    pub fn new() -> Self {
        RttEstimator {
            latest: None,
            srtt: None,
            rttvar: 0.0,
            min_rtt: None,
            min_rtt_at: SimTime::ZERO,
            window: MIN_RTT_WINDOW,
        }
    }

    /// Incorporates a (Karn-filtered) RTT sample taken at `now`.
    pub fn sample(&mut self, now: SimTime, rtt: SimDuration) {
        self.latest = Some(rtt);
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let expired = now.saturating_since(self.min_rtt_at) > self.window;
        match self.min_rtt {
            Some(min) if rtt >= min && !expired => {}
            _ => {
                self.min_rtt = Some(rtt);
                self.min_rtt_at = now;
            }
        }
    }

    /// The most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// RTT variance (RFC 6298 `RTTVAR`), in seconds.
    pub fn rttvar(&self) -> f64 {
        self.rttvar
    }

    /// Windowed minimum RTT.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Age of the held minimum at `now`.
    pub fn min_rtt_age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.min_rtt_at)
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new()
    }
}

impl snap::SnapValue for RttEstimator {
    fn save(&self, w: &mut snap::Enc) {
        self.latest.save(w);
        self.srtt.save(w);
        w.f64(self.rttvar);
        self.min_rtt.save(w);
        self.min_rtt_at.save(w);
        self.window.save(w);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(RttEstimator {
            latest: Option::<SimDuration>::load(r)?,
            srtt: Option::<f64>::load(r)?,
            rttvar: r.f64()?,
            min_rtt: Option::<SimDuration>::load(r)?,
            min_rtt_at: SimTime::load(r)?,
            window: SimDuration::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_rtt_tracks_the_lowest_sample() {
        let mut r = RttEstimator::new();
        r.sample(SimTime::from_millis(1), SimDuration::from_millis(20));
        r.sample(SimTime::from_millis(2), SimDuration::from_millis(10));
        r.sample(SimTime::from_millis(3), SimDuration::from_millis(30));
        assert_eq!(r.min_rtt(), Some(SimDuration::from_millis(10)));
    }

    #[test]
    fn min_rtt_window_expiry_accepts_a_higher_floor() {
        let mut r = RttEstimator::new();
        r.sample(SimTime::from_secs(1), SimDuration::from_millis(5));
        // Within the window a larger sample does not displace the min.
        r.sample(SimTime::from_secs(5), SimDuration::from_millis(50));
        assert_eq!(r.min_rtt(), Some(SimDuration::from_millis(5)));
        // Past the 10 s window the held min is stale: the next sample
        // replaces it even though it is larger.
        r.sample(SimTime::from_secs(12), SimDuration::from_millis(40));
        assert_eq!(r.min_rtt(), Some(SimDuration::from_millis(40)));
        assert_eq!(r.min_rtt_age(SimTime::from_secs(12)), SimDuration::ZERO);
    }

    #[test]
    fn srtt_matches_rto_estimator_gains() {
        // Same α=1/8, β=1/4 recurrence as RtoEstimator.
        let mut r = RttEstimator::new();
        r.sample(SimTime::from_millis(1), SimDuration::from_millis(100));
        assert!((r.srtt().unwrap().as_secs_f64() - 0.1).abs() < 1e-9);
        assert!((r.rttvar() - 0.05).abs() < 1e-9);
        r.sample(SimTime::from_millis(2), SimDuration::from_millis(200));
        let expect = 0.875 * 0.1 + 0.125 * 0.2;
        assert!((r.srtt().unwrap().as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn snapshot_round_trips() {
        use snap::SnapValue as _;
        let mut r = RttEstimator::new();
        r.sample(SimTime::from_millis(7), SimDuration::from_millis(13));
        let mut w = snap::Enc::new();
        r.save(&mut w);
        let bytes = w.into_bytes();
        let b = RttEstimator::load(&mut snap::Dec::new(&bytes)).unwrap();
        assert_eq!(b.latest(), r.latest());
        assert_eq!(b.min_rtt(), r.min_rtt());
        assert_eq!(b.srtt(), r.srtt());
    }
}
