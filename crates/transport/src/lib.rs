//! Transport protocols for the greedy80211 simulator.
//!
//! * [`tcp`] — a TCP Reno sender/receiver pair (packet-granular, ns-2
//!   style) with slow start, congestion avoidance, fast retransmit/fast
//!   recovery and RTO handling. TCP matters to the paper twice over: TCP
//!   ACKs are MAC *data* frames a greedy receiver can inflate NAVs on, and
//!   TCP congestion control is what ACK spoofing weaponizes.
//! * [`udp`] — constant-bit-rate sources and duplicate-filtering sinks,
//!   plus probe bookkeeping for the fake-ACK detector.
//! * [`packet`] — the [`Segment`] type that rides inside 802.11 data
//!   frames, implementing [`mac::Msdu`].
//! * [`rto`] — RFC 6298-style retransmission-timeout estimation.
//! * [`cc`] — pluggable congestion controllers (NewReno, CUBIC, BBR,
//!   optional HyStart slow-start exit) behind the
//!   [`cc::CongestionController`] trait, plus the machine-readable spec
//!   ledger binding RFC clauses to code and tests.

#![warn(missing_docs)]
pub mod cc;
pub mod obs;
pub mod packet;
pub mod rto;
pub mod tcp;
pub mod udp;

pub use cc::{CcAlgorithm, CcConfig, CongestionController, RttEstimator};
pub use packet::{FlowId, Segment};
pub use rto::RtoEstimator;
pub use tcp::{TcpConfig, TcpOutput, TcpReceiver, TcpSender};
pub use udp::{CbrSource, ProbeStats, UdpSink};
