//! Hierarchical timing wheel: the event store behind [`crate::Scheduler`].
//!
//! Events live in a generation-stamped slab; the wheel itself only holds
//! `(slot index, generation)` pairs, bucketed by expiry tick (1 tick =
//! 1024 ns) across [`LEVELS`] wheels of [`SLOTS`] buckets each. Level `k`
//! buckets span `64^k` ticks, so scheduling and cancelling are O(1): a
//! schedule appends to one bucket, a cancel bumps the slab slot's
//! generation and frees it — stale `(index, generation)` pairs left in
//! buckets are discarded when their bucket drains.
//!
//! Events beyond the wheel's horizon (`64^LEVELS` ticks ≈ 18 virtual
//! minutes from the cursor) wait in a small overflow heap and migrate
//! into the wheel as the cursor approaches them.
//!
//! Dispatch order is exactly the order a stable `(time, seq)` priority
//! queue would produce: buckets are drained earliest-first into a sorted
//! `ready` staging buffer, and every drain re-sorts by `(time, seq)`, so
//! same-timestamp events pop in insertion (sequence) order. This is what
//! keeps simulation output byte-identical with the old binary-heap queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use snap::SnapValue as _;

use crate::time::SimTime;

/// Bits per wheel level (64 slots).
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of hierarchical levels.
const LEVELS: usize = 5;
/// One tick is 2^10 ns = 1.024 µs.
const TICK_SHIFT: u32 = 10;
/// Ticks covered by the whole wheel; farther events overflow to the heap.
const SPAN_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Generation-stamped reference to a scheduled event's slab slot.
///
/// Obtained from [`crate::Scheduler::arm`]; used to cancel or re-arm the
/// event. A handle whose event already fired (or was cancelled) is
/// *stale*: the slot's generation has moved on, so every operation
/// through the handle is a detectable no-op — nothing is leaked and no
/// unrelated event can be hit, even after the slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

impl snap::SnapValue for TimerHandle {
    fn save(&self, w: &mut snap::Enc) {
        w.u32(self.idx);
        w.u32(self.gen);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(TimerHandle {
            idx: r.u32()?,
            gen: r.u32()?,
        })
    }
}

#[derive(Debug)]
struct SlabEntry<E> {
    gen: u32,
    time: SimTime,
    seq: u64,
    event: Option<E>,
}

/// An entry staged for dispatch, mirrored from the slab for sorting.
#[derive(Debug, Clone, Copy)]
struct Ready {
    time: SimTime,
    seq: u64,
    idx: u32,
    gen: u32,
}

/// The wheel structure. `pop` yields events in `(time, seq)` order.
#[derive(Debug)]
pub(crate) struct Wheel<E> {
    slab: Vec<SlabEntry<E>>,
    free: Vec<u32>,
    /// `buckets[level][slot]` holds `(slab index, generation)` pairs.
    buckets: Vec<Vec<(u32, u32)>>,
    occupied: [u64; LEVELS],
    /// Tick of the last drained bucket start; never decreases.
    cursor: u64,
    /// Due entries sorted descending by `(time, seq)` — pop from the end.
    ready: Vec<Ready>,
    /// Far-future events: `(tick, slab index, generation)`.
    overflow: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// Scratch buffer reused across bucket drains.
    scratch: Vec<(u32, u32)>,
    live: usize,
}

fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> TICK_SHIFT
}

impl<E> Wheel<E> {
    pub(crate) fn new() -> Self {
        Wheel {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            ready: Vec::new(),
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (schedulable, not yet fired or cancelled) events.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Slab slots ever allocated — bounded by the peak number of
    /// *concurrently* live events, which is what proves cancel/fire
    /// reclaims slots instead of leaking them.
    #[cfg(test)]
    pub(crate) fn slab_len(&self) -> usize {
        self.slab.len()
    }

    pub(crate) fn insert(&mut self, time: SimTime, seq: u64, event: E) -> TimerHandle {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(SlabEntry {
                    gen: 0,
                    time,
                    seq,
                    event: None,
                });
                (self.slab.len() - 1) as u32
            }
        };
        let entry = &mut self.slab[idx as usize];
        entry.time = time;
        entry.seq = seq;
        entry.event = Some(event);
        let gen = entry.gen;
        self.live += 1;
        let tick = tick_of(time);
        if tick <= self.cursor {
            // Due within the bucket the cursor already drained: stage it
            // directly, keeping the descending (time, seq) sort.
            let key = (time, seq);
            let pos = self.ready.partition_point(|r| (r.time, r.seq) > key);
            self.ready.insert(
                pos,
                Ready {
                    time,
                    seq,
                    idx,
                    gen,
                },
            );
        } else {
            self.place(idx, gen, tick);
        }
        TimerHandle { idx, gen }
    }

    /// Cancels the handle's event. Returns it, or `None` if the handle is
    /// stale (already fired, cancelled, or re-armed).
    pub(crate) fn cancel(&mut self, h: TimerHandle) -> Option<E> {
        let entry = self.slab.get_mut(h.idx as usize)?;
        if entry.gen != h.gen {
            return None;
        }
        let ev = entry.event.take()?;
        self.release(h.idx);
        Some(ev)
    }

    /// Frees a slab slot whose event was just taken, invalidating every
    /// outstanding handle/bucket reference to it.
    fn release(&mut self, idx: u32) {
        let entry = &mut self.slab[idx as usize];
        debug_assert!(entry.event.is_none());
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
    }

    /// Buckets `(idx, gen)` by its expiry tick, which must be > cursor.
    fn place(&mut self, idx: u32, gen: u32, tick: u64) {
        debug_assert!(tick > self.cursor);
        let diff = tick ^ self.cursor;
        if diff >> (SLOT_BITS * LEVELS as u32) != 0 {
            self.overflow.push(Reverse((tick, idx, gen)));
            return;
        }
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.buckets[level * SLOTS + slot].push((idx, gen));
        self.occupied[level] |= 1 << slot;
    }

    fn is_stale(&self, idx: u32, gen: u32) -> bool {
        let e = &self.slab[idx as usize];
        e.gen != gen || e.event.is_none()
    }

    /// Earliest occupied bucket as `(level, slot, start tick)`.
    fn earliest_bucket(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            // Within a level every occupied slot shares the cursor's
            // higher-level digits, so the lowest slot is the earliest.
            let slot = self.occupied[level].trailing_zeros() as usize;
            let width = SLOT_BITS * (level as u32 + 1);
            let base = (self.cursor >> width) << width;
            let start = base + ((slot as u64) << (SLOT_BITS * level as u32));
            debug_assert!(start >= self.cursor, "bucket behind cursor");
            if best.is_none_or(|(_, _, b)| start < b) {
                best = Some((level, slot, start));
            }
        }
        best
    }

    /// Drains buckets until the earliest pending event sits at the back
    /// of `ready` (or the wheel is empty).
    fn ensure_ready(&mut self) {
        loop {
            // Prune stale staged entries so they never block the scan.
            while let Some(r) = self.ready.last() {
                if self.is_stale(r.idx, r.gen) {
                    self.ready.pop();
                } else {
                    break;
                }
            }
            // Pull overflow events that now fit in the wheel. The test
            // is XOR, not distance: a bucket exists for `tick` only when
            // it shares the cursor's 64^LEVELS-aligned block, and ticks
            // merely *near* the cursor but across the block boundary
            // must keep waiting — re-placing them would bounce them
            // straight back here, looping forever. Min-heap order makes
            // breaking on the first unplaceable tick sound: every later
            // tick is larger, hence also beyond the cursor's block.
            while let Some(&Reverse((tick, idx, gen))) = self.overflow.peek() {
                if tick > self.cursor && (tick ^ self.cursor) >= SPAN_TICKS {
                    break;
                }
                self.overflow.pop();
                if self.is_stale(idx, gen) {
                    continue;
                }
                let (time, seq) = {
                    let e = &self.slab[idx as usize];
                    (e.time, e.seq)
                };
                if tick <= self.cursor {
                    let key = (time, seq);
                    let pos = self.ready.partition_point(|r| (r.time, r.seq) > key);
                    self.ready.insert(
                        pos,
                        Ready {
                            time,
                            seq,
                            idx,
                            gen,
                        },
                    );
                } else {
                    self.place(idx, gen, tick);
                }
            }
            let Some((level, slot, start)) = self.earliest_bucket() else {
                // Wheel empty. If only far-overflow events remain, jump
                // the cursor to them so migration can make progress.
                if self.ready.is_empty() {
                    if let Some(&Reverse((tick, _, _))) = self.overflow.peek() {
                        self.cursor = self.cursor.max(tick);
                        continue;
                    }
                }
                return;
            };
            if let Some(r) = self.ready.last() {
                if start > tick_of(r.time) {
                    // Every wheel event is in a strictly later bucket
                    // than the staged front: the front is the earliest.
                    return;
                }
            }
            // Drain the bucket through the reusable scratch buffer so the
            // bucket's capacity survives for its next occupants.
            std::mem::swap(&mut self.buckets[level * SLOTS + slot], &mut self.scratch);
            self.occupied[level] &= !(1 << slot);
            self.cursor = start;
            let mut staged = false;
            let mut scratch = std::mem::take(&mut self.scratch);
            for (idx, gen) in scratch.drain(..) {
                if self.is_stale(idx, gen) {
                    continue;
                }
                let (time, seq) = {
                    let e = &self.slab[idx as usize];
                    (e.time, e.seq)
                };
                let tick = tick_of(time);
                if tick <= self.cursor {
                    self.ready.push(Ready {
                        time,
                        seq,
                        idx,
                        gen,
                    });
                    staged = true;
                } else {
                    // Upper-level bucket: cascade closer to the cursor.
                    self.place(idx, gen, tick);
                }
            }
            self.scratch = scratch;
            if staged {
                self.ready
                    .sort_unstable_by_key(|r| std::cmp::Reverse((r.time, r.seq)));
            }
        }
    }

    /// Timestamp of the earliest live event, without dispatching it.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.ensure_ready();
            match self.ready.last() {
                None => return None,
                Some(r) if self.is_stale(r.idx, r.gen) => {
                    self.ready.pop();
                }
                Some(r) => return Some(r.time),
            }
        }
    }

    /// Serializes the wheel's canonical state: cursor, slab verbatim in
    /// index order (generation + live payload), free list verbatim, live
    /// count. Buckets, the staged `ready` buffer and the overflow heap
    /// are *derived placement*, not state — which bucket a timer sits in
    /// depends on cursor history, so including it would make the digest
    /// (and hence the audit ladder) differ between two runs that will
    /// dispatch identically. [`Wheel::from_snapshot`] re-derives
    /// placement from the serialized cursor instead.
    pub(crate) fn snap_save(&self, w: &mut snap::Enc)
    where
        E: snap::SnapValue,
    {
        w.u64(self.cursor);
        w.usize(self.slab.len());
        for e in &self.slab {
            w.u32(e.gen);
            match &e.event {
                Some(ev) => {
                    w.bool(true);
                    w.u64(e.time.as_nanos());
                    w.u64(e.seq);
                    ev.save(w);
                }
                None => w.bool(false),
            }
        }
        self.free.save(w);
        w.usize(self.live);
    }

    /// Rebuilds a wheel from [`Wheel::snap_save`]'s encoding.
    ///
    /// Live timers whose tick is at or behind the restored cursor go
    /// straight to the `ready` staging buffer (the invariant the running
    /// wheel maintains); the rest are re-bucketed against the restored
    /// cursor. Free-list order is preserved verbatim so post-restore
    /// inserts assign the same `(idx, gen)` pairs the uninterrupted run
    /// would have.
    pub(crate) fn from_snapshot(r: &mut snap::Dec) -> Result<Self, snap::SnapError>
    where
        E: snap::SnapValue,
    {
        let cursor = r.u64()?;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(snap::SnapError::Corrupt(format!(
                "wheel slab count {n} exceeds input"
            )));
        }
        let mut w = Wheel::new();
        w.cursor = cursor;
        for _ in 0..n {
            let gen = r.u32()?;
            let entry = if r.bool()? {
                let time = SimTime::from_nanos(r.u64()?);
                let seq = r.u64()?;
                let event = E::load(r)?;
                SlabEntry {
                    gen,
                    time,
                    seq,
                    event: Some(event),
                }
            } else {
                SlabEntry {
                    gen,
                    time: SimTime::ZERO,
                    seq: 0,
                    event: None,
                }
            };
            w.slab.push(entry);
        }
        w.free = Vec::<u32>::load(r)?;
        let live = r.usize()?;
        for idx in 0..w.slab.len() {
            let (time, seq, gen) = {
                let e = &w.slab[idx];
                if e.event.is_none() {
                    continue;
                }
                (e.time, e.seq, e.gen)
            };
            w.live += 1;
            let tick = tick_of(time);
            if tick <= w.cursor {
                w.ready.push(Ready {
                    time,
                    seq,
                    idx: idx as u32,
                    gen,
                });
            } else {
                w.place(idx as u32, gen, tick);
            }
        }
        w.ready
            .sort_unstable_by_key(|r| std::cmp::Reverse((r.time, r.seq)));
        if w.live != live {
            return Err(snap::SnapError::Corrupt(format!(
                "wheel live count {live} != occupied slots {}",
                w.live
            )));
        }
        Ok(w)
    }

    /// Removes and returns the earliest live event.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.ensure_ready();
            let r = self.ready.pop()?;
            if self.is_stale(r.idx, r.gen) {
                continue;
            }
            let ev = self.slab[r.idx as usize]
                .event
                .take()
                .expect("live entry has an event");
            self.release(r.idx);
            return Some((r.time, ev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut Wheel<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| w.pop().map(|(t, e)| (t.as_nanos(), e))).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = Wheel::new();
        w.insert(SimTime::from_nanos(5_000), 0, 1);
        w.insert(SimTime::from_nanos(100), 1, 2);
        w.insert(SimTime::from_nanos(5_000), 2, 3);
        w.insert(SimTime::from_nanos(70_000_000), 3, 4); // level > 0
        assert_eq!(
            drain(&mut w),
            vec![(100, 2), (5_000, 1), (5_000, 3), (70_000_000, 4)]
        );
    }

    #[test]
    fn far_future_goes_through_overflow() {
        let mut w = Wheel::new();
        // ~20 virtual hours: far beyond the wheel span.
        let far = SimTime::from_nanos(72_000_000_000_000);
        w.insert(far, 0, 9);
        w.insert(SimTime::from_nanos(10), 1, 1);
        assert!(!w.overflow.is_empty());
        assert_eq!(drain(&mut w), vec![(10, 1), (72_000_000_000_000, 9)]);
    }

    #[test]
    fn cancel_is_exact_and_reclaims_slots() {
        let mut w = Wheel::new();
        let a = w.insert(SimTime::from_nanos(1_000), 0, 1);
        let b = w.insert(SimTime::from_nanos(2_000), 1, 2);
        assert_eq!(w.cancel(a), Some(1));
        assert_eq!(w.cancel(a), None, "double cancel is a no-op");
        assert_eq!(w.len(), 1);
        // The freed slot is reused; the old handle stays dead.
        let c = w.insert(SimTime::from_nanos(3_000), 2, 3);
        assert_eq!(c.idx, a.idx);
        assert_ne!(c.gen, a.gen);
        assert_eq!(w.cancel(a), None);
        assert_eq!(drain(&mut w), vec![(2_000, 2), (3_000, 3)]);
        let _ = b;
        assert_eq!(w.slab_len(), 2);
    }

    #[test]
    fn overflow_across_block_boundary_terminates() {
        // Two events in different 64^LEVELS-aligned blocks, closer
        // together than the wheel span. After the first dispatches, the
        // second is near the cursor by *distance* but has no bucket in
        // the cursor's block — it must wait in overflow (not bounce
        // between overflow and placement forever) and still fire.
        let span_ns = SPAN_TICKS << TICK_SHIFT;
        let a = span_ns * 2 - 1_000; // end of block 1
        let b = span_ns * 2 + 1_000; // start of block 2
        assert!((tick_of(SimTime::from_nanos(a)) ^ tick_of(SimTime::from_nanos(b))) >= SPAN_TICKS);
        let mut w = Wheel::new();
        w.insert(SimTime::from_nanos(a), 0, 1);
        w.insert(SimTime::from_nanos(b), 1, 2);
        w.insert(SimTime::from_nanos(50), 2, 3);
        assert_eq!(drain(&mut w), vec![(50, 3), (a, 1), (b, 2)]);
    }

    #[test]
    fn insert_behind_cursor_stays_ordered() {
        let mut w = Wheel::new();
        w.insert(SimTime::from_nanos(50_000), 0, 1);
        assert_eq!(w.pop().map(|(_, e)| e), Some(1));
        // Same bucket as the cursor, later seq.
        w.insert(SimTime::from_nanos(50_100), 1, 2);
        w.insert(SimTime::from_nanos(50_050), 2, 3);
        assert_eq!(drain(&mut w), vec![(50_050, 3), (50_100, 2)]);
    }
}
