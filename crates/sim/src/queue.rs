//! Stable priority queue of timestamped events.
//!
//! Events scheduled for the same instant pop in insertion order, which is
//! what makes simulation runs reproducible: the heap key is
//! `(time, sequence)` where `sequence` is a monotonically increasing
//! insertion counter.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation via
/// [`crate::Scheduler::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering is on (time, seq) only; the event payload does not participate.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-priority queue of `(SimTime, E)` pairs with stable FIFO ordering
/// among equal timestamps.
///
/// # Examples
///
/// ```
/// use gr_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(10), 'b');
/// q.push(SimTime::from_micros(10), 'c');
/// q.push(SimTime::from_micros(1), 'a');
/// assert_eq!(q.pop().map(|(_, _, e)| e), Some('a'));
/// assert_eq!(q.pop().map(|(_, _, e)| e), Some('b'));
/// assert_eq!(q.pop().map(|(_, _, e)| e), Some('c'));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Inserts `event` at `time`, returning an [`EventId`] that identifies
    /// this insertion.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        EventId(seq)
    }

    /// Removes and returns the earliest `(time, id, event)`, breaking
    /// timestamp ties in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.heap
            .pop()
            .map(|Reverse(e)| (e.time, EventId(e.seq), e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, ());
        let b = q.push(SimTime::ZERO, ());
        assert!(b > a);
    }
}
