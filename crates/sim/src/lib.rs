//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation of the `greedy80211` simulator: it provides
//! virtual time ([`SimTime`], [`SimDuration`]), a cancellable [`Scheduler`]
//! backed by a hierarchical timing wheel (O(1) arm/cancel through
//! generation-stamped [`TimerHandle`]s), allocation-free hot-path storage
//! ([`Arena`], [`Pool`]), seedable deterministic random-number generation
//! ([`SimRng`]) and small statistics primitives used by every layer above
//! (PHY, MAC, transport, experiments). The stable binary-heap
//! [`EventQueue`] remains as the reference model the wheel is
//! property-tested against.
//!
//! Determinism is a design goal: two runs with the same seed and the same
//! configuration produce identical results. All ties in the event queue are
//! broken by insertion order, and all randomness flows from a single
//! user-provided seed through [`SimRng::fork`] substreams.
//!
//! # Examples
//!
//! ```
//! use gr_sim::{Scheduler, SimDuration};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.arm(SimDuration::from_micros(10), "b");
//! sched.arm(SimDuration::from_micros(5), "a");
//! let (t, ev) = sched.next().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t.as_micros(), 5);
//! ```

#![warn(missing_docs)]
pub mod error;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
mod wheel;

pub use error::SimError;
pub use pool::{Arena, ArenaHandle, Pool, PooledBox, Recycle};
pub use queue::{EventId, EventQueue};
pub use rng::{RunKey, SimRng};
pub use sched::{Scheduler, TimerHandle};
pub use stats::{Counter, Histogram, LogHistogram, Mean, TimeWeightedMean};
pub use time::{SimDuration, SimTime};
