//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation of the `greedy80211` simulator: it provides
//! virtual time ([`SimTime`], [`SimDuration`]), a stable priority event queue
//! ([`EventQueue`]), a cancellable [`Scheduler`], seedable deterministic
//! random-number generation ([`SimRng`]) and small statistics primitives used
//! by every layer above (PHY, MAC, transport, experiments).
//!
//! Determinism is a design goal: two runs with the same seed and the same
//! configuration produce identical results. All ties in the event queue are
//! broken by insertion order, and all randomness flows from a single
//! user-provided seed through [`SimRng::fork`] substreams.
//!
//! # Examples
//!
//! ```
//! use gr_sim::{Scheduler, SimDuration};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule_in(SimDuration::from_micros(10), "b");
//! sched.schedule_in(SimDuration::from_micros(5), "a");
//! let (t, ev) = sched.next().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t.as_micros(), 5);
//! ```

#![warn(missing_docs)]
pub mod error;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use error::SimError;
pub use queue::{EventId, EventQueue};
pub use rng::{RunKey, SimRng};
pub use sched::Scheduler;
pub use stats::{Counter, Histogram, LogHistogram, Mean, TimeWeightedMean};
pub use time::{SimDuration, SimTime};
