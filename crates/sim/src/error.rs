//! Error types shared across the simulator crates.

use std::error::Error;
use std::fmt;

/// Error produced when building or running a simulation with invalid
/// configuration.
///
/// # Examples
///
/// ```
/// use gr_sim::SimError;
/// let e = SimError::invalid_config("bit error rate must be in [0, 1]");
/// assert_eq!(e.to_string(), "invalid configuration: bit error rate must be in [0, 1]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration parameter was out of range or inconsistent.
    InvalidConfig(String),
    /// A referenced entity (node, flow, link) does not exist.
    UnknownEntity(String),
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        SimError::InvalidConfig(msg.into())
    }

    /// Convenience constructor for [`SimError::UnknownEntity`].
    pub fn unknown_entity(msg: impl Into<String>) -> Self {
        SimError::UnknownEntity(msg.into())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            SimError::UnknownEntity(m) => write!(f, "unknown entity: {m}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error_trait() {
        let e = SimError::unknown_entity("node 7");
        assert_eq!(e.to_string(), "unknown entity: node 7");
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.source().is_none());
    }
}
