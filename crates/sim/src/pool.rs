//! Allocation-free hot-path storage: a generation-checked [`Arena`] for
//! records referenced from in-flight events, and a recycling [`Pool`] of
//! reusable buffers handed out as RAII [`PooledBox`]es.
//!
//! Both exist for the same reason the scheduler grew a timing wheel: the
//! simulator dispatches millions of events per run, and a heap
//! allocation (or `HashMap` probe) per event dominates the profile. The
//! arena replaces `HashMap<u64, T>` keyed by monotonically growing ids;
//! the pool replaces `Vec::new()` per MAC handler invocation.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Generation-stamped key into an [`Arena`].
///
/// A handle taken from [`Arena::insert`] stays valid until that entry is
/// [`Arena::remove`]d; afterwards it is *stale* and every lookup through
/// it returns `None`, even if the slot has been reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaHandle {
    idx: u32,
    gen: u32,
}

impl ArenaHandle {
    /// Reassembles a handle from its raw parts, for typed wrappers (the
    /// MAC frame arena) that mint their own handle type over an `Arena`.
    /// A fabricated handle is safe: lookups through a wrong generation
    /// just return `None`.
    pub fn from_raw(idx: u32, gen: u32) -> Self {
        ArenaHandle { idx, gen }
    }

    /// Slot index of this handle.
    pub fn idx(&self) -> u32 {
        self.idx
    }

    /// Generation stamp of this handle.
    pub fn gen(&self) -> u32 {
        self.gen
    }
}

#[derive(Debug)]
struct ArenaSlot<T> {
    gen: u32,
    value: Option<T>,
}

/// Slab with a free-list: O(1) insert/lookup/remove, indices reused,
/// stale handles detected by generation mismatch.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<ArenaSlot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stores `value`, returning its handle.
    pub fn insert(&mut self, value: T) -> ArenaHandle {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(ArenaSlot {
                    gen: 0,
                    value: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.value.is_none());
        slot.value = Some(value);
        self.live += 1;
        ArenaHandle { idx, gen: slot.gen }
    }

    /// Looks up a handle; `None` if it is stale.
    pub fn get(&self, h: ArenaHandle) -> Option<&T> {
        let slot = self.slots.get(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable lookup; `None` if the handle is stale.
    pub fn get_mut(&mut self, h: ArenaHandle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the entry, freeing its slot. Stale handles
    /// return `None` and change nothing.
    pub fn remove(&mut self, h: ArenaHandle) -> Option<T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        let value = slot.value.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
        Some(value)
    }

    /// Iterates over live entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.value.as_ref())
    }

    /// Iterates over live `(handle, entry)` pairs in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (ArenaHandle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    ArenaHandle {
                        idx: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }

    /// Keeps only the entries for which `keep` returns `true`.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot.value.as_ref() {
                if !keep(v) {
                    slot.value = None;
                    slot.gen = slot.gen.wrapping_add(1);
                    self.free.push(i as u32);
                    self.live -= 1;
                }
            }
        }
    }
}

impl snap::SnapValue for ArenaHandle {
    fn save(&self, w: &mut snap::Enc) {
        w.u32(self.idx);
        w.u32(self.gen);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(ArenaHandle {
            idx: r.u32()?,
            gen: r.u32()?,
        })
    }
}

/// Slots and free list are serialized verbatim (in index order) so that
/// outstanding [`ArenaHandle`]s stay valid across a restore and future
/// inserts reuse slots in exactly the pre-snapshot order.
impl<T: snap::SnapValue> snap::SnapValue for Arena<T> {
    fn save(&self, w: &mut snap::Enc) {
        w.usize(self.slots.len());
        for s in &self.slots {
            w.u32(s.gen);
            s.value.save(w);
        }
        self.free.save(w);
        w.usize(self.live);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(snap::SnapError::Corrupt(format!(
                "arena slot count {n} exceeds input"
            )));
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let gen = r.u32()?;
            let value = Option::<T>::load(r)?;
            slots.push(ArenaSlot { gen, value });
        }
        let free = Vec::<u32>::load(r)?;
        let live = r.usize()?;
        let occupied = slots.iter().filter(|s| s.value.is_some()).count();
        if occupied != live {
            return Err(snap::SnapError::Corrupt(format!(
                "arena live count {live} != occupied slots {occupied}"
            )));
        }
        Ok(Arena { slots, free, live })
    }
}

/// Reset-on-recycle behaviour for [`Pool`] values.
///
/// Called when a [`PooledBox`] drops, before the value returns to the
/// pool; it must erase per-checkout state while keeping backing capacity.
pub trait Recycle {
    /// Clears the value for reuse.
    fn recycle(&mut self);
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

/// A free-list of reusable `T`s. Cloning shares the same free-list.
///
/// [`Pool::take`] pops a recycled value (or makes a fresh default one);
/// the returned [`PooledBox`] puts it back on drop. Multiple boxes can be
/// outstanding at once, so re-entrant checkouts are fine.
#[derive(Debug)]
pub struct Pool<T: Recycle + Default> {
    free: Rc<RefCell<Vec<T>>>,
}

impl<T: Recycle + Default> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            free: Rc::clone(&self.free),
        }
    }
}

impl<T: Recycle + Default> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Recycle + Default> Pool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Pool {
            free: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Checks a value out of the pool (recycled if available, otherwise
    /// freshly defaulted).
    pub fn take(&self) -> PooledBox<T> {
        let value = self.free.borrow_mut().pop().unwrap_or_default();
        PooledBox {
            value: Some(value),
            home: Rc::clone(&self.free),
        }
    }

    /// Number of values currently resting in the pool.
    pub fn idle(&self) -> usize {
        self.free.borrow().len()
    }
}

/// Owning smart pointer over a pooled value; recycles it on drop.
#[derive(Debug)]
pub struct PooledBox<T: Recycle + Default> {
    value: Option<T>,
    home: Rc<RefCell<Vec<T>>>,
}

impl<T: Recycle + Default> Deref for PooledBox<T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("value present until drop")
    }
}

impl<T: Recycle + Default> DerefMut for PooledBox<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("value present until drop")
    }
}

impl<T: Recycle + Default> Drop for PooledBox<T> {
    fn drop(&mut self) {
        if let Some(mut v) = self.value.take() {
            v.recycle();
            self.home.borrow_mut().push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_round_trip_and_stale_handles() {
        let mut a = Arena::new();
        let h1 = a.insert("one");
        let h2 = a.insert("two");
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.remove(h1), Some("one"));
        assert_eq!(a.remove(h1), None);
        assert_eq!(a.get(h1), None);
        // Slot reuse must not resurrect the stale handle.
        let h3 = a.insert("three");
        assert_eq!(a.get(h1), None);
        assert_eq!(a.get(h3), Some(&"three"));
        assert_eq!(a.len(), 2);
        let _ = h2;
    }

    #[test]
    fn arena_retain_frees_slots() {
        let mut a = Arena::new();
        for i in 0..10 {
            a.insert(i);
        }
        a.retain(|&v| v % 2 == 0);
        assert_eq!(a.len(), 5);
        assert_eq!(a.iter().filter(|&&v| v % 2 != 0).count(), 0);
        // Freed slots get reused before the slab grows.
        for i in 10..15 {
            a.insert(i);
        }
        assert_eq!(a.slots.len(), 10);
    }

    #[test]
    fn pool_recycles_capacity() {
        let pool: Pool<Vec<u32>> = Pool::new();
        let cap = {
            let mut b = pool.take();
            b.extend([1, 2, 3]);
            b.capacity()
        };
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(b.capacity(), cap, "recycled buffer keeps its capacity");
    }

    #[test]
    fn pool_supports_nested_checkouts() {
        let pool: Pool<Vec<u8>> = Pool::new();
        let a = pool.take();
        let b = pool.take();
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn pool_recycles_under_nesting() {
        // A re-entrant MAC handler checks a second buffer out while the
        // first is still live. Recycling mid-nesting must hand the inner
        // drop's buffer back out cleared, with capacity intact, without
        // disturbing the still-outstanding outer checkout.
        let pool: Pool<Vec<u32>> = Pool::new();
        let mut outer = pool.take();
        outer.extend([10, 20, 30]);
        let cap = {
            let mut inner = pool.take();
            inner.extend(0..64);
            let cap = inner.capacity();
            drop(inner);
            cap
        };
        assert_eq!(pool.idle(), 1, "only the inner buffer returned");
        let reused = pool.take();
        assert!(reused.is_empty(), "nested recycle must clear the buffer");
        assert_eq!(reused.capacity(), cap, "nested recycle keeps capacity");
        assert_eq!(
            &*outer,
            &[10, 20, 30],
            "outer checkout unaffected by inner recycle"
        );
        drop(reused);
        drop(outer);
        assert_eq!(pool.idle(), 2);
        // Clones share one free-list: a buffer recycled through a clone
        // is visible to (and reusable from) the original.
        let alias = pool.clone();
        let c = alias.take();
        assert_eq!(pool.idle(), 1);
        drop(c);
        assert_eq!(pool.idle(), 2);
    }
}
