//! Cancellable scheduler: a hierarchical timing wheel plus a simulation
//! clock.
//!
//! Events are stored in the [`wheel`](crate::wheel) — O(1) to arm and O(1)
//! to cancel through generation-stamped [`TimerHandle`]s, with dispatch
//! order identical to a stable `(time, insertion)` priority queue. Unlike
//! the old lazy-`HashSet` cancellation scheme, a cancel reclaims the
//! event's slot immediately: cancelling an event that already fired is a
//! detected no-op and nothing accumulates.

use crate::time::{SimDuration, SimTime};
use crate::wheel::Wheel;

pub use crate::wheel::TimerHandle;

/// The simulation clock plus pending events of type `E`.
///
/// # Examples
///
/// ```
/// use gr_sim::{Scheduler, SimDuration};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// let h = s.arm(SimDuration::from_micros(10), 1);
/// s.arm(SimDuration::from_micros(20), 2);
/// h.cancel(&mut s);
/// assert_eq!(s.next(), Some((gr_sim::SimTime::from_micros(20), 2)));
/// assert_eq!(s.next(), None);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    wheel: Wheel<E>,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            wheel: Wheel::new(),
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time (the timestamp of the last event returned by
    /// [`next`](Self::next), or zero before any event ran).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of live pending events (cancelled events leave no residue).
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// Arms `event` to fire after delay `d` from now.
    pub fn arm(&mut self, d: SimDuration, event: E) -> TimerHandle {
        let at = self.now + d;
        self.insert(at, event)
    }

    /// Arms `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before the current time — events
    /// may not be scheduled in the past.
    pub fn arm_at(&mut self, at: SimTime, event: E) -> TimerHandle {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.insert(at.max(self.now), event)
    }

    fn insert(&mut self, at: SimTime, event: E) -> TimerHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.insert(at, seq, event)
    }

    /// Cancels a previously armed event, returning `true` if it was still
    /// pending. Cancelling an event that already fired (or a handle that
    /// was already cancelled or re-armed) is a no-op returning `false`.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        self.wheel.cancel(handle).is_some()
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is exhausted.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self with internal clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.wheel.pop()?;
        debug_assert!(t >= self.now, "event queue time went backwards");
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Pops the next live event only if it occurs at or before `horizon`.
    /// The clock never advances past `horizon` through this method.
    pub fn next_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.wheel.peek_time() {
            Some(t) if t <= horizon => self.next(),
            _ => None,
        }
    }

    /// Timestamp of the next live event without dispatching it, or `None`
    /// when the queue is exhausted. Takes `&mut self` because peeking may
    /// drain wheel buckets into the staging buffer (the clock and the
    /// dispatch sequence are unaffected).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek_time()
    }
}

/// Snapshot = clock + sequence counter + dispatch count + the wheel's
/// canonical state. Outstanding [`TimerHandle`]s stay valid across a
/// restore because the wheel serializes its slab and free list verbatim.
impl<E: snap::SnapValue> snap::SnapState for Scheduler<E> {
    fn snap_save(&self, w: &mut snap::Enc) {
        w.u64(self.now.as_nanos());
        w.u64(self.next_seq);
        w.u64(self.processed);
        self.wheel.snap_save(w);
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        self.now = SimTime::from_nanos(r.u64()?);
        self.next_seq = r.u64()?;
        self.processed = r.u64()?;
        self.wheel = Wheel::from_snapshot(r)?;
        Ok(())
    }
}

impl TimerHandle {
    /// Cancels this handle's event; see [`Scheduler::cancel`].
    pub fn cancel<E>(self, sched: &mut Scheduler<E>) -> bool {
        sched.cancel(self)
    }

    /// Cancels this handle's event (if still pending) and arms `event`
    /// after delay `d`, returning the new handle.
    pub fn rearm<E>(self, sched: &mut Scheduler<E>, d: SimDuration, event: E) -> TimerHandle {
        sched.cancel(self);
        sched.arm(d, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.arm_at(SimTime::from_micros(4), ());
        s.arm_at(SimTime::from_micros(9), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.next();
        assert_eq!(s.now(), SimTime::from_micros(4));
        s.next();
        assert_eq!(s.now(), SimTime::from_micros(9));
        assert_eq!(s.processed(), 2);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.arm_at(SimTime::from_micros(1), 1);
        s.arm_at(SimTime::from_micros(2), 2);
        let c = s.arm_at(SimTime::from_micros(3), 3);
        assert!(a.cancel(&mut s));
        assert!(c.cancel(&mut s));
        assert_eq!(s.next(), Some((SimTime::from_micros(2), 2)));
        assert_eq!(s.next(), None);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn cancel_after_fire_is_noop_and_leaves_no_residue() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.arm_at(SimTime::from_micros(1), 1);
        assert!(s.next().is_some());
        // Regression: the old HashSet-based scheduler kept `a` in its
        // cancelled set forever when cancel arrived after the fire. Now
        // the cancel reports a miss and pending() stays exact.
        assert!(!a.cancel(&mut s));
        let b = s.arm_at(SimTime::from_micros(2), 2);
        assert!(!a.cancel(&mut s), "stale handle must not hit reused slot");
        assert_eq!(s.pending(), 1);
        assert_eq!(s.next(), Some((SimTime::from_micros(2), 2)));
        let _ = b;
    }

    #[test]
    fn next_until_respects_horizon() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.arm_at(SimTime::from_micros(5), 1);
        s.arm_at(SimTime::from_micros(15), 2);
        assert_eq!(
            s.next_until(SimTime::from_micros(10)),
            Some((SimTime::from_micros(5), 1))
        );
        assert_eq!(s.next_until(SimTime::from_micros(10)), None);
        assert_eq!(s.pending(), 1);
        assert_eq!(
            s.next_until(SimTime::from_micros(20)),
            Some((SimTime::from_micros(15), 2))
        );
    }

    #[test]
    fn arm_is_relative_to_now() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.arm_at(SimTime::from_micros(10), 0);
        s.next();
        s.arm(SimDuration::from_micros(5), 1);
        assert_eq!(s.next(), Some((SimTime::from_micros(15), 1)));
    }

    #[test]
    fn rearm_replaces_the_pending_event() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let h = s.arm(SimDuration::from_micros(10), 1);
        let h = h.rearm(&mut s, SimDuration::from_micros(3), 2);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.next(), Some((SimTime::from_micros(3), 2)));
        // Re-arming after the fire arms fresh without touching anything.
        let h = h.rearm(&mut s, SimDuration::from_micros(4), 3);
        assert_eq!(s.next(), Some((SimTime::from_micros(7), 3)));
        assert!(!h.cancel(&mut s));
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        use snap::{Dec, Enc, SnapState};
        let mut a: Scheduler<u8> = Scheduler::new();
        for v in 0..20u8 {
            a.arm(SimDuration::from_micros(v as u64 * 130 + 1), v);
        }
        let far = a.arm(SimDuration::from_secs(5_000), 99); // overflow heap
        for _ in 0..7 {
            a.next();
        }
        a.cancel(far);
        let mut w = Enc::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut b: Scheduler<u8> = Scheduler::new();
        b.snap_restore(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.processed(), b.processed());
        assert_eq!(a.pending(), b.pending());
        assert_eq!(a.snap_digest(), b.snap_digest());
        // Future arms assign identical (slot, generation) handles, so
        // handles taken before the snapshot stay interchangeable.
        let ha = a.arm(SimDuration::from_micros(400), 77);
        let hb = b.arm(SimDuration::from_micros(400), 77);
        assert_eq!(ha, hb);
        // Both drain to exhaustion in the same order.
        loop {
            let (x, y) = (a.next(), b.next());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_time_events_fire_in_arm_order() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let t = SimTime::from_micros(7);
        for v in 0..10 {
            s.arm_at(t, v);
        }
        for v in 0..10 {
            assert_eq!(s.next(), Some((t, v)));
        }
    }
}
