//! Cancellable scheduler: the event queue plus a simulation clock.
//!
//! Cancellation is lazy: [`Scheduler::cancel`] records the [`EventId`] in a
//! set, and [`Scheduler::next`] silently discards cancelled entries when
//! they surface. This keeps scheduling O(log n) without intrusive handles.

use std::collections::HashSet;

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// The simulation clock plus pending events of type `E`.
///
/// # Examples
///
/// ```
/// use gr_sim::{Scheduler, SimDuration};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// let id = s.schedule_in(SimDuration::from_micros(10), 1);
/// s.schedule_in(SimDuration::from_micros(20), 2);
/// s.cancel(id);
/// assert_eq!(s.next(), Some((gr_sim::SimTime::from_micros(20), 2)));
/// assert_eq!(s.next(), None);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    cancelled: HashSet<EventId>,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            cancelled: HashSet::new(),
            processed: 0,
        }
    }

    /// Current simulation time (the timestamp of the last event returned by
    /// [`next`](Self::next), or zero before any event ran).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending (possibly cancelled) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before the current time — events
    /// may not be scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.queue.push(at.max(self.now), event)
    }

    /// Schedules `event` after delay `d` from now.
    pub fn schedule_in(&mut self, d: SimDuration, event: E) -> EventId {
        let at = self.now + d;
        self.queue.push(at, event)
    }

    /// Marks a previously scheduled event as cancelled. Cancelling an event
    /// that already fired (or an unknown id) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is exhausted.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self with internal clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        while let Some((t, id, ev)) = self.queue.pop() {
            if self.cancelled.remove(&id) {
                continue;
            }
            debug_assert!(t >= self.now, "event queue time went backwards");
            self.now = t;
            self.processed += 1;
            return Some((t, ev));
        }
        None
    }

    /// Pops the next live event only if it occurs at or before `horizon`.
    /// The clock never advances past `horizon` through this method.
    pub fn next_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= horizon => {
                    let (t, id, ev) = self.queue.pop().expect("peeked entry must exist");
                    if self.cancelled.remove(&id) {
                        continue;
                    }
                    self.now = t;
                    self.processed += 1;
                    return Some((t, ev));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule(SimTime::from_micros(4), ());
        s.schedule(SimTime::from_micros(9), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.next();
        assert_eq!(s.now(), SimTime::from_micros(4));
        s.next();
        assert_eq!(s.now(), SimTime::from_micros(9));
        assert_eq!(s.processed(), 2);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule(SimTime::from_micros(1), 1);
        s.schedule(SimTime::from_micros(2), 2);
        let c = s.schedule(SimTime::from_micros(3), 3);
        s.cancel(a);
        s.cancel(c);
        assert_eq!(s.next(), Some((SimTime::from_micros(2), 2)));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule(SimTime::from_micros(1), 1);
        assert!(s.next().is_some());
        s.cancel(a); // already fired
        s.schedule(SimTime::from_micros(2), 2);
        assert_eq!(s.next(), Some((SimTime::from_micros(2), 2)));
    }

    #[test]
    fn next_until_respects_horizon() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_micros(5), 1);
        s.schedule(SimTime::from_micros(15), 2);
        assert_eq!(
            s.next_until(SimTime::from_micros(10)),
            Some((SimTime::from_micros(5), 1))
        );
        assert_eq!(s.next_until(SimTime::from_micros(10)), None);
        assert_eq!(s.pending(), 1);
        assert_eq!(
            s.next_until(SimTime::from_micros(20)),
            Some((SimTime::from_micros(15), 2))
        );
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_micros(10), 0);
        s.next();
        s.schedule_in(SimDuration::from_micros(5), 1);
        assert_eq!(s.next(), Some((SimTime::from_micros(15), 1)));
    }
}
