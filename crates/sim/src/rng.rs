//! Deterministic random-number generation.
//!
//! All randomness in a simulation run derives from one user seed. Components
//! obtain independent substreams with [`SimRng::fork`], so adding a new
//! consumer of randomness in one module does not perturb the sequence seen
//! by another (a classic source of accidental non-reproducibility).
//!
//! Internally this is `xoshiro256**` seeded via SplitMix64 — implemented
//! here (≈30 lines) rather than depending on a specific external algorithm
//! so that the exact stream is pinned by this crate forever.

/// Deterministic RNG with convenience samplers used across the simulator.
///
/// # Examples
///
/// ```
/// use gr_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut sub = a.fork(7); // independent substream
/// let _slot = sub.uniform_u32_inclusive(31); // backoff in [0, 31]
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Derives an independent substream labelled by `stream`.
    ///
    /// Forking with distinct labels from the same parent yields streams that
    /// do not overlap in practice (they are seeded from a hash of the parent
    /// state and the label).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix a fresh draw with the label so sibling forks differ even for
        // label collisions at different times.
        let base = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(base)
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound]` (inclusive). Used for 802.11 backoff
    /// slot selection over `[0, CW]`.
    pub fn uniform_u32_inclusive(&mut self, bound: u32) -> u32 {
        if bound == u32::MAX {
            return self.next_u64() as u32;
        }
        // Lemire's unbiased multiply-shift over n = bound + 1 values.
        let n = bound as u64 + 1;
        let threshold = (1u64 << 32) % n;
        loop {
            let x = self.next_u64() >> 32; // 32 fresh random bits
            let m = x * n;
            if (m & 0xFFFF_FFFF) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in `[0, bound)` (exclusive). `bound` must be > 0.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "uniform_usize bound must be positive");
        (self.uniform_f64() * bound as f64) as usize % bound
    }

    /// Bernoulli trial: returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// Sample from a zero-mean normal distribution with standard deviation
    /// `sigma` (Box–Muller). Used for RSSI shadowing jitter.
    pub fn normal(&mut self, sigma: f64) -> f64 {
        let u1 = loop {
            let u = self.uniform_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform_f64();
        sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Sample an exponential random variable with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.uniform_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut f1 = parent1.fork(5);
        let mut f2 = parent2.fork(5);
        assert_eq!(f1.next_u64(), f2.next_u64());
        // Distinct labels give distinct streams.
        let mut parent3 = SimRng::new(9);
        let mut f3 = parent3.fork(6);
        assert_ne!(f1.next_u64(), f3.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::new(77);
        for _ in 0..10_000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_inclusive_bounds_respected() {
        let mut r = SimRng::new(3);
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..20_000 {
            let x = r.uniform_u32_inclusive(31);
            assert!(x <= 31);
            saw_zero |= x == 0;
            saw_max |= x == 31;
        }
        assert!(saw_zero && saw_max, "both endpoints should be reachable");
    }

    #[test]
    fn uniform_inclusive_roughly_uniform() {
        let mut r = SimRng::new(4);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.uniform_u32_inclusive(7) as usize] += 1;
        }
        let expected = n as f64 / 8.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "bucket count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(10);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }
}
