//! Deterministic random-number generation.
//!
//! All randomness in a simulation run derives from one user seed. Components
//! obtain independent substreams with [`SimRng::fork`], so adding a new
//! consumer of randomness in one module does not perturb the sequence seen
//! by another (a classic source of accidental non-reproducibility).
//!
//! Internally this is `xoshiro256**` seeded via SplitMix64 — implemented
//! here (≈30 lines) rather than depending on a specific external algorithm
//! so that the exact stream is pinned by this crate forever.

/// Deterministic RNG with convenience samplers used across the simulator.
///
/// # Examples
///
/// ```
/// use gr_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut sub = a.fork(7); // independent substream
/// let _slot = sub.uniform_u32_inclusive(31); // backoff in [0, 31]
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identifies one simulation run within a campaign: an experiment label, a
/// sweep-point index, and a replication seed.
///
/// [`RunKey::stream_seed`] maps the key to the 64-bit seed the run's
/// [`SimRng`] is built from. The mapping is a fixed function of the key
/// alone — no global counters, thread ids or iteration order — so a run
/// produces bit-identical results whether it executes alone, first, last,
/// or concurrently with a thousand siblings. This is what lets the campaign
/// runner shard sweeps across threads without perturbing any result.
///
/// The hash is FNV-1a over the label bytes and the two integers, finished
/// with a SplitMix64 mix step. Both are pinned here forever: changing
/// either would silently reseed every experiment.
///
/// # Examples
///
/// ```
/// use gr_sim::{RunKey, SimRng};
///
/// let key = RunKey::new("fig5", 3, 1);
/// let again = RunKey::new("fig5", 3, 1);
/// assert_eq!(key.stream_seed(), again.stream_seed());
/// assert_ne!(key.stream_seed(), RunKey::new("fig5", 3, 2).stream_seed());
///
/// let mut rng = SimRng::new(key.stream_seed());
/// let _draw = rng.uniform_f64();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Experiment label, e.g. `"fig5"` or `"abl1/fairness"`. Distinct
    /// sweeps within one experiment must use distinct labels.
    pub experiment: String,
    /// Index of the sweep point within the experiment's parameter sweep.
    pub point: u64,
    /// Replication seed (typically `0..Quality::seeds`).
    pub seed: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl RunKey {
    /// Creates a key for `experiment`'s sweep point `point`, replication
    /// `seed`.
    pub fn new(experiment: impl Into<String>, point: u64, seed: u64) -> Self {
        RunKey {
            experiment: experiment.into(),
            point,
            seed,
        }
    }

    /// The 64-bit seed for this run's root [`SimRng`], a stable pure
    /// function of the key.
    pub fn stream_seed(&self) -> u64 {
        let mut h = fnv1a_bytes(FNV_OFFSET, self.experiment.as_bytes());
        // A separator byte keeps ("ab", point) distinct from ("a", ...)
        // prefixes before the integers are folded in.
        h = fnv1a_bytes(h, &[0xFF]);
        h = fnv1a_bytes(h, &self.point.to_le_bytes());
        h = fnv1a_bytes(h, &self.seed.to_le_bytes());
        // FNV alone diffuses the low bits poorly; a SplitMix64 finalizer
        // spreads single-bit key differences across the whole word.
        splitmix64(&mut h)
    }

    /// The root [`SimRng`] for this run.
    pub fn rng(&self) -> SimRng {
        SimRng::new(self.stream_seed())
    }
}

impl snap::SnapValue for RunKey {
    fn save(&self, w: &mut snap::Enc) {
        w.str(&self.experiment);
        w.u64(self.point);
        w.u64(self.seed);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(RunKey {
            experiment: r.str()?,
            point: r.u64()?,
            seed: r.u64()?,
        })
    }
}

/// The RNG's whole state is its four `xoshiro256**` words; restoring them
/// resumes the stream at exactly the interrupted draw.
impl snap::SnapState for SimRng {
    fn snap_save(&self, w: &mut snap::Enc) {
        for &s in &self.state {
            w.u64(s);
        }
    }
    fn snap_restore(&mut self, r: &mut snap::Dec) -> Result<(), snap::SnapError> {
        for s in &mut self.state {
            *s = r.u64()?;
        }
        Ok(())
    }
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Derives an independent substream labelled by `stream`.
    ///
    /// Forking with distinct labels from the same parent yields streams that
    /// do not overlap in practice (they are seeded from a hash of the parent
    /// state and the label).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix a fresh draw with the label so sibling forks differ even for
        // label collisions at different times.
        let base = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(base)
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound]` (inclusive). Used for 802.11 backoff
    /// slot selection over `[0, CW]`.
    pub fn uniform_u32_inclusive(&mut self, bound: u32) -> u32 {
        if bound == u32::MAX {
            return self.next_u64() as u32;
        }
        // Lemire's unbiased multiply-shift over n = bound + 1 values.
        let n = bound as u64 + 1;
        let threshold = (1u64 << 32) % n;
        loop {
            let x = self.next_u64() >> 32; // 32 fresh random bits
            let m = x * n;
            if (m & 0xFFFF_FFFF) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in `[0, bound)` (exclusive). `bound` must be > 0.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "uniform_usize bound must be positive");
        (self.uniform_f64() * bound as f64) as usize % bound
    }

    /// Bernoulli trial: returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// Sample from a zero-mean normal distribution with standard deviation
    /// `sigma` (Box–Muller). Used for RSSI shadowing jitter.
    pub fn normal(&mut self, sigma: f64) -> f64 {
        let u1 = loop {
            let u = self.uniform_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform_f64();
        sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Sample an exponential random variable with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.uniform_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut f1 = parent1.fork(5);
        let mut f2 = parent2.fork(5);
        assert_eq!(f1.next_u64(), f2.next_u64());
        // Distinct labels give distinct streams.
        let mut parent3 = SimRng::new(9);
        let mut f3 = parent3.fork(6);
        assert_ne!(f1.next_u64(), f3.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::new(77);
        for _ in 0..10_000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_inclusive_bounds_respected() {
        let mut r = SimRng::new(3);
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..20_000 {
            let x = r.uniform_u32_inclusive(31);
            assert!(x <= 31);
            saw_zero |= x == 0;
            saw_max |= x == 31;
        }
        assert!(saw_zero && saw_max, "both endpoints should be reachable");
    }

    #[test]
    fn uniform_inclusive_roughly_uniform() {
        let mut r = SimRng::new(4);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.uniform_u32_inclusive(7) as usize] += 1;
        }
        let expected = n as f64 / 8.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "bucket count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(10);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn run_key_seed_is_stable() {
        // Pinned value: if this changes, every campaign result reseeds.
        assert_eq!(
            RunKey::new("fig5", 3, 1).stream_seed(),
            13_462_076_365_289_305_681
        );
    }

    #[test]
    fn run_key_components_all_matter() {
        let base = RunKey::new("fig5", 3, 1).stream_seed();
        assert_ne!(base, RunKey::new("fig6", 3, 1).stream_seed());
        assert_ne!(base, RunKey::new("fig5", 4, 1).stream_seed());
        assert_ne!(base, RunKey::new("fig5", 3, 2).stream_seed());
    }

    #[test]
    fn run_key_label_boundaries_are_unambiguous() {
        // Without a separator, the label's tail and the point's bytes could
        // alias across keys.
        let a = RunKey::new("fig1", 0x31, 0).stream_seed();
        let b = RunKey::new("fig11", 0, 0).stream_seed();
        assert_ne!(a, b);
    }

    #[test]
    fn run_key_rng_matches_explicit_seed() {
        let key = RunKey::new("tab3", 0, 7);
        let mut from_key = key.rng();
        let mut explicit = SimRng::new(key.stream_seed());
        for _ in 0..100 {
            assert_eq!(from_key.next_u64(), explicit.next_u64());
        }
    }

    #[test]
    fn run_key_seeds_spread_across_seeds() {
        // Consecutive replication seeds must yield well-separated streams.
        let mut streams: Vec<u64> = (0..64)
            .map(|s| RunKey::new("fig2", 0, s).stream_seed())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 64);
    }
}
