//! Statistics primitives used by the MAC counters, metrics collection and
//! the experiment harness.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use gr_sim::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl snap::SnapValue for Counter {
    fn save(&self, w: &mut snap::Enc) {
        w.u64(self.0);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(Counter(r.u64()?))
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running arithmetic mean (Welford update, numerically stable).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Mean {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Mean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Mean::default()
    }

    /// Incorporates one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The mean, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` before any observation.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

impl snap::SnapValue for Mean {
    fn save(&self, w: &mut snap::Enc) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(Mean {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
        })
    }
}

/// Time-weighted mean of a piecewise-constant signal — e.g. the average
/// contention window over a run, where the CW holds its value between
/// updates.
///
/// Feed it `(time, new_value)` transitions; it weights each value by how
/// long it was held.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeightedMean {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    total: SimDuration,
    started: bool,
}

impl Default for TimeWeightedMean {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeightedMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TimeWeightedMean {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            total: SimDuration::ZERO,
            started: false,
        }
    }

    /// Records that the signal changed to `value` at time `t`. The previous
    /// value is credited for the interval since the previous transition.
    pub fn set(&mut self, t: SimTime, value: f64) {
        if self.started {
            let dt = t.saturating_since(self.last_time);
            self.weighted_sum += self.last_value * dt.as_secs_f64();
            self.total += dt;
        }
        self.started = true;
        self.last_time = t;
        self.last_value = value;
    }

    /// Closes the signal at time `t` and returns the time-weighted mean, or
    /// `None` if no interval was observed.
    pub fn finish(mut self, t: SimTime) -> Option<f64> {
        if self.started {
            let dt = t.saturating_since(self.last_time);
            self.weighted_sum += self.last_value * dt.as_secs_f64();
            self.total += dt;
        }
        let secs = self.total.as_secs_f64();
        (secs > 0.0).then(|| self.weighted_sum / secs)
    }
}

impl snap::SnapValue for TimeWeightedMean {
    fn save(&self, w: &mut snap::Enc) {
        self.last_time.save(w);
        w.f64(self.last_value);
        w.f64(self.weighted_sum);
        self.total.save(w);
        w.bool(self.started);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(TimeWeightedMean {
            last_time: snap::SnapValue::load(r)?,
            last_value: r.f64()?,
            weighted_sum: r.f64()?,
            total: snap::SnapValue::load(r)?,
            started: r.bool()?,
        })
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating under/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts within the range (excludes under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Under- and overflow counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Fraction of observations at or below `x` (empirical CDF, counting
    /// whole bins whose upper edge is ≤ x plus any underflow).
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut acc = self.underflow;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            let upper = self.lo + width * (i as f64 + 1.0);
            if upper <= x {
                acc += b;
            }
        }
        if x >= self.hi {
            acc += self.overflow;
        }
        acc as f64 / self.count as f64
    }
}

/// Log-bucketed (power-of-two) histogram for positive values spanning
/// many orders of magnitude — microsecond latencies, backoff slot
/// counts, inter-ACK gaps.
///
/// Bucket 0 holds `[0, 1)` (and any negative input); bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`. Buckets are integer-indexed from the value's
/// integer part, so binning is exact and platform-independent.
///
/// # Examples
///
/// ```
/// use gr_sim::stats::LogHistogram;
/// let mut h = LogHistogram::new();
/// for x in [3.0, 5.0, 300.0] {
///     h.push(x);
/// }
/// let buckets: Vec<_> = h.buckets().collect();
/// assert_eq!(buckets, vec![(2.0, 4.0, 1), (4.0, 8.0, 1), (256.0, 512.0, 1)]);
/// assert_eq!(h.quantile(0.5), Some(4.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket_of(x: f64) -> usize {
        if x < 1.0 {
            0
        } else {
            // floor(log2(x)) + 1 via the integer part — exact for the
            // bucket edges, unlike a float log.
            let u = if x >= u64::MAX as f64 {
                u64::MAX
            } else {
                x as u64
            };
            (64 - u.leading_zeros()) as usize
        }
    }

    /// Lower and upper bound of bucket `i`.
    fn bounds(i: usize) -> (f64, f64) {
        if i == 0 {
            (0.0, 1.0)
        } else {
            ((1u128 << (i - 1)) as f64, (1u128 << i) as f64)
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        let b = Self::bucket_of(x);
        if self.bins.len() <= b {
            self.bins.resize(b + 1, 0);
        }
        self.bins[b] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Non-empty buckets as `(lo, hi, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, c)
            })
    }

    /// Nearest-rank `q`-quantile reported as the holding bucket's lower
    /// bound (a conservative estimate exact to one power of two), or
    /// `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(Self::bounds(i).0);
            }
        }
        Some(Self::bounds(self.bins.len().saturating_sub(1)).0)
    }
}

/// Returns the median of a slice (average of the two central elements for
/// even lengths), or `None` if empty. The input need not be sorted.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median over NaN"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or `None` if empty.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile over NaN"));
    let idx = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    Some(v[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn mean_and_variance() {
        let mut m = Mean::new();
        assert_eq!(m.mean(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((m.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut t = TimeWeightedMean::new();
        t.set(SimTime::from_secs(0), 10.0); // 10 for 1s
        t.set(SimTime::from_secs(1), 20.0); // 20 for 3s
        let mean = t.finish(SimTime::from_secs(4)).unwrap();
        assert!((mean - 17.5).abs() < 1e-9, "mean={mean}");
    }

    #[test]
    fn time_weighted_mean_empty_is_none() {
        let t = TimeWeightedMean::new();
        assert_eq!(t.finish(SimTime::from_secs(1)), None);
        // A single set with zero elapsed time also yields None.
        let mut t = TimeWeightedMean::new();
        t.set(SimTime::from_secs(1), 5.0);
        assert_eq!(t.finish(SimTime::from_secs(1)), None);
    }

    #[test]
    fn histogram_binning_and_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -1.0, 10.0, 25.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.outliers(), (1, 2));
        // CDF at 2.0: underflow(1) + bin0(1) + bin1(2) = 4/7
        assert!((h.cdf_at(2.0) - 4.0 / 7.0).abs() < 1e-12);
        assert!((h.cdf_at(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_buckets_exactly_at_powers_of_two() {
        let mut h = LogHistogram::new();
        for x in [-2.0, 0.0, 0.9, 1.0, 1.9, 2.0, 1024.0, 1048576.0] {
            h.push(x);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![
                (0.0, 1.0, 3),             // -2, 0, 0.9
                (1.0, 2.0, 2),             // 1.0, 1.9
                (2.0, 4.0, 1),             // 2.0
                (1024.0, 2048.0, 1),       // 2^10
                (1048576.0, 2097152.0, 1), // 2^20
            ]
        );
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn log_histogram_quantiles_are_bucket_floors() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..9 {
            h.push(3.0); // bucket [2, 4)
        }
        h.push(1000.0); // bucket [512, 1024)
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.95), Some(512.0));
        assert_eq!(h.quantile(1.0), Some(512.0));
        assert!((h.mean().unwrap() - 102.7).abs() < 1e-9);
    }

    #[test]
    fn log_histogram_quantile_rank_boundaries() {
        // Nearest-rank at exact bucket-population boundaries: with 4
        // samples split 2/2 across buckets, q = 0.5 lands on rank 2 —
        // the *last* sample of the lower bucket — and any q beyond it
        // moves to the upper bucket.
        let mut h = LogHistogram::new();
        h.push(2.0);
        h.push(3.0); // bucket [2, 4)
        h.push(100.0);
        h.push(101.0); // bucket [64, 128)
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.51), Some(64.0));
        assert_eq!(h.quantile(0.75), Some(64.0));
        // q = 0 still reports the first populated bucket (rank clamps
        // to 1), and values exactly on a power-of-two edge belong to the
        // upper bucket.
        assert_eq!(h.quantile(0.0), Some(2.0));
        let mut edge = LogHistogram::new();
        edge.push(4.0);
        assert_eq!(edge.buckets().collect::<Vec<_>>(), vec![(4.0, 8.0, 1)]);
        assert_eq!(edge.quantile(0.5), Some(4.0));
    }

    #[test]
    fn median_and_quantile() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[3.0, 1.0]), Some(2.0));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), Some(1.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 1.0), Some(5.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.5), Some(3.0));
    }
}
