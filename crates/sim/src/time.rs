//! Virtual time for the simulator.
//!
//! Time is kept in integer nanoseconds since the start of the run. The
//! 802.11 standard specifies all protocol timing in microseconds, which
//! nanosecond resolution represents exactly, while leaving headroom for
//! sub-microsecond quantities (e.g. per-byte airtime at 11 Mb/s is
//! 727.27 ns; we round per-frame, not per-byte, so rounding error stays
//! below one microsecond per frame).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is an absolute point on the simulation clock; use
/// [`SimDuration`] for spans. The two interact in the usual way:
///
/// ```
/// use gr_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(50);
/// assert_eq!(t.as_micros(), 50);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Rounds down to a multiple of `interval` (e.g. the start of the
    /// enclosing 10 ms bracket). An empty interval is the identity.
    pub const fn floor_to(self, interval: SimDuration) -> SimTime {
        if interval.as_nanos() == 0 {
            self
        } else {
            SimTime(self.0 - self.0 % interval.as_nanos())
        }
    }

    /// The later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a float number of seconds, rounding to the
    /// nearest nanosecond. Negative or non-finite inputs yield zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimDuration((secs * 1e9).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl snap::SnapValue for SimTime {
    fn save(&self, w: &mut snap::Enc) {
        w.u64(self.0);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(SimTime(r.u64()?))
    }
}

impl snap::SnapValue for SimDuration {
    fn save(&self, w: &mut snap::Enc) {
        w.u64(self.0);
    }
    fn load(r: &mut snap::Dec) -> Result<Self, snap::SnapError> {
        Ok(SimDuration(r.u64()?))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(30);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn floor_to_snaps_to_the_bracket_start() {
        let ms = SimDuration::from_millis(10);
        assert_eq!(SimTime::from_micros(7_975).floor_to(ms), SimTime::ZERO);
        assert_eq!(
            SimTime::from_micros(10_000).floor_to(ms),
            SimTime::from_millis(10),
            "an exact barrier instant is its own floor"
        );
        assert_eq!(
            SimTime::from_micros(19_999).floor_to(ms),
            SimTime::from_millis(10)
        );
        // Zero interval is the identity (no bracketing requested).
        assert_eq!(
            SimTime::from_micros(123).floor_to(SimDuration::from_nanos(0)),
            SimTime::from_micros(123)
        );
    }

    #[test]
    fn saturating_since_future_is_zero() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(10));
    }

    #[test]
    fn duration_from_secs_f64() {
        assert_eq!(
            SimDuration::from_secs_f64(0.000_001),
            SimDuration::from_micros(1)
        );
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let slot = SimDuration::from_micros(20);
        assert_eq!(slot * 31, SimDuration::from_micros(620));
        assert_eq!(SimDuration::from_micros(620) / 31, slot);
        let total: SimDuration = (0..5).map(|_| slot).sum();
        assert_eq!(total, SimDuration::from_micros(100));
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_micros(1);
        let b = SimDuration::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_micros(1);
        let tb = SimTime::from_micros(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }
}
