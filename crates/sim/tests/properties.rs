//! Property-based tests of the simulation kernel.

use gr_sim::{EventQueue, Scheduler, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, and equal
    /// timestamps pop in insertion order (stability).
    #[test]
    fn queue_pops_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(idx > lidx, "stability violated");
                }
            }
            last = Some((t, idx));
        }
    }

    /// The queue returns exactly the elements inserted.
    #[test]
    fn queue_conserves_events(times in proptest::collection::vec(0u64..1_000, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), t);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        popped.sort_unstable();
        let mut expected = times.clone();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Cancelled events never fire; everything else does.
    #[test]
    fn scheduler_cancellation(
        times in proptest::collection::vec(1u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut s: Scheduler<usize> = Scheduler::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| s.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                s.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        let mut fired: Vec<usize> = std::iter::from_fn(|| s.next().map(|(_, e)| e)).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// The clock never runs backwards.
    #[test]
    fn scheduler_clock_monotone(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut s: Scheduler<()> = Scheduler::new();
        for &t in &times {
            s.schedule(SimTime::from_micros(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = s.next() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Backoff-style draws stay within their inclusive bound.
    #[test]
    fn rng_uniform_inclusive_in_bounds(seed in any::<u64>(), bound in 0u32..100_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.uniform_u32_inclusive(bound) <= bound);
        }
    }

    /// Identical seeds give identical streams; forks labelled differently
    /// diverge.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut fa = a.fork(1);
        let mut fb = b.fork(2);
        // (a and b were in the same state, so differing labels must
        // produce differing streams with overwhelming probability.)
        let same = (0..32).all(|_| fa.next_u64() == fb.next_u64());
        prop_assert!(!same);
    }

    /// Time arithmetic: (t + d) - t == d for in-range values.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let base = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((base + dur) - base, dur);
    }

    /// Median is order-insensitive and lies within [min, max].
    #[test]
    fn median_properties(mut values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let m1 = gr_sim::stats::median(&values).unwrap();
        values.reverse();
        let m2 = gr_sim::stats::median(&values).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m1 >= min && m1 <= max);
    }
}
