//! Property-based tests of the simulation kernel.

use gr_sim::{EventQueue, Scheduler, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

/// Maps raw fuzz input onto delay magnitudes that exercise every wheel
/// path: sub-tick ties, level-0 buckets, upper levels, and (≈1 in 8)
/// delays past the wheel horizon that must detour through the overflow
/// heap.
fn shaped_nanos(raw: u64, shape: u8) -> u64 {
    match shape % 8 {
        0 | 1 => raw % 2_048,                             // within 1-2 ticks
        2 | 3 => raw % 5_000_000,                         // a few ms: levels 0-1
        4 | 5 => raw % 500_000_000,                       // sub-second: mid levels
        6 => raw % 60_000_000_000,                        // a minute: top level
        _ => 1_200_000_000_000 + raw % 1_200_000_000_000, // past wheel span
    }
}

/// The pre-timing-wheel scheduler semantics, verbatim: a stable binary
/// heap plus a lazy cancelled-id set. Property tests replay every
/// operation against this reference model.
struct HeapReference {
    queue: EventQueue<usize>,
    cancelled: std::collections::HashSet<gr_sim::EventId>,
}

impl HeapReference {
    fn new() -> Self {
        HeapReference {
            queue: EventQueue::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    fn push(&mut self, at: SimTime, payload: usize) -> gr_sim::EventId {
        self.queue.push(at, payload)
    }

    fn cancel(&mut self, id: gr_sim::EventId) {
        self.cancelled.insert(id);
    }

    fn pop(&mut self) -> Option<(SimTime, usize)> {
        while let Some((t, id, e)) = self.queue.pop() {
            if self.cancelled.remove(&id) {
                continue;
            }
            return Some((t, e));
        }
        None
    }
}

proptest! {
    /// Events always pop in non-decreasing time order, and equal
    /// timestamps pop in insertion order (stability).
    #[test]
    fn queue_pops_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(idx > lidx, "stability violated");
                }
            }
            last = Some((t, idx));
        }
    }

    /// The queue returns exactly the elements inserted.
    #[test]
    fn queue_conserves_events(times in proptest::collection::vec(0u64..1_000, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), t);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        popped.sort_unstable();
        let mut expected = times.clone();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Cancelled events never fire; everything else does.
    #[test]
    fn scheduler_cancellation(
        times in proptest::collection::vec(1u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut s: Scheduler<usize> = Scheduler::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| s.arm_at(SimTime::from_micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(h.cancel(&mut s), "pending event must cancel");
            } else {
                expected.push(i);
            }
        }
        prop_assert_eq!(s.pending(), expected.len());
        let mut fired: Vec<usize> = std::iter::from_fn(|| s.next().map(|(_, e)| e)).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// The clock never runs backwards.
    #[test]
    fn scheduler_clock_monotone(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut s: Scheduler<()> = Scheduler::new();
        for &t in &times {
            s.arm_at(SimTime::from_micros(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = s.next() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// The timing-wheel scheduler dispatches random schedules — spanning
    /// level-0 ticks, upper wheel levels, and the overflow horizon — in
    /// exactly the order of the old stable binary-heap [`EventQueue`],
    /// including insertion-order ties at equal timestamps.
    #[test]
    fn wheel_matches_heap_on_random_schedules(
        raw in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..200),
    ) {
        let mut s: Scheduler<usize> = Scheduler::new();
        let mut q = EventQueue::new();
        for (i, &(r, shape)) in raw.iter().enumerate() {
            let at = SimTime::from_nanos(shaped_nanos(r, shape));
            s.arm_at(at, i);
            q.push(at, i);
        }
        let fired: Vec<_> = std::iter::from_fn(|| s.next()).collect();
        let expected: Vec<_> =
            std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t, e))).collect();
        prop_assert_eq!(fired, expected);
    }

    /// Same equivalence under interleaved arm / cancel / rearm / dispatch:
    /// the wheel agrees with the heap-plus-lazy-cancellation reference at
    /// every intermediate pop, not just on the final drain.
    #[test]
    fn wheel_matches_heap_under_cancel_rearm_interleaving(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u8>()), 1..300),
    ) {
        let mut s: Scheduler<usize> = Scheduler::new();
        let mut reference = HeapReference::new();
        // Live (wheel handle, reference id) pairs, index-aligned.
        let mut live: Vec<(gr_sim::TimerHandle, gr_sim::EventId)> = Vec::new();
        let mut next_payload = 0usize;
        for &(op, r, shape) in &ops {
            match op % 4 {
                // Arm a fresh event (relative to the shared clock).
                0 | 1 => {
                    let d = SimDuration::from_nanos(shaped_nanos(r, shape));
                    let at = s.now() + d;
                    let h = s.arm(d, next_payload);
                    let id = reference.push(at, next_payload);
                    live.push((h, id));
                    next_payload += 1;
                }
                // Cancel or rearm a random live event.
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let (h, id) = live.swap_remove(r as usize % live.len());
                    if shape % 2 == 0 {
                        h.cancel(&mut s);
                        reference.cancel(id);
                    } else {
                        let d = SimDuration::from_nanos(shaped_nanos(r, shape) / 2);
                        let at = s.now() + d;
                        let h2 = h.rearm(&mut s, d, next_payload);
                        reference.cancel(id);
                        let id2 = reference.push(at, next_payload);
                        live.push((h2, id2));
                        next_payload += 1;
                    }
                }
                // Dispatch one event from both and compare.
                _ => {
                    prop_assert_eq!(s.next(), reference.pop());
                }
            }
        }
        // Drain whatever is left; the tails must match exactly too.
        loop {
            let got = s.next();
            prop_assert_eq!(got, reference.pop());
            if got.is_none() {
                break;
            }
        }
    }

    /// Heavy timestamp collisions: events armed at only a handful of
    /// distinct times must still fire grouped by time in arm order.
    #[test]
    fn wheel_preserves_fifo_under_heavy_ties(
        picks in proptest::collection::vec(any::<u8>(), 1..200),
        base in 0u64..1_000_000,
    ) {
        let times = [base, base + 1, base + 512, base + 100_000];
        let mut s: Scheduler<usize> = Scheduler::new();
        let mut q = EventQueue::new();
        for (i, &p) in picks.iter().enumerate() {
            let at = SimTime::from_nanos(times[p as usize % times.len()]);
            s.arm_at(at, i);
            q.push(at, i);
        }
        let fired: Vec<_> = std::iter::from_fn(|| s.next()).collect();
        let expected: Vec<_> =
            std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t, e))).collect();
        prop_assert_eq!(fired, expected);
    }

    /// Cursor-jump-on-idle across an overflow migration boundary: when
    /// the wheel drains while far-future events wait in the overflow
    /// heap, the cursor must jump straight to them — and when the jump
    /// target's 64^5-tick block excludes part of the cluster, the
    /// excluded events must keep waiting in the heap (not bounce between
    /// heap and wheel) and still fire in exact heap order. The far
    /// cluster straddles a block boundary several wheel spans past the
    /// near events to force both sides of the XOR placement test after
    /// the jump.
    #[test]
    fn wheel_cursor_jump_on_idle_across_overflow_boundary(
        near in proptest::collection::vec(0u64..1_000_000, 0..20),
        offsets in proptest::collection::vec(0u64..4_000_000_000, 1..40),
        peek in any::<bool>(),
    ) {
        // One wheel block: 64^5 ticks of 2^10 ns = 2^40 ns (~18 min).
        const BLOCK_NS: u64 = 1u64 << 40;
        let mut s: Scheduler<usize> = Scheduler::new();
        let mut q = EventQueue::new();
        let mut payload = 0usize;
        for &t in &near {
            let at = SimTime::from_nanos(t);
            s.arm_at(at, payload);
            q.push(at, payload);
            payload += 1;
        }
        for &off in &offsets {
            let at = SimTime::from_nanos(3 * BLOCK_NS - 2_000_000_000 + off);
            s.arm_at(at, payload);
            q.push(at, payload);
            payload += 1;
        }
        if peek {
            // Peeking while the wheel is otherwise idle performs the
            // cursor jump without dispatching anything.
            prop_assert!(s.peek_time().is_some());
        }
        let fired: Vec<_> = std::iter::from_fn(|| s.next()).collect();
        let expected: Vec<_> =
            std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t, e))).collect();
        prop_assert_eq!(fired, expected);
    }

    /// Backoff-style draws stay within their inclusive bound.
    #[test]
    fn rng_uniform_inclusive_in_bounds(seed in any::<u64>(), bound in 0u32..100_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.uniform_u32_inclusive(bound) <= bound);
        }
    }

    /// Identical seeds give identical streams; forks labelled differently
    /// diverge.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut fa = a.fork(1);
        let mut fb = b.fork(2);
        // (a and b were in the same state, so differing labels must
        // produce differing streams with overwhelming probability.)
        let same = (0..32).all(|_| fa.next_u64() == fb.next_u64());
        prop_assert!(!same);
    }

    /// Time arithmetic: (t + d) - t == d for in-range values.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let base = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((base + dur) - base, dur);
    }

    /// [`gr_sim::Arena`] against a `HashMap` reference model under random
    /// insert/remove/lookup interleavings: live handles always resolve to
    /// their value, removed handles stay stale forever — even after their
    /// slot is reused by a later insert — and the live count matches.
    #[test]
    fn arena_matches_map_under_slot_reuse(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..300),
    ) {
        let mut arena: gr_sim::Arena<u64> = gr_sim::Arena::new();
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut live: Vec<(gr_sim::ArenaHandle, u64)> = Vec::new();
        let mut dead: Vec<(gr_sim::ArenaHandle, u64)> = Vec::new();
        let mut next_key = 0u64;
        for &(op, r) in &ops {
            match op % 4 {
                // Insert — biased 2:1 over removal so slots churn.
                0 | 1 => {
                    let h = arena.insert(next_key);
                    model.insert(next_key, next_key);
                    live.push((h, next_key));
                    next_key += 1;
                }
                // Remove a random live entry; its handle joins the dead set.
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let (h, k) = live.swap_remove(r as usize % live.len());
                    prop_assert_eq!(arena.remove(h), model.remove(&k));
                    dead.push((h, k));
                }
                // Audit: every live handle resolves, every dead one is
                // stale (regardless of how often its slot was reused),
                // and double-removes change nothing.
                _ => {
                    for &(h, k) in &live {
                        prop_assert_eq!(arena.get(h), model.get(&k));
                    }
                    if !dead.is_empty() {
                        let (h, _) = dead[r as usize % dead.len()];
                        prop_assert_eq!(arena.get(h), None);
                        let before = arena.len();
                        prop_assert_eq!(arena.remove(h), None);
                        prop_assert_eq!(arena.len(), before);
                    }
                }
            }
        }
        prop_assert_eq!(arena.len(), model.len());
        let mut got: Vec<u64> = arena.iter().copied().collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = model.into_values().collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        for (h, _) in dead {
            prop_assert_eq!(arena.get(h), None);
        }
    }

    /// Median is order-insensitive and lies within [min, max].
    #[test]
    fn median_properties(mut values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let m1 = gr_sim::stats::median(&values).unwrap();
        values.reverse();
        let m2 = gr_sim::stats::median(&values).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m1 >= min && m1 <= max);
    }
}
