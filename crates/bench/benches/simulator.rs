//! Criterion benchmarks: simulator throughput and per-experiment-family
//! microbenches (scaled-down versions of the paper scenarios, so
//! regressions in the hot paths — medium, DCF, TCP — are caught).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario, TransportKind};
use sim::SimDuration;

fn bench_udp_saturation(c: &mut Criterion) {
    let mut g = c.benchmark_group("udp_saturation");
    for pairs in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |b, &pairs| {
            b.iter(|| {
                let s = Scenario {
                    pairs,
                    transport: TransportKind::SATURATING_UDP,
                    duration: SimDuration::from_millis(500),
                    ..Scenario::default()
                };
                Run::plan(&s).execute().expect("valid scenario")
            });
        });
    }
    g.finish();
}

fn bench_tcp_pairs(c: &mut Criterion) {
    c.bench_function("tcp_two_pairs_500ms", |b| {
        b.iter(|| {
            let s = Scenario {
                duration: SimDuration::from_millis(500),
                ..Scenario::default()
            };
            Run::plan(&s).execute().expect("valid scenario")
        });
    });
}

fn bench_nav_inflation(c: &mut Criterion) {
    c.bench_function("nav_inflation_udp_500ms", |b| {
        b.iter(|| {
            let mut s = Scenario::two_pair_udp(GreedyConfig::nav_inflation(
                NavInflationConfig::cts_only(10_000, 1.0),
            ));
            s.duration = SimDuration::from_millis(500);
            Run::plan(&s).execute().expect("valid scenario")
        });
    });
}

fn bench_spoofing_with_grc(c: &mut Criterion) {
    c.bench_function("ack_spoofing_grc_500ms", |b| {
        b.iter(|| {
            let mut s = Scenario {
                byte_error_rate: 2e-4,
                grc: Some(true),
                duration: SimDuration::from_millis(500),
                ..Scenario::default()
            };
            s.greedy = vec![(1, GreedyConfig::ack_spoofing(vec![mac::NodeId(1)], 1.0))];
            Run::plan(&s).execute().expect("valid scenario")
        });
    });
}

fn bench_corruption_study(c: &mut Criterion) {
    c.bench_function("corruption_study_10k_frames", |b| {
        let study = greedy80211::CorruptionStudy::new(1104, 3e-4).expect("valid");
        b.iter(|| {
            let mut rng = sim::SimRng::new(1);
            study.run(10_000, &mut rng)
        });
    });
}

fn bench_recording_overhead(c: &mut Criterion) {
    // Same TCP scenario with the flight recorder off vs on: the delta is
    // the whole cost of `--record` (DESIGN.md §9 quotes these numbers).
    let mut g = c.benchmark_group("recording_overhead");
    for on in [false, true] {
        let name = if on { "on" } else { "off" };
        g.bench_with_input(BenchmarkId::from_parameter(name), &on, |b, &on| {
            b.iter(|| {
                let mut s = Scenario {
                    duration: SimDuration::from_millis(500),
                    ..Scenario::default()
                };
                if on {
                    s.record = Some(obs::ObsSpec::default());
                }
                let out = Run::plan(&s).execute().expect("valid scenario");
                out.obs_report()
            });
        });
    }
    g.finish();
}

fn bench_analytical_model(c: &mut Criterion) {
    c.bench_function("nav_inflation_model_full_dist", |b| {
        // Worst-case: both distributions spread over all CW stages.
        let dist: Vec<(u32, f64)> = [31u32, 63, 127, 255, 511, 1023]
            .iter()
            .map(|&cw| (cw, 1.0 / 6.0))
            .collect();
        b.iter(|| greedy80211::nav_inflation_model(25, &dist, &dist));
    });
}

criterion_group!(
    benches,
    bench_udp_saturation,
    bench_tcp_pairs,
    bench_nav_inflation,
    bench_spoofing_with_grc,
    bench_corruption_study,
    bench_recording_overhead,
    bench_analytical_model
);
criterion_main!(benches);
