//! Regenerates the paper's tables and figures.
//!
//! ```sh
//! repro all                # every artifact at full fidelity
//! repro fig1 tab2          # selected artifacts
//! repro --quick all        # fast low-fidelity pass
//! repro --jobs 8 all       # shard sweep points across 8 workers
//! repro --list             # available ids
//! repro --out results all  # CSV output directory (default: results)
//! ```
//!
//! Outputs are independent of `--jobs`: every simulation run draws from
//! an RNG stream keyed by `(experiment label, sweep point, seed index)`,
//! and sweep results are aggregated in submission order, so the CSVs are
//! byte-identical at any worker count. Alongside the CSVs the campaign
//! writes `bench_summary.json` with per-experiment wall-clock and
//! simulator event throughput.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use gr_bench::{registry, Quality, RunCtx};
use net::stats;

/// Per-experiment timing record for `bench_summary.json`.
struct Timing {
    id: String,
    wall_s: f64,
    events: u64,
    runs: u64,
}

fn write_summary(
    out_dir: &Path,
    jobs: usize,
    quick: bool,
    timings: &[Timing],
    total_s: f64,
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!(
        "  \"quality\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"total_wall_s\": {total_s:.3},\n"));
    let total_events: u64 = timings.iter().map(|t| t.events).sum();
    s.push_str(&format!("  \"total_events\": {total_events},\n"));
    s.push_str(&format!(
        "  \"total_events_per_sec\": {:.0},\n",
        total_events as f64 / total_s.max(1e-9)
    ));
    s.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \"runs\": {}, \"events_per_sec\": {:.0}}}{}\n",
            t.id,
            t.wall_s,
            t.events,
            t.runs,
            t.events as f64 / t.wall_s.max(1e-9),
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out_dir.join("bench_summary.json"), s)
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut list = false;
    let mut out_dir = PathBuf::from("results");
    let mut jobs = runner::available_jobs();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--list" | "-l" => list = true,
            "--out" | "-o" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => jobs = n,
                _ => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--jobs N] [--out DIR] (all | <id>...)\n       repro --list"
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }

    let reg = registry();
    if list {
        for (id, _) in &reg {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if ids.is_empty() {
        eprintln!("no experiments selected; try `repro all` or `repro --list`");
        return ExitCode::FAILURE;
    }
    let selected: Vec<&(&str, gr_bench::Generator)> = if ids.iter().any(|i| i == "all") {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match reg.iter().find(|(rid, _)| rid == id) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown experiment id `{id}` (see --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!(
            "failed to create output directory {}: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let quality = if quick {
        Quality::quick()
    } else {
        Quality::full()
    };
    let ctx = RunCtx::with_jobs(quality, jobs);
    println!(
        "# greedy80211 reproduction — {} experiment(s), {} fidelity, {} job(s)\n",
        selected.len(),
        if quick { "quick" } else { "full" },
        jobs,
    );
    let t_all = Instant::now();
    let mut timings = Vec::new();
    for (id, gen) in selected {
        let t = Instant::now();
        let before = stats::snapshot();
        let experiment = gen(&ctx);
        let used = stats::snapshot().since(before);
        let wall_s = t.elapsed().as_secs_f64();
        print!("{}", experiment.render());
        match experiment.write_csv(&out_dir) {
            Ok(()) => println!(
                "  -> {} ({:.1}s, {:.0} events/s)\n",
                out_dir.join(format!("{id}.csv")).display(),
                wall_s,
                used.events_processed as f64 / wall_s.max(1e-9),
            ),
            Err(e) => {
                eprintln!("failed to write CSV for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
        timings.push(Timing {
            id: id.to_string(),
            wall_s,
            events: used.events_processed,
            runs: used.runs_completed,
        });
    }
    let total_s = t_all.elapsed().as_secs_f64();
    println!("total: {total_s:.1}s");
    if let Err(e) = write_summary(&out_dir, jobs, quick, &timings, total_s) {
        eprintln!("failed to write bench_summary.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("  -> {}", out_dir.join("bench_summary.json").display());
    ExitCode::SUCCESS
}
