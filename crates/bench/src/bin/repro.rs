//! Regenerates the paper's tables and figures.
//!
//! ```sh
//! repro all                # every artifact at full fidelity
//! repro fig1 tab2          # selected artifacts
//! repro --quick all        # fast low-fidelity pass
//! repro --list             # available ids
//! repro --out results all  # CSV output directory (default: results)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use gr_bench::{registry, Quality};

fn main() -> ExitCode {
    let mut quick = false;
    let mut list = false;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--list" | "-l" => list = true,
            "--out" | "-o" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--out DIR] (all | <id>...)\n       repro --list"
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }

    let reg = registry();
    if list {
        for (id, _) in &reg {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if ids.is_empty() {
        eprintln!("no experiments selected; try `repro all` or `repro --list`");
        return ExitCode::FAILURE;
    }
    let selected: Vec<&(&str, gr_bench::Generator)> =
        if ids.iter().any(|i| i == "all") {
            reg.iter().collect()
        } else {
            let mut sel = Vec::new();
            for id in &ids {
                match reg.iter().find(|(rid, _)| rid == id) {
                    Some(entry) => sel.push(entry),
                    None => {
                        eprintln!("unknown experiment id `{id}` (see --list)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            sel
        };

    let quality = if quick {
        Quality::quick()
    } else {
        Quality::full()
    };
    println!(
        "# greedy80211 reproduction — {} experiment(s), {} fidelity\n",
        selected.len(),
        if quick { "quick" } else { "full" }
    );
    let t_all = Instant::now();
    for (id, gen) in selected {
        let t = Instant::now();
        let experiment = gen(&quality);
        print!("{}", experiment.render());
        match experiment.write_csv(&out_dir) {
            Ok(()) => println!(
                "  -> {} ({:.1}s)\n",
                out_dir.join(format!("{id}.csv")).display(),
                t.elapsed().as_secs_f64()
            ),
            Err(e) => {
                eprintln!("failed to write CSV for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("total: {:.1}s", t_all.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
