//! Regenerates the paper's tables and figures.
//!
//! ```sh
//! repro run all                # every artifact at full fidelity
//! repro run fig1 tab2          # selected artifacts
//! repro run --quick all        # fast low-fidelity pass
//! repro run --jobs 8 all       # shard sweep points across 8 workers
//! repro run --out results all  # CSV output directory (default: results)
//! repro run --record fig6      # flight-record every run into results/obs/
//! repro gate [--check]         # perf gate; --check fails on regression
//! repro fuzz 25 --seed 7       # randomized conformance fuzzing
//! repro world [--cells 3x3]    # multi-cell world campaign
//! repro cc                     # congestion-control zoo matrix
//! repro roc                    # detection science: ROC/AUC, adaptive
//!                              # thresholds, CUSUM/SPRT delays
//! repro intensity              # attack-intensity frontiers: sweep every
//!                              # misbehavior knob to its detector's knee
//! repro --list                 # available experiment ids
//! ```
//!
//! Each subcommand expands to the flag spelling it replaced
//! (`repro gate` ≡ `repro --bench-gate`, and so on); the old flags keep
//! working as hidden aliases so existing scripts and recorded repro
//! lines don't break. Zero-padded ids (`fig06`) are accepted anywhere
//! an id is.
//!
//! Outputs are independent of `--jobs`: every simulation run draws from
//! an RNG stream keyed by `(experiment label, sweep point, seed index)`,
//! and sweep results are aggregated in submission order, so the CSVs are
//! byte-identical at any worker count. Alongside the CSVs the campaign
//! writes `bench_summary.json` with per-experiment wall-clock and
//! simulator event throughput.
//!
//! With `--record`, every simulation run additionally drains its flight
//! recorder into `DIR/obs/<experiment>-p<point>-s<seed>/` (JSONL events,
//! per-gauge probe CSVs, histogram summaries — see the `obs` crate), and
//! `bench_summary.json` gains a `profile` section with per-layer wall
//! time. Recording never touches the scheduler or any RNG stream, so the
//! CSVs are byte-identical with and without it, and the obs artifacts
//! themselves are byte-identical at any `--jobs` width.
//! `--record-filter phy,mac,3` narrows recording to the given layers
//! and/or node ids.
//!
//! Checkpoint & audit (see DESIGN.md §12):
//!
//! ```sh
//! repro --quick --checkpoint-every 100 fig6   # checkpoint every 100 ms vt
//! repro --quick --audit-every 100 fig6        # record audit ladders too
//! repro --quick --resume results fig6         # resume a recorded campaign
//! repro --resume results/checkpoints/RUN.snap # resume one checkpoint file
//! repro --audit-compare A.audit B.audit       # diff two audit ladders
//! ```
//!
//! `--checkpoint-every N` freezes every run at each multiple of N ms of
//! virtual time into `DIR/checkpoints/<run>.snap`; `--audit-every N`
//! additionally records each run's per-layer state-hash ladder into
//! `DIR/audit/<run>.audit`. `--resume DIR` re-runs the selected
//! experiments, restoring each run from its recorded checkpoint and
//! simulating only the tail — the CSVs come out byte-identical to the
//! uninterrupted campaign's, at any `--jobs` width. `--audit-compare`
//! exits non-zero when the ladders diverge and names the first diverging
//! layer and virtual-time bracket.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use gr_bench::{fuzz, gate, registry, ConformCampaign, ObsCampaign, Quality, RunCtx};
use net::stats;

/// Per-experiment timing record for `bench_summary.json`.
struct Timing {
    id: String,
    wall_s: f64,
    events: u64,
    runs: u64,
}

fn write_summary(
    out_dir: &Path,
    jobs: usize,
    quick: bool,
    timings: &[Timing],
    total_s: f64,
    profile: Option<&[(&'static str, obs::profile::SpanStat)]>,
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!(
        "  \"quality\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"total_wall_s\": {total_s:.3},\n"));
    let total_events: u64 = timings.iter().map(|t| t.events).sum();
    s.push_str(&format!("  \"total_events\": {total_events},\n"));
    s.push_str(&format!(
        "  \"total_events_per_sec\": {:.0},\n",
        total_events as f64 / total_s.max(1e-9)
    ));
    s.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \"runs\": {}, \"events_per_sec\": {:.0}}}{}\n",
            t.id,
            t.wall_s,
            t.events,
            t.runs,
            t.events as f64 / t.wall_s.max(1e-9),
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    match profile {
        None => s.push_str("  ]\n}\n"),
        Some(spans) => {
            s.push_str("  ],\n  \"profile\": [\n");
            for (i, (label, stat)) in spans.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"span\": \"{label}\", \"calls\": {}, \"wall_s\": {:.3}}}{}\n",
                    stat.calls,
                    stat.secs(),
                    if i + 1 < spans.len() { "," } else { "" }
                ));
            }
            s.push_str("  ]\n}\n");
        }
    }
    std::fs::write(out_dir.join("bench_summary.json"), s)
}

/// Canonicalizes a user-supplied experiment id: registry ids carry no
/// zero padding, so `fig06` and `tab02` resolve to `fig6` and `tab2`.
fn normalize_id(id: &str) -> String {
    match id.find(|c: char| c.is_ascii_digit()) {
        Some(i) => {
            let (prefix, digits) = id.split_at(i);
            match digits.parse::<u64>() {
                Ok(n) => format!("{prefix}{n}"),
                Err(_) => id.to_string(),
            }
        }
        None => id.to_string(),
    }
}

/// Exports every report a recording campaign has accumulated so far into
/// `out_dir/obs/<run-key>/`, in deterministic run-key order.
fn export_obs(out_dir: &Path, campaign: &ObsCampaign) -> std::io::Result<usize> {
    let _span = obs::span!("obs/export");
    let reports = campaign.take_reports();
    let n = reports.len();
    for (key, report) in &reports {
        let dir = out_dir.join("obs").join(obs::run_dir_name(key));
        obs::write_artifacts(&dir, key, report)?;
    }
    Ok(n)
}

/// Fidelity selected by `--quick`, with the seed list overridden by
/// `--seeds N` (seeds 1..=N) when given.
fn quality_for(quick: bool, seeds_override: Option<u64>) -> Quality {
    let mut q = if quick {
        Quality::quick()
    } else {
        Quality::full()
    };
    if let Some(n) = seeds_override {
        q.seeds = (1..=n).collect();
    }
    q
}

/// Expands a leading subcommand (`run`, `gate`, `fuzz`, `world`, `cc`,
/// `roc`) into the legacy flag spelling the single flag parser below
/// understands. Anything else — including the old flag spellings, which
/// remain hidden aliases — passes through untouched. Returns `Err` with
/// an exit code for subcommands that refuse to run (`fuzz` without a
/// case count).
fn expand_subcommand(raw: Vec<String>) -> Result<Vec<String>, ExitCode> {
    let prefixed = |flag: &str, rest: &[String]| {
        let mut v = vec![flag.to_string()];
        v.extend_from_slice(rest);
        v
    };
    Ok(match raw.first().map(String::as_str) {
        Some("run") => raw[1..].to_vec(),
        Some("gate") => prefixed("--bench-gate", &raw[1..]),
        Some("world") => prefixed("--world", &raw[1..]),
        Some("cc") => prefixed("--cc", &raw[1..]),
        Some("fuzz") => {
            // `repro fuzz N [--seed K]`: the first bare integer is the
            // case count; `--seed` maps to the legacy `--fuzz-seed`.
            let mut v = Vec::new();
            let mut count_seen = false;
            let mut it = raw[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seed" => {
                        v.push("--fuzz-seed".to_string());
                        if let Some(k) = it.next() {
                            v.push(k.clone());
                        }
                    }
                    s if !count_seen && s.parse::<u64>().is_ok() => {
                        count_seen = true;
                        v.push("--fuzz".to_string());
                        v.push(s.to_string());
                    }
                    s => v.push(s.to_string()),
                }
            }
            if !count_seen {
                eprintln!("usage: repro fuzz N [--seed K]");
                return Err(ExitCode::FAILURE);
            }
            v
        }
        Some("roc") => prefixed("--roc", &raw[1..]),
        Some("intensity") => prefixed("--intensity", &raw[1..]),
        _ => raw,
    })
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut list = false;
    let mut bench_gate = false;
    let mut gate_check = false;
    let mut out_dir = PathBuf::from("results");
    let mut jobs = runner::available_jobs();
    let mut record = false;
    let mut filter = obs::Filter::all();
    let mut checkpoint_every: Option<u64> = None;
    let mut audit_every: Option<u64> = None;
    let mut resume: Option<PathBuf> = None;
    let mut audit_compare: Option<(PathBuf, PathBuf)> = None;
    let mut conform = false;
    let mut conform_no_whitelist = false;
    let mut world = false;
    let mut cc_zoo = false;
    let mut roc_campaign = false;
    let mut intensity_campaign = false;
    let mut intensity_points: Option<usize> = None;
    let mut seeds_override: Option<u64> = None;
    let mut cells: Option<(usize, usize)> = None;
    let mut fig2_check = false;
    let mut fuzz_n: Option<u64> = None;
    let mut fuzz_seed: u64 = 1;
    let mut ids: Vec<String> = Vec::new();
    let argv = match expand_subcommand(std::env::args().skip(1).collect()) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--list" | "-l" => list = true,
            "--bench-gate" => bench_gate = true,
            "--check" => gate_check = true,
            "--record" => record = true,
            "--conform" => conform = true,
            "--conform-no-whitelist" => {
                conform = true;
                conform_no_whitelist = true;
            }
            "--world" => world = true,
            "--cc" => cc_zoo = true,
            "--roc" => roc_campaign = true,
            "--intensity" => intensity_campaign = true,
            "--points" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n > 0 => {
                    intensity_points = Some(n);
                    intensity_campaign = true;
                }
                _ => {
                    eprintln!("--points requires a positive grid-point count");
                    return ExitCode::FAILURE;
                }
            },
            "--fig2-check" => fig2_check = true,
            "--cells" => match args.next() {
                Some(spec) => match spec
                    .split_once('x')
                    .map(|(r, c)| (r.trim().parse::<usize>(), c.trim().parse::<usize>()))
                {
                    Some((Ok(r), Ok(c))) if r > 0 && c > 0 => {
                        cells = Some((r, c));
                        world = true;
                    }
                    _ => {
                        eprintln!("--cells requires a grid like 3x3");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--cells requires a grid like 3x3");
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => fuzz_n = Some(n),
                _ => {
                    eprintln!("--fuzz requires a case count");
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz-seed" => match args.next().as_deref().map(str::parse) {
                Some(Ok(k)) => fuzz_seed = k,
                _ => {
                    eprintln!("--fuzz-seed requires a 64-bit seed");
                    return ExitCode::FAILURE;
                }
            },
            "--record-filter" => match args.next() {
                Some(spec) => match obs::Filter::parse(&spec) {
                    Ok(f) => {
                        filter = f;
                        record = true;
                    }
                    Err(e) => {
                        eprintln!("--record-filter: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--record-filter requires a spec (e.g. phy,mac or 0,3)");
                    return ExitCode::FAILURE;
                }
            },
            "--experiment" | "-e" => match args.next() {
                // Accepts a comma-separated list (`-e fig02,fig06,tab5`);
                // each entry goes through the same zero-padded-id
                // normalization as positional ids.
                Some(list) => ids.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                ),
                None => {
                    eprintln!("--experiment requires an id (see --list)");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-every" => match args.next().as_deref().map(str::parse) {
                Some(Ok(ms)) => checkpoint_every = Some(ms),
                _ => {
                    eprintln!("--checkpoint-every requires an interval in ms of virtual time");
                    return ExitCode::FAILURE;
                }
            },
            "--audit-every" => match args.next().as_deref().map(str::parse) {
                Some(Ok(ms)) => audit_every = Some(ms),
                _ => {
                    eprintln!("--audit-every requires an interval in ms of virtual time");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => match args.next() {
                Some(p) => resume = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--resume requires a checkpoint file or a campaign directory");
                    return ExitCode::FAILURE;
                }
            },
            "--audit-compare" => match (args.next(), args.next()) {
                (Some(a), Some(b)) => {
                    audit_compare = Some((PathBuf::from(a), PathBuf::from(b)));
                }
                _ => {
                    eprintln!("--audit-compare requires two audit-ladder files");
                    return ExitCode::FAILURE;
                }
            },
            "--out" | "-o" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--seeds" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n > 0 => seeds_override = Some(n),
                _ => {
                    eprintln!("--seeds requires a positive seed count");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => jobs = n,
                _ => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro run [--quick] [--jobs N] [--out DIR] [--record] \
                     [--record-filter SPEC]\n                 \
                     [--checkpoint-every MS] [--audit-every MS] [--resume PATH] \
                     (all | <id>...)\n       \
                     repro gate [--check]\n       \
                     repro fuzz N [--seed K]\n       \
                     repro world [--cells RxC]\n       \
                     repro cc\n       \
                     repro roc\n       \
                     repro intensity [--points N]\n       \
                     repro --audit-compare A.audit B.audit\n       \
                     repro --list\n\n  \
                     Subcommands expand to the flag spellings they replaced \
                     (gate = --bench-gate,\n  \
                     fuzz N = --fuzz N, world = --world, cc = --cc); the old \
                     flags remain accepted.\n\n  \
                     --experiment IDS      select artifacts: one id or a comma-separated list\n                        \
                     (same as positional ids; zero-padded forms accepted)\n  \
                     --record              flight-record every run into DIR/obs/\n  \
                     --record-filter SPEC  comma-separated layers (phy|mac|transport|net)\n                        \
                     and/or node ids; implies --record\n  \
                     --checkpoint-every MS freeze every run at each MS of virtual time\n                        \
                     into DIR/checkpoints/\n  \
                     --audit-every MS      record per-layer state-hash ladders into DIR/audit/\n  \
                     --resume PATH         a campaign directory: resume every selected run from\n                        \
                     its checkpoint (CSVs byte-identical to an uninterrupted\n                        \
                     campaign); a .snap file: resume that one run and print it\n  \
                     --audit-compare A B   diff two audit ladders; non-zero exit on divergence\n  \
                     --conform             live 802.11 invariant checking on every run; non-zero\n                        \
                     exit on any violation (also applies to --resume FILE)\n  \
                     --conform-no-whitelist  same, but declared greedy quirks no longer exempt\n                        \
                     their rules (greedy scenarios are expected to fail)\n  \
                     --fuzz N              run N randomized scenarios under the checker; shrink\n                        \
                     violations to a 10 ms bracket in DIR/conform/\n  \
                     --fuzz-seed K         fuzz campaign seed (default 1); same N and K give\n                        \
                     identical verdicts and byte-identical artifacts\n  \
                     --world               multi-cell world campaign: sweep greedy density ×\n                        \
                     grid size, per-cell CSVs into DIR/world-RxC-gK.csv\n  \
                     --cells RxC           restrict --world to one grid size (implies --world)\n  \
                     --seeds N             override the seed list with 1..=N (default: 1 seed\n                        \
                     with --quick, 5 at full fidelity)\n  \
                     --cc                  congestion-control zoo: sweep {{newreno,cubic,bbr,\n                        \
                     newreno+hystart}} x {{honest,nav,spoof,fake}} into\n                        \
                     DIR/cc_matrix.csv and DIR/cc-<controller>.csv\n  \
                     --roc                 detection science: per-detector ROC frontiers and AUC,\n                        \
                     load-adaptive threshold validation, CUSUM/SPRT detection\n                        \
                     delays — CSVs into DIR/roc/\n  \
                     --intensity           attack-intensity frontiers: honest/attacked pairs per\n                        \
                     (detector, mix, intensity), knees and the windowed-vs-\n                        \
                     sequential crossover — CSVs into DIR/intensity/; honors\n                        \
                     --checkpoint-every / --audit-every / --resume DIR\n  \
                     --points N            thin the intensity grid to N points, keeping both\n                        \
                     endpoints (implies --intensity)\n  \
                     --fig2-check          identity gate: fig2 via 1x1 worlds must match the\n                        \
                     direct fig2 CSV byte-for-byte\n  \
                     --bench-gate          time the pinned perf-gate subset, write BENCH_<date>.json\n  \
                     --check               with --bench-gate: fail on regression vs BENCH_BASELINE.json"
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }

    if let Some((a, b)) = &audit_compare {
        return match greedy80211::audit::compare_files(a, b) {
            Ok(divergence) => {
                println!("{}", greedy80211::audit::describe(&divergence));
                if divergence.is_none() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("--audit-compare: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Fuzz mode: generate + run + shrink, independent of the experiment
    // registry.
    if let Some(n) = fuzz_n {
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!(
                "failed to create output directory {}: {e}",
                out_dir.display()
            );
            return ExitCode::FAILURE;
        }
        println!("# conformance fuzz — {n} case(s), campaign seed {fuzz_seed}\n");
        let mut dirty = 0u64;
        for i in 0..n {
            let case = fuzz::generate_case(fuzz_seed, i);
            let desc = case.desc.clone();
            match fuzz::run_case(case, &out_dir) {
                Ok(v) if v.is_clean() => {
                    println!(
                        "  case {i:>3} ok    {desc}  ({} events, {} whitelisted)",
                        v.events_checked, v.whitelisted
                    );
                }
                Ok(v) => {
                    dirty += 1;
                    println!("  case {i:>3} FAIL  {desc}");
                    println!(
                        "        {} violation(s); first: {}",
                        v.violations.len(),
                        v.violations[0]
                    );
                    if let Some((lo, hi)) = v.bracket_ms {
                        println!(
                            "        shrunk to [{lo}, {hi}) ms of virtual time, layer `{}`",
                            v.layer.unwrap_or("?")
                        );
                    }
                    if let Some((ilo, ihi)) = v.intensity_bracket {
                        if ihi == 0.0 {
                            println!(
                                "        violates even with the attack scaled to zero \
                                 (attack-independent)"
                            );
                        } else {
                            println!(
                                "        minimal violating intensity in ({ilo:.4}, {ihi:.4}] \
                                 of the case's attack strength"
                            );
                        }
                    }
                    match &v.artifact {
                        Some(p) => {
                            println!("        repro: repro --conform --resume {}", p.display())
                        }
                        None => println!(
                            "        repro: repro --fuzz {} --fuzz-seed {fuzz_seed}  \
                             (case {i}; violation inside the first bracket)",
                            i + 1
                        ),
                    }
                }
                Err(e) => {
                    eprintln!("  case {i}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("\n{} of {n} case(s) violated an invariant", dirty);
        return if dirty == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // A .snap file resumes one run directly; a directory switches the
    // whole campaign into resume mode (handled below via RunCtx). With
    // --conform the checker rides along mid-stream (stream-dependent
    // rules disarmed, protocol-timing rules live) — how a fuzz
    // violation artifact is replayed.
    if let Some(path) = resume.as_ref().filter(|p| p.is_file()) {
        let job = conform.then(|| {
            let j = ::conform::ConformJob::new(None);
            if conform_no_whitelist {
                j.without_whitelist()
            } else {
                j
            }
        });
        let result = {
            let _obs_guard = job.as_ref().map(|_| {
                obs::ambient::install(
                    obs::ObsSpec {
                        capacity: 0,
                        probe_interval: None,
                        filter: obs::Filter::all(),
                    }
                    .recorder(),
                )
            });
            let _cf_guard = job.as_ref().map(|j| ::conform::ambient::install(j.clone()));
            greedy80211::Run::resume(path)
        };
        return match result {
            Ok(out) => {
                println!(
                    "resumed {} (point {}, seed {}) to {} ms of virtual time",
                    out.key.experiment,
                    out.key.point,
                    out.key.seed,
                    out.duration.as_nanos() / 1_000_000
                );
                for i in 0..out.flows.len() {
                    println!("  flow {}: {:.3} Mb/s", i, out.goodput_mbps(i));
                }
                let mut failed = false;
                if let Some(job) = job {
                    for (_, report) in job.drain() {
                        if report.is_clean() {
                            println!(
                                "  conform: clean ({} events, {} whitelisted)",
                                report.events_checked, report.whitelisted
                            );
                        } else {
                            failed = true;
                            for v in &report.violations {
                                println!("  conform: {v}");
                            }
                        }
                    }
                }
                if failed {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("--resume: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if fig2_check {
        let quality = quality_for(quick, seeds_override);
        let ctx = RunCtx::with_jobs(quality, jobs);
        println!(
            "# fig2 identity check — direct vs 1×1-world, {} job(s)\n",
            jobs
        );
        return match gr_bench::fig2_check(&ctx) {
            Ok(msg) => {
                println!("  {msg}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("  {msg}");
                ExitCode::FAILURE
            }
        };
    }

    if cc_zoo {
        let quality = quality_for(quick, seeds_override);
        let campaign = gr_bench::CcCampaign::new(quality, jobs);
        println!(
            "# congestion-control zoo — {} controller(s) × {} attack(s), {} job(s)\n",
            campaign.ccs.len(),
            gr_bench::cc::ATTACKS.len(),
            jobs,
        );
        let t = Instant::now();
        let report = match campaign.run(&out_dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--cc: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.matrix.render());
        for path in &report.controller_csvs {
            println!("  -> {}", path.display());
        }
        println!(
            "  -> {} ({:.1}s)",
            out_dir.join("cc_matrix.csv").display(),
            t.elapsed().as_secs_f64()
        );
        return ExitCode::SUCCESS;
    }

    if intensity_campaign {
        let quality = quality_for(quick, seeds_override);
        let mut campaign = gr_bench::IntensityCampaign::new(quality.clone(), jobs);
        if let Some(n) = intensity_points {
            campaign = campaign.with_points(n);
        }
        let int_dir = out_dir.join("intensity");
        let mut ctx = RunCtx::with_jobs(quality, jobs);
        if let Some(dir) = &resume {
            ctx = ctx.with_checkpoints(greedy80211::CampaignSpec::resume_from(dir));
        } else if checkpoint_every.is_some() || audit_every.is_some() {
            ctx = ctx.with_checkpoints(greedy80211::CampaignSpec::record(
                &int_dir,
                checkpoint_every.map(sim::SimDuration::from_millis),
                audit_every.map(sim::SimDuration::from_millis),
            ));
        }
        println!(
            "# attack-intensity frontiers — {} detector cell(s) × {} intensities × 2 classes, {} job(s){}\n",
            gr_bench::roc::CELLS.len(),
            campaign.grid.len(),
            jobs,
            if resume.is_some() {
                ", resuming from checkpoints"
            } else if ctx.checkpoint.is_some() {
                ", checkpointing"
            } else {
                ""
            },
        );
        let t = Instant::now();
        let report = match campaign.run_with(&ctx, &int_dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--intensity: {e}");
                return ExitCode::FAILURE;
            }
        };
        for table in &report.frontiers {
            print!("{}", table.render());
        }
        print!("{}", report.knees.render());
        for cf in &report.cells {
            match cf.knee {
                Some(k) => println!(
                    "  {}/{}: minimal detectable intensity {k:.2}{}",
                    cf.cell.detector,
                    cf.cell.mix,
                    match cf.crossover {
                        Some((lo, hi)) => {
                            format!(", sequential-only regime [{lo:.2}, {hi:.2}]")
                        }
                        None => String::new(),
                    },
                ),
                None => println!(
                    "  {}/{}: never reliably detectable on this grid",
                    cf.cell.detector, cf.cell.mix
                ),
            }
        }
        for path in &report.csvs {
            println!("  -> {}", path.display());
        }
        println!("  ({:.1}s)", t.elapsed().as_secs_f64());
        return ExitCode::SUCCESS;
    }

    if roc_campaign {
        let quality = quality_for(quick, seeds_override);
        let campaign = gr_bench::RocCampaign::new(quality, jobs);
        println!(
            "# detection science — {} detector cell(s) × {} adaptive load(s), {} job(s)\n",
            gr_bench::roc::CELLS.len(),
            gr_bench::roc::ADAPTIVE_LOADS_BPS.len(),
            jobs,
        );
        let t = Instant::now();
        let roc_dir = out_dir.join("roc");
        let report = match campaign.run(&roc_dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--roc: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.auc.render());
        print!("{}", report.adaptive.render());
        print!("{}", report.delays.render());
        for path in &report.roc_csvs {
            println!("  -> {}", path.display());
        }
        println!("  -> {}", report.obs_dir.display());
        println!(
            "  -> {} ({:.1}s)",
            roc_dir.join("auc_summary.csv").display(),
            t.elapsed().as_secs_f64()
        );
        return ExitCode::SUCCESS;
    }

    if world {
        let quality = quality_for(quick, seeds_override);
        let mut campaign = gr_bench::WorldCampaign::new(quality, jobs);
        if let Some((r, c)) = cells {
            campaign = campaign.with_grid(r, c);
        }
        campaign.conform = conform;
        campaign.honor_whitelist = !conform_no_whitelist;
        println!(
            "# multi-cell world campaign — {} grid(s) × {} greedy densities, {} job(s){}\n",
            campaign.grids.len(),
            campaign.greedy_fracs.len(),
            jobs,
            if conform { ", conformance-checked" } else { "" },
        );
        let t = Instant::now();
        let report = match campaign.run(&out_dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--world: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.summary.render());
        if let Err(e) = report.summary.write_csv(&out_dir) {
            eprintln!("failed to write world.csv: {e}");
            return ExitCode::FAILURE;
        }
        for path in &report.cell_csvs {
            println!("  -> {}", path.display());
        }
        println!(
            "  -> {} ({:.1}s)",
            out_dir.join("world.csv").display(),
            t.elapsed().as_secs_f64()
        );
        if conform {
            let runs = report.conform_reports.len();
            let violations = report.conform_violations();
            let whitelisted: u64 = report
                .conform_reports
                .iter()
                .map(|(_, r)| r.whitelisted)
                .sum();
            if violations == 0 {
                println!("  conform: {runs} cell(s) clean ({whitelisted} whitelist exemption(s))");
            } else {
                println!("  conform: {violations} violation(s) across {runs} cell(s):");
                for (key, r) in &report.conform_reports {
                    for v in &r.violations {
                        match key {
                            Some(k) => {
                                println!("    [{} p{} s{}] {v}", k.experiment, k.point, k.seed)
                            }
                            None => println!("    {v}"),
                        }
                    }
                }
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    if bench_gate {
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!(
                "failed to create output directory {}: {e}",
                out_dir.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "# perf gate — pinned subset {:?}, sequential, 1 seed, best of {} passes\n",
            gate::GATE_SUBSET,
            gate::GATE_PASSES
        );
        let report = gate::run_gate();
        for st in &report.stats {
            println!(
                "  {:<6} {:>10.3}s  {:>10} events  {:>9.0} events/s  {:>6.1} ns/event",
                st.id,
                st.wall_s,
                st.events,
                st.events_per_sec(),
                st.ns_per_event()
            );
        }
        println!(
            "  total  {:>10.3}s  {:>10} events  {:>9.0} events/s  {:>6.1} ns/event  (peak RSS {} KiB)",
            report.total_wall_s(),
            report.total_events(),
            report.events_per_sec(),
            report.ns_per_event(),
            report.peak_rss_kib
        );
        println!(
            "  conform pass: {:.3}s ({:+.1} % overhead), {} run(s), {} violation(s)",
            report.conform_wall_s,
            report.conform_overhead_pct(),
            report.conform_runs,
            report.conform_violations
        );
        println!(
            "  world smoke: {:.0} events/s at 1 cell, {:.0} events/s at 3x3 co-channel cells",
            report.world.cells1_events_per_sec, report.world.cells9_events_per_sec
        );
        println!(
            "  cc smoke: {:.0} events/s under cubic, {:.0} events/s under bbr",
            report.cc.cubic_events_per_sec, report.cc.bbr_events_per_sec
        );
        println!(
            "  sustained: {:.0} events/s (8-station saturating hotspot)",
            report.sustained_events_per_sec
        );
        println!(
            "  roc smoke: {:.0} events/s (pinned detection-science campaign)",
            report.roc_events_per_sec
        );
        println!(
            "  intensity smoke: {:.0} events/s (two-point attack-intensity frontier)",
            report.intensity_events_per_sec
        );
        let path = out_dir.join(format!("BENCH_{}.json", report.date));
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  -> {}", path.display());
        if gate_check {
            let baseline = out_dir.join("BENCH_BASELINE.json");
            match gate::check_against_baseline(&report, &baseline, gate::GATE_TOLERANCE) {
                Ok(msg) => println!("  {msg}"),
                Err(msg) => {
                    eprintln!("  {msg}");
                    return ExitCode::FAILURE;
                }
            }
            match report.conform_check(gate::CONFORM_OVERHEAD_LIMIT_PCT) {
                Ok(msg) => println!("  {msg}"),
                Err(msg) => {
                    eprintln!("  {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let reg = registry();
    if list {
        for (id, _) in &reg {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if ids.is_empty() {
        eprintln!("no experiments selected; try `repro all` or `repro --list`");
        return ExitCode::FAILURE;
    }
    let selected: Vec<&(&str, gr_bench::Generator)> = if ids.iter().any(|i| i == "all") {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            let canonical = normalize_id(id);
            match reg.iter().find(|(rid, _)| *rid == canonical) {
                Some(entry) => sel.push(entry),
                None => {
                    let valid: Vec<&str> = reg.iter().map(|(rid, _)| *rid).collect();
                    eprintln!(
                        "unknown experiment id `{id}`; valid ids: all, {}",
                        valid.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!(
            "failed to create output directory {}: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let quality = quality_for(quick, seeds_override);
    let campaign = record.then(|| {
        obs::profile::reset();
        obs::profile::set_enabled(true);
        ObsCampaign::new(obs::ObsSpec {
            filter: filter.clone(),
            ..obs::ObsSpec::default()
        })
    });
    let mut ctx = RunCtx::with_jobs(quality, jobs);
    if let Some(camp) = &campaign {
        ctx = ctx.with_record(camp.clone());
    }
    let conform_camp = conform.then(|| {
        let c = ConformCampaign::new();
        if conform_no_whitelist {
            c.without_whitelist()
        } else {
            c
        }
    });
    if let Some(c) = &conform_camp {
        ctx = ctx.with_conform(c.clone());
    }
    let checkpointing = checkpoint_every.is_some() || audit_every.is_some();
    if let Some(dir) = &resume {
        ctx = ctx.with_checkpoints(greedy80211::CampaignSpec::resume_from(dir));
    } else if checkpointing {
        ctx = ctx.with_checkpoints(greedy80211::CampaignSpec::record(
            &out_dir,
            checkpoint_every.map(sim::SimDuration::from_millis),
            audit_every.map(sim::SimDuration::from_millis),
        ));
    }
    println!(
        "# greedy80211 reproduction — {} experiment(s), {} fidelity, {} job(s){}{}{}\n",
        selected.len(),
        if quick { "quick" } else { "full" },
        jobs,
        if record { ", recording" } else { "" },
        if conform { ", conformance-checked" } else { "" },
        if resume.is_some() {
            ", resuming from checkpoints"
        } else if checkpointing {
            ", checkpointing"
        } else {
            ""
        },
    );
    let t_all = Instant::now();
    let mut timings = Vec::new();
    let mut conform_failed = false;
    for (id, gen) in selected {
        let t = Instant::now();
        let before = stats::snapshot();
        let experiment = gen(&ctx);
        let used = stats::snapshot().since(before);
        let wall_s = t.elapsed().as_secs_f64();
        print!("{}", experiment.render());
        match experiment.write_csv(&out_dir) {
            Ok(()) => println!(
                "  -> {} ({:.1}s, {:.0} events/s)\n",
                out_dir.join(format!("{id}.csv")).display(),
                wall_s,
                used.events_processed as f64 / wall_s.max(1e-9),
            ),
            Err(e) => {
                eprintln!("failed to write CSV for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(camp) = &campaign {
            match export_obs(&out_dir, camp) {
                Ok(0) => {}
                Ok(n) => println!("  -> {} ({n} run(s))\n", out_dir.join("obs").display()),
                Err(e) => {
                    eprintln!("failed to write obs artifacts for {id}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(camp) = &conform_camp {
            let reports = camp.take_reports();
            let runs = reports.len();
            let violations: u64 = reports.iter().map(|(_, r)| r.violation_count()).sum();
            let whitelisted: u64 = reports.iter().map(|(_, r)| r.whitelisted).sum();
            if violations == 0 {
                println!("  conform: {runs} run(s) clean ({whitelisted} whitelist exemption(s))\n");
            } else {
                conform_failed = true;
                println!("  conform: {violations} violation(s) across {runs} run(s):");
                for (key, report) in &reports {
                    for v in &report.violations {
                        match key {
                            Some(k) => {
                                println!("    [{} p{} s{}] {v}", k.experiment, k.point, k.seed)
                            }
                            None => println!("    {v}"),
                        }
                    }
                }
                println!();
            }
        }
        timings.push(Timing {
            id: id.to_string(),
            wall_s,
            events: used.events_processed,
            runs: used.runs_completed,
        });
    }
    let total_s = t_all.elapsed().as_secs_f64();
    println!("total: {total_s:.1}s");
    let profile = campaign.as_ref().map(|_| obs::profile::snapshot());
    if let Err(e) = write_summary(&out_dir, jobs, quick, &timings, total_s, profile.as_deref()) {
        eprintln!("failed to write bench_summary.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("  -> {}", out_dir.join("bench_summary.json").display());
    if conform_failed {
        eprintln!("invariant violations found; see the conform lines above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
