//! Result tables: formatted console output plus CSV files.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One regenerated table/figure: a title, column headers and rows of
/// pre-formatted cells.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Short id (`fig1`, `tab2`, …) — also the CSV file stem.
    pub id: &'static str,
    /// Human-readable description, including the paper artifact.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl Experiment {
    /// Creates an empty experiment table.
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Self {
        Experiment {
            id,
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        out
    }

    /// Renders the table as CSV (header plus rows), exactly the bytes
    /// [`Experiment::write_csv`] writes.
    pub fn csv(&self) -> String {
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        csv
    }

    /// Writes `<dir>/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.csv())
    }
}

/// Formats a goodput in Mb/s with three decimals.
pub fn mbps(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio/probability with three decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut e = Experiment::new("figX", "demo", &["a", "longer"]);
        e.push_row(vec!["1".into(), "2".into()]);
        e.push_row(vec!["100".into(), "2000000".into()]);
        let r = e.render();
        assert!(r.contains("## figX — demo"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut e = Experiment::new("figX", "demo", &["a", "b"]);
        e.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut e = Experiment::new("figY", "demo", &["x", "y"]);
        e.push_row(vec!["1".into(), "2.5".into()]);
        let dir = std::env::temp_dir().join("gr_bench_test_csv");
        e.write_csv(&dir).unwrap();
        let written = std::fs::read_to_string(dir.join("figY.csv")).unwrap();
        assert_eq!(written, "x,y\n1,2.5\n");
    }
}
