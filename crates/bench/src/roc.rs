//! Detection-science campaign behind `repro roc` (DESIGN.md §17).
//!
//! Three layers over the same recorded per-window decision statistics:
//!
//! 1. **ROC frontiers** — every detector runs *threshold-free* under
//!    labelled honest and greedy campaigns (honest and attacked runs
//!    share one [`RunKey`], hence matched channel conditions); the
//!    threshold grid is swept offline over the recorded statistics,
//!    yielding one `roc_<detector>.csv` frontier per detector plus an
//!    `auc_summary.csv` with the exact Mann–Whitney AUC and the shipped
//!    operating point of each `(detector, traffic-mix)` cell.
//! 2. **Load-adaptive thresholds** — honest runs across an offered-load
//!    sweep (`adaptive_validation.csv`) show the fixed spoof-guard
//!    threshold's per-window false-positive rate drifting with load
//!    while [`detsci::AdaptiveThreshold`] holds it near the budget.
//! 3. **Sequential detectors** — CUSUM and SPRT replay the greedy
//!    window series; their detection delays land in
//!    `delay_distribution.csv` next to the windowed fixed-threshold
//!    detector's, and in the `detect_delay_*_us` obs histograms.
//!
//! The evaluation itself narrates into a standard `obs` recorder
//! (threshold trajectories, CUSUM/SPRT crossings, delay histograms)
//! exported under the `roc/eval` run key. Everything downstream of the
//! simulations is plain arithmetic and the simulations are keyed by
//! [`RunKey`] alone, so every artifact is byte-identical at any `--jobs`
//! width.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use detsci::events::{
    CUSUM_CROSS, DELAY_HIST_CUSUM, DELAY_HIST_SPRT, DELAY_HIST_WINDOWED, SPRT_CROSS, THRESH_UPDATE,
};
use detsci::roc::linear_grid;
use detsci::{auc, AdaptiveConfig, AdaptiveThreshold, Cusum, OperatingPoint, Sprt, SprtVerdict};
use greedy80211::detect::{GrcSnapshot, GrcTuning, WindowStat, WindowTrack};
use greedy80211::{
    Axis, CrossLayerDetector, DominoDetector, FakeAckDetector, GreedySenderPolicy, Run, RunOutcome,
    Scenario, TransportKind,
};
use net::NetworkBuilder;
use phy::{PhyParams, Position};
use sim::{RunKey, SimDuration, SimTime};

use crate::cc::LOSSY_BER;
use crate::table::Experiment;
use crate::{Quality, RunCtx};

/// One `(detector, traffic mix)` ROC cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Detector id (`nav`, `spoof`, `fake`, `cross`, `domino`).
    pub detector: &'static str,
    /// Traffic-mix id (`udp`, `tcp`).
    pub mix: &'static str,
}

/// Cells swept, in artifact order. The NAV and spoof guards get both
/// mixes: the NAV margin statistic depends on which frames carry
/// inflated NAVs, and the spoof guard's evidence stream depends on the
/// victim still transmitting — under TCP the attack collapses the victim
/// flow and starves ACK vetting (visible as a much weaker frontier),
/// while saturating UDP keeps the stream alive. The remaining detectors
/// run under the mix their misbehavior targets.
pub const CELLS: &[Cell] = &[
    Cell {
        detector: "nav",
        mix: "udp",
    },
    Cell {
        detector: "nav",
        mix: "tcp",
    },
    Cell {
        detector: "spoof",
        mix: "udp",
    },
    Cell {
        detector: "spoof",
        mix: "tcp",
    },
    Cell {
        detector: "fake",
        mix: "udp",
    },
    Cell {
        detector: "cross",
        mix: "tcp",
    },
    Cell {
        detector: "domino",
        mix: "udp",
    },
];

/// Detector ids in per-detector CSV order.
pub const DETECTORS: &[&str] = &["nav", "spoof", "fake", "cross", "domino"];

/// Offered UDP loads (payload bits/s) of the adaptive-threshold
/// validation sweep — spanning the regime where a fixed per-window
/// threshold's false-positive rate visibly drifts.
pub const ADAPTIVE_LOADS_BPS: &[u64] = &[500_000, 2_000_000, 8_000_000];

/// CUSUM reference value: half the standardized shift the test is tuned
/// to catch fastest (δ = 1σ).
pub const CUSUM_K: f64 = 0.5;
/// CUSUM in-control average run length target (windows) — the classic
/// "370" of a 3σ Shewhart chart.
pub const CUSUM_ARL0: f64 = 370.0;
/// SPRT false-alarm target α.
pub const SPRT_ALPHA: f64 = 0.01;
/// SPRT miss target β.
pub const SPRT_BETA: f64 = 0.05;

/// A planned `repro roc` campaign.
#[derive(Debug, Clone)]
pub struct RocCampaign {
    /// Run length and replication seeds.
    pub quality: Quality,
    /// Worker threads the simulation batch shards across.
    pub jobs: usize,
    /// Decision-statistic window width (default 200 ms).
    pub window: SimDuration,
}

/// Result of a finished `repro roc` campaign.
#[derive(Debug)]
pub struct RocCampaignReport {
    /// AUC and operating point per `(detector, mix)` cell.
    pub auc: Experiment,
    /// Fixed vs adaptive false-positive rate per offered load.
    pub adaptive: Experiment,
    /// Detection-delay quantiles per `(detector, mix, method)`.
    pub delays: Experiment,
    /// Per-detector ROC frontier CSVs written, in [`DETECTORS`] order.
    pub roc_csvs: Vec<PathBuf>,
    /// Directory the evaluation's obs artifacts were exported into.
    pub obs_dir: PathBuf,
}

impl RocCampaign {
    /// The default cell set at `quality` fidelity with 200 ms windows.
    pub fn new(quality: Quality, jobs: usize) -> Self {
        RocCampaign {
            quality,
            jobs,
            window: SimDuration::from_millis(200),
        }
    }

    /// Runs the campaign and writes every artifact into `out_dir`.
    ///
    /// # Errors
    ///
    /// Propagates CSV/obs artifact I/O errors.
    pub fn run(&self, out_dir: &Path) -> io::Result<RocCampaignReport> {
        std::fs::create_dir_all(out_dir)?;
        let ctx = RunCtx::with_jobs(self.quality.clone(), self.jobs);
        let window = self.window;
        let width_us = window.as_micros();

        // Phase 1: every (cell, seed) simulation pair, one parallel batch.
        let per_cell = collect(&ctx, "roc/cells", CELLS, |cell, key| {
            measure_cell(cell, &self.quality, window, key)
        });
        // Phase 2: the honest load sweep for adaptive-threshold validation.
        let per_load = collect(&ctx, "roc/adaptive", ADAPTIVE_LOADS_BPS, |&load, key| {
            measure_adaptive(load, &self.quality, window, key)
        });

        // Phase 3 (sequential, pure arithmetic): threshold sweeps,
        // adaptive replay, sequential-detector replay — narrated into one
        // recorder exported under the `roc/eval` key.
        let rec = obs::ObsSpec {
            capacity: 16_384,
            probe_interval: None,
            filter: obs::Filter::all(),
        }
        .recorder();

        // --- ROC frontiers + AUC summary -------------------------------
        let pooled: Vec<(Vec<f64>, Vec<f64>)> = per_cell
            .iter()
            .map(|seeds| {
                let mut honest = Vec::new();
                let mut greedy = Vec::new();
                for cs in seeds {
                    honest.extend_from_slice(&cs.honest);
                    greedy.extend_from_slice(&cs.greedy);
                }
                (honest, greedy)
            })
            .collect();
        let mut roc_csvs = Vec::new();
        for &det in DETECTORS {
            let mut table = Experiment::new(
                roc_table_id(det),
                format!("ROC frontier: {det} detector, threshold sweep per traffic mix"),
                &[
                    "mix",
                    "threshold",
                    "tp",
                    "fp",
                    "tn",
                    "fn",
                    "tpr",
                    "fpr",
                    "precision",
                ],
            );
            let grid = grid_for(det);
            for (ci, cell) in CELLS.iter().enumerate() {
                if cell.detector != det {
                    continue;
                }
                let (honest, greedy) = &pooled[ci];
                for p in detsci::roc_frontier(honest, greedy, &grid) {
                    table.push_row(vec![
                        cell.mix.to_string(),
                        format!("{:.3}", p.threshold),
                        p.tp.to_string(),
                        p.fp.to_string(),
                        p.tn.to_string(),
                        p.fn_.to_string(),
                        format!("{:.4}", p.tpr()),
                        format!("{:.4}", p.fpr()),
                        format!("{:.4}", p.precision()),
                    ]);
                }
            }
            table.write_csv(out_dir)?;
            roc_csvs.push(out_dir.join(format!("{}.csv", roc_table_id(det))));
        }
        let mut auc_table = Experiment::new(
            "auc_summary",
            "Detection science: AUC and shipped operating point per detector × mix",
            &[
                "detector",
                "mix",
                "honest_n",
                "greedy_n",
                "auc",
                "op_threshold",
                "op_tpr",
                "op_fpr",
                "op_precision",
            ],
        );
        for (ci, cell) in CELLS.iter().enumerate() {
            let (honest, greedy) = &pooled[ci];
            let area = auc(honest, greedy).unwrap_or(f64::NAN);
            let op = OperatingPoint::at(honest, greedy, operating_threshold(cell.detector));
            auc_table.push_row(vec![
                cell.detector.to_string(),
                cell.mix.to_string(),
                honest.len().to_string(),
                greedy.len().to_string(),
                format!("{area:.4}"),
                format!("{:.3}", op.threshold),
                format!("{:.4}", op.tpr),
                format!("{:.4}", op.fpr),
                format!("{:.4}", op.precision),
            ]);
        }
        auc_table.write_csv(out_dir)?;

        // --- adaptive-threshold validation -----------------------------
        let fixed = operating_threshold("spoof");
        let mut adaptive_table = Experiment::new(
            "adaptive_validation",
            "Load-adaptive thresholds: honest-run window FPR, fixed vs adaptive",
            &[
                "load_mbps",
                "windows",
                "avg_rate",
                "fixed_fpr",
                "adaptive_fpr",
            ],
        );
        for (li, (&load, seeds)) in ADAPTIVE_LOADS_BPS.iter().zip(&per_load).enumerate() {
            let evals: Vec<AdaptiveEval> = seeds
                .iter()
                .enumerate()
                .map(|(si, series)| {
                    // Seed 0's threshold trajectory is narrated; one
                    // trajectory per load keeps the event volume bounded.
                    let narrate = (si == 0).then_some((&rec, li as u16, width_us));
                    eval_adaptive(series, fixed, narrate)
                })
                .collect();
            let med = |f: fn(&AdaptiveEval) -> f64| {
                sim::stats::median(&evals.iter().map(f).collect::<Vec<_>>()).expect("seeds")
            };
            adaptive_table.push_row(vec![
                format!("{:.1}", load as f64 / 1e6),
                format!("{:.0}", med(|e| e.windows)),
                format!("{:.1}", med(|e| e.avg_rate)),
                format!("{:.4}", med(|e| e.fixed_fpr)),
                format!("{:.4}", med(|e| e.adaptive_fpr)),
            ]);
        }
        adaptive_table.write_csv(out_dir)?;

        // --- sequential detectors: detection-delay comparison ----------
        let mut delay_table = Experiment::new(
            "delay_distribution",
            "Detection delay: windowed vs CUSUM vs SPRT over greedy window series",
            &[
                "detector", "mix", "method", "runs", "fired", "p50_us", "p95_us",
            ],
        );
        for (ci, cell) in CELLS.iter().enumerate() {
            if !matches!(cell.detector, "nav" | "spoof") {
                continue;
            }
            let seeds = &per_cell[ci];
            // Standardization constants from pooled honest window means —
            // one honest calibration covers every seed of the cell.
            let means: Vec<f64> = seeds
                .iter()
                .flat_map(|cs| {
                    cs.honest_windows
                        .iter()
                        .filter(|w| w.samples > 0)
                        .map(WindowStat::mean)
                })
                .collect();
            let (mu0, sigma0) = calibration(&means);
            let op = operating_threshold(cell.detector);
            let mut acc = [
                DelayAcc::new("windowed", DELAY_HIST_WINDOWED),
                DelayAcc::new("cusum", DELAY_HIST_CUSUM),
                DelayAcc::new("sprt", DELAY_HIST_SPRT),
            ];
            for cs in seeds {
                let series = densify(&cs.greedy_windows);
                for a in &mut acc {
                    a.runs += 1;
                }
                if series.is_empty() {
                    continue;
                }
                let base = series[0].idx;
                let std = |w: &WindowStat| (w.mean() - mu0) / sigma0;
                // Windowed fixed-threshold: first window whose peak
                // exceeds the shipped threshold.
                if let Some(pos) = series.iter().position(|w| w.samples > 0 && w.peak > op) {
                    acc[0].fire(&rec, base, pos, width_us);
                }
                // CUSUM.
                let mut cusum = Cusum::with_arl(CUSUM_K, CUSUM_ARL0);
                for (pos, w) in series.iter().enumerate() {
                    if cusum.step(std(w)) {
                        let at = acc[1].fire(&rec, base, pos, width_us);
                        rec.borrow_mut().emit(
                            at,
                            ci as u16,
                            &CUSUM_CROSS,
                            &[(base + pos as u64) as f64, cusum.value()],
                        );
                        break;
                    }
                }
                // SPRT: first H₁ verdict; H₀ verdicts rearm (renewal).
                let mut sprt = Sprt::new(SPRT_ALPHA, SPRT_BETA, 0.0, 1.0, 1.0);
                for (pos, w) in series.iter().enumerate() {
                    let x = std(w);
                    if sprt.step(x) == Some(SprtVerdict::Greedy) {
                        let at = acc[2].fire(&rec, base, pos, width_us);
                        rec.borrow_mut().emit(
                            at,
                            ci as u16,
                            &SPRT_CROSS,
                            &[(base + pos as u64) as f64, x, 1.0],
                        );
                        break;
                    }
                }
            }
            for a in &acc {
                delay_table.push_row(a.row(cell));
            }
        }
        delay_table.write_csv(out_dir)?;

        // --- obs export ------------------------------------------------
        let key = RunKey::new("roc/eval", 0, 0);
        let report = rec.borrow_mut().drain_report();
        let obs_dir = out_dir.join("obs").join(obs::run_dir_name(&key));
        obs::write_artifacts(&obs_dir, &key, &report)?;

        Ok(RocCampaignReport {
            auc: auc_table,
            adaptive: adaptive_table,
            delays: delay_table,
            roc_csvs,
            obs_dir,
        })
    }
}

/// Per-detector frontier CSV ids (static for [`Experiment`]).
///
/// # Panics
///
/// Panics on a detector id outside [`DETECTORS`].
pub fn roc_table_id(detector: &str) -> &'static str {
    match detector {
        "nav" => "roc_nav",
        "spoof" => "roc_spoof",
        "fake" => "roc_fake",
        "cross" => "roc_cross",
        "domino" => "roc_domino",
        other => panic!("unknown detector {other}"),
    }
}

/// Threshold grid per detector, spanning each statistic's natural range
/// (NAV margin µs, RSSI deviation dB, loss-gap, retx ratio, backoff
/// deficit in slots).
///
/// # Panics
///
/// Panics on a detector id outside [`DETECTORS`].
pub fn grid_for(detector: &str) -> Vec<f64> {
    match detector {
        "nav" => linear_grid(0.0, 12_000.0, 24),
        "spoof" => linear_grid(0.0, 8.0, 32),
        "fake" => linear_grid(0.0, 0.5, 25),
        "cross" => linear_grid(0.0, 1.0, 20),
        "domino" => linear_grid(0.0, 15.5, 31),
        other => panic!("unknown detector {other}"),
    }
}

/// The threshold each detector actually ships with — the operating point
/// reported in `auc_summary.csv`, pulled from the defaults so the table
/// can never drift from the code.
///
/// # Panics
///
/// Panics on a detector id outside [`DETECTORS`].
pub fn operating_threshold(detector: &str) -> f64 {
    match detector {
        "nav" => GrcTuning::default().nav_tolerance_us as f64,
        "spoof" => GrcTuning::default().rssi_threshold_db,
        "fake" => FakeAckDetector::default().threshold,
        "cross" => CrossLayerDetector::default().ratio_threshold,
        "domino" => {
            let d = DominoDetector::new(PhyParams::dot11b());
            d.params.cw_min as f64 / 2.0 * d.threshold_fraction
        }
        other => panic!("unknown detector {other}"),
    }
}

/// Raw labelled measurements of one `(cell, seed)` job.
#[derive(Debug, Clone, Default)]
pub struct CellSeed {
    /// Honest-class decision-statistic samples.
    pub honest: Vec<f64>,
    /// Greedy-class decision-statistic samples.
    pub greedy: Vec<f64>,
    /// Merged per-window honest series (windowed detectors only).
    pub honest_windows: Vec<WindowStat>,
    /// Merged per-window greedy series (windowed detectors only).
    pub greedy_windows: Vec<WindowStat>,
}

/// Like [`crate::sweep()`], but returns every raw per-seed measurement (no
/// medians) and hands each job its [`RunKey`] so `Run::plan(..).keyed`
/// derives the seed from the key alone. Results are regrouped per point
/// in submission order, so aggregation is independent of `--jobs`.
///
/// # Panics
///
/// Panics when `ctx.quality.seeds` is empty.
pub fn collect<P, T, F>(ctx: &RunCtx, label: &str, points: &[P], measure: F) -> Vec<Vec<T>>
where
    P: Sync,
    T: Send,
    F: Fn(&P, RunKey) -> T + Sync,
{
    let n_seeds = ctx.quality.seeds.len();
    assert!(n_seeds > 0, "at least one seed");
    let measure = &measure;
    let jobs: Vec<_> = points
        .iter()
        .enumerate()
        .flat_map(|(pi, point)| {
            (0..n_seeds).map(move |si| {
                let key = RunKey::new(label, pi as u64, si as u64);
                move || measure(point, key)
            })
        })
        .collect();
    let mut flat = ctx.runner.execute_all(jobs).into_iter();
    points
        .iter()
        .map(|_| {
            (0..n_seeds)
                .map(|_| flat.next().expect("job count"))
                .collect()
        })
        .collect()
}

/// Which windowed guard a cell reads.
#[derive(Debug, Clone, Copy)]
pub enum Guard {
    /// The GRC NAV-inflation guard (per-window NAV margin µs).
    Nav,
    /// The GRC ACK-spoof guard (per-window RSSI deviation dB).
    Spoof,
}

/// One `(cell, seed)` job at full attack intensity: the honest run and
/// the attacked run under the same key, reduced to labelled statistics.
pub fn measure_cell(cell: &Cell, q: &Quality, window: SimDuration, key: RunKey) -> CellSeed {
    measure_cell_at(cell, q, window, key, 1.0)
}

/// Like [`measure_cell`], but with the attack scaled to `intensity` on
/// the cell's misbehavior axis ([`Axis::for_detector`]): NAV inflation
/// in µs, spoof/fake forgery probability, or DOMINO backoff fraction.
/// Intensity 1.0 reproduces [`measure_cell`] exactly. Both classes run
/// under the same `key`, so channel draws are matched.
///
/// # Panics
///
/// Panics on a detector id outside [`DETECTORS`].
pub fn measure_cell_at(
    cell: &Cell,
    q: &Quality,
    window: SimDuration,
    key: RunKey,
    intensity: f64,
) -> CellSeed {
    let honest = measure_class(cell, q, window, key.clone(), intensity, false);
    let greedy = measure_class(cell, q, window, key, intensity, true);
    CellSeed {
        honest: honest.stats,
        greedy: greedy.stats,
        honest_windows: honest.windows,
        greedy_windows: greedy.windows,
    }
}

/// One class of one `(cell, intensity, seed)` measurement, as produced
/// by [`measure_class`] — the single-simulation unit the intensity
/// campaign shards so each run can carry its own checkpoint file.
#[derive(Debug, Clone, Default)]
pub struct ClassSeed {
    /// Decision-statistic samples of this class.
    pub stats: Vec<f64>,
    /// Merged per-window series (windowed detectors only).
    pub windows: Vec<WindowStat>,
}

/// One simulation: the honest (`attacked = false`) or attacked half of a
/// cell at `intensity`, reduced to labelled statistics. The spoof/cross
/// victim comes from a probe topology build (deterministic, no
/// execution), so the attacked class never depends on an executed honest
/// run. [`measure_cell_at`] is exactly both classes under one key.
///
/// # Panics
///
/// Panics on a detector id outside [`DETECTORS`].
pub fn measure_class(
    cell: &Cell,
    q: &Quality,
    window: SimDuration,
    key: RunKey,
    intensity: f64,
    attacked: bool,
) -> ClassSeed {
    match cell.detector {
        "nav" => measure_windowed(cell.mix, q, window, key, Guard::Nav, intensity, attacked),
        "spoof" => measure_windowed(cell.mix, q, window, key, Guard::Spoof, intensity, attacked),
        "fake" => measure_fake(q, key, intensity, attacked),
        "cross" => measure_cross(q, key, intensity, attacked),
        "domino" => measure_domino(q, key, intensity, attacked),
        other => panic!("unknown detector {other}"),
    }
}

/// The standard two-pair topology with windowed GRC statistics armed
/// (detect-only — ROC runs must not mitigate, or the statistic stream
/// after the first detection would describe the mitigated channel).
pub fn windowed_scenario(mix: &str, q: &Quality, window: SimDuration, ber: f64) -> Scenario {
    Scenario {
        transport: match mix {
            "udp" => TransportKind::SATURATING_UDP,
            _ => TransportKind::Tcp,
        },
        byte_error_rate: ber,
        grc: Some(false),
        grc_windows: Some(window),
        duration: q.duration,
        ..Scenario::default()
    }
}

/// Merges one guard's window tracks across all GRC nodes into a single
/// idx-ordered series: counts and sums add, peaks take the max (a window
/// is flagged when *any* observer's peak crosses).
pub fn guard_windows(out: &RunOutcome, guard: Guard) -> Vec<WindowStat> {
    let mut merged: BTreeMap<u64, WindowStat> = BTreeMap::new();
    let pick = |snap: &GrcSnapshot| -> Option<WindowTrack> {
        match guard {
            Guard::Nav => snap.nav.windows.clone(),
            Guard::Spoof => snap.spoof.windows.clone(),
        }
    };
    for (_, snap) in &out.grc {
        let Some(track) = pick(snap) else { continue };
        for w in track.stats() {
            merged
                .entry(w.idx)
                .and_modify(|m| {
                    if w.peak > m.peak {
                        m.peak = w.peak;
                    }
                    m.sum += w.sum;
                    m.samples += w.samples;
                })
                .or_insert(w);
        }
    }
    merged.into_values().collect()
}

fn measure_windowed(
    mix: &str,
    q: &Quality,
    window: SimDuration,
    key: RunKey,
    guard: Guard,
    intensity: f64,
    attacked: bool,
) -> ClassSeed {
    // The spoof cell needs a lossy channel: ACK forgery only has frames
    // to lie about when some are actually lost (same rate as `repro
    // --cc`'s spoof cells, both classes so labels differ only by attack).
    let ber = match guard {
        Guard::Nav => 0.0,
        Guard::Spoof => LOSSY_BER,
    };
    let mut s = windowed_scenario(mix, q, window, ber);
    if attacked {
        let cfg = match guard {
            Guard::Nav => Axis::NavInflation
                .receiver_config(intensity, &[])
                .expect("receiver axis"),
            Guard::Spoof => {
                let victim = s.build().expect("valid scenario").receivers[0];
                Axis::AckSpoof
                    .receiver_config(intensity, &[victim])
                    .expect("receiver axis")
            }
        };
        s.greedy = vec![(1, cfg)];
    }
    let run = Run::plan(&s).keyed(key).execute().expect("valid scenario");
    let windows = guard_windows(&run, guard);
    ClassSeed {
        stats: windows.iter().map(|w| w.peak).collect(),
        windows,
    }
}

/// Offered load of the fake-ACK cell (bits/s per pair). Moderate on
/// purpose: under *saturating* UDP the sender's interface queue is
/// permanently full, almost every probe is dropped before reaching the
/// air (queue drops don't count as sent probes), and the round-trip loss
/// estimate rests on a handful of samples.
const FAKE_LOAD_BPS: u64 = 1_000_000;

/// The fake-ACK cell's scenario: probed moderate-load UDP over a lossy
/// channel (the detector compares probed round-trip loss against the
/// MAC-predicted value, so there must be losses to predict).
fn fake_scenario(q: &Quality) -> Scenario {
    Scenario {
        transport: TransportKind::Udp {
            rate_bps: FAKE_LOAD_BPS,
        },
        byte_error_rate: LOSSY_BER,
        probes: true,
        duration: q.duration,
        ..Scenario::default()
    }
}

/// Fake-ACK decision statistic for pair `i`: measured round-trip probe
/// loss minus the honest expectation from the sender's MAC counters.
/// `None` when no probe completed (very short runs).
fn fake_stat(out: &RunOutcome, i: usize) -> Option<f64> {
    let d = FakeAckDetector::default();
    let mac_loss = FakeAckDetector::mac_loss_from_counters(
        &out.metrics
            .node(out.senders[i])
            .expect("sender metrics")
            .counters,
    );
    let probe = out.metrics.flow(out.probe_flows[i])?.probe_app_loss?;
    Some(probe - d.expected_round_trip_loss(mac_loss))
}

fn measure_fake(q: &Quality, key: RunKey, intensity: f64, attacked: bool) -> ClassSeed {
    let mut s = fake_scenario(q);
    if attacked {
        s.greedy = vec![(
            1,
            Axis::FakeAck
                .receiver_config(intensity, &[])
                .expect("receiver axis"),
        )];
    }
    let run = Run::plan(&s).keyed(key).execute().expect("valid scenario");
    ClassSeed {
        stats: if attacked {
            fake_stat(&run, 1).into_iter().collect()
        } else {
            (0..s.pairs).filter_map(|i| fake_stat(&run, i)).collect()
        },
        ..ClassSeed::default()
    }
}

/// The cross-layer cell's scenario: two TCP pairs over a lossy channel.
fn cross_scenario(q: &Quality) -> Scenario {
    Scenario {
        byte_error_rate: LOSSY_BER,
        duration: q.duration,
        ..Scenario::default()
    }
}

/// Cross-layer decision statistic for flow `i`: fraction of TCP
/// retransmissions that concerned MAC-acknowledged segments.
fn cross_stat(out: &RunOutcome, i: usize) -> f64 {
    let m = out.metrics.flow(out.flows[i]).expect("flow metrics");
    if m.retransmissions == 0 {
        0.0
    } else {
        m.retx_of_mac_acked as f64 / m.retransmissions as f64
    }
}

fn measure_cross(q: &Quality, key: RunKey, intensity: f64, attacked: bool) -> ClassSeed {
    let mut s = cross_scenario(q);
    if attacked {
        let victim = s.build().expect("valid scenario").receivers[0];
        s.greedy = vec![(
            1,
            Axis::AckSpoof
                .receiver_config(intensity, &[victim])
                .expect("receiver axis"),
        )];
    }
    let run = Run::plan(&s).keyed(key).execute().expect("valid scenario");
    ClassSeed {
        stats: if attacked {
            // The victim is pair 0's flow — its sender receives the
            // forged MAC ACKs, so its TCP retransmissions are the
            // evidence.
            vec![cross_stat(&run, 0)]
        } else {
            (0..s.pairs).map(|i| cross_stat(&run, i)).collect()
        },
        ..ClassSeed::default()
    }
}

/// One DOMINO run (the ext2 manual topology: two UDP pairs, tracing on)
/// reduced to per-sender backoff deficits `CWmin/2 − avg` in slots —
/// larger means greedier. Senders the detector never judged are absent.
/// `greedy_fraction` is the cheater's contention-window fraction
/// (`None` = honest backoff).
fn domino_deficits(q: &Quality, seed: u64, greedy_fraction: Option<f64>) -> Vec<(bool, f64)> {
    let params = PhyParams::dot11b();
    let greedy_sender = greedy_fraction.is_some();
    let mut b = NetworkBuilder::new(params).seed(seed);
    let s0 = b.add_node(Position::new(0.0, 0.0));
    let r0 = b.add_node(Position::new(20.0, 0.0));
    let s1 = if let Some(fraction) = greedy_fraction {
        b.add_node_with_policy(Position::new(0.0, 20.0), GreedySenderPolicy::new(fraction))
    } else {
        b.add_node(Position::new(0.0, 20.0))
    };
    let r1 = b.add_node(Position::new(20.0, 20.0));
    b.udp_flow(s0, r0, 1024, 10_000_000);
    b.udp_flow(s1, r1, 1024, 10_000_000);
    let mut net = b.build();
    net.enable_trace(2_000_000);
    net.run(q.duration);
    let report = DominoDetector::new(params).analyze(&net.trace().expect("trace enabled"));
    let nominal = params.cw_min as f64 / 2.0;
    [(s0, false), (s1, greedy_sender)]
        .into_iter()
        .filter_map(|(id, is_greedy)| {
            report
                .avg_backoff_slots
                .get(&id.0)
                .map(|&avg| (is_greedy, nominal - avg))
        })
        .collect()
}

fn measure_domino(q: &Quality, key: RunKey, intensity: f64, attacked: bool) -> ClassSeed {
    let seed = key.stream_seed();
    ClassSeed {
        stats: if attacked {
            domino_deficits(q, seed, Some(Axis::BackoffCheat.knob_at(intensity)))
                .into_iter()
                .filter(|(g, _)| *g)
                .map(|(_, d)| d)
                .collect()
        } else {
            domino_deficits(q, seed, None)
                .into_iter()
                .map(|(_, d)| d)
                .collect()
        },
        ..ClassSeed::default()
    }
}

/// One adaptive-sweep job: an honest run at the given offered load, its
/// spoof-guard windows merged and densified (empty windows are real "no
/// traffic" data points for the rate estimator).
fn measure_adaptive(
    load_bps: u64,
    q: &Quality,
    window: SimDuration,
    key: RunKey,
) -> Vec<WindowStat> {
    let s = Scenario {
        transport: TransportKind::Udp { rate_bps: load_bps },
        grc: Some(false),
        grc_windows: Some(window),
        duration: q.duration,
        ..Scenario::default()
    };
    let out = Run::plan(&s).keyed(key).execute().expect("valid scenario");
    densify(&guard_windows(&out, Guard::Spoof))
}

/// Fills index gaps of an idx-ordered window series with empty windows,
/// from the first observed index to the last.
pub fn densify(windows: &[WindowStat]) -> Vec<WindowStat> {
    let (Some(first), Some(last)) = (windows.first(), windows.last()) else {
        return Vec::new();
    };
    let mut by_idx: BTreeMap<u64, WindowStat> =
        windows.iter().map(|w| (w.idx, w.clone())).collect();
    (first.idx..=last.idx)
        .map(|idx| {
            by_idx.remove(&idx).unwrap_or(WindowStat {
                idx,
                peak: 0.0,
                sum: 0.0,
                samples: 0,
            })
        })
        .collect()
}

/// One honest series replayed through the fixed and adaptive thresholds.
#[derive(Debug, Clone, Copy)]
struct AdaptiveEval {
    windows: f64,
    avg_rate: f64,
    fixed_fpr: f64,
    adaptive_fpr: f64,
}

/// Replays a densified honest window series; FPRs count non-empty
/// windows after the first quarter (both estimators' settle-in), over
/// the same denominator so the comparison is fair.
fn eval_adaptive(
    series: &[WindowStat],
    fixed: f64,
    narrate: Option<(&obs::RecorderHandle, u16, u64)>,
) -> AdaptiveEval {
    let mut adaptive = AdaptiveThreshold::new(AdaptiveConfig::default(), fixed);
    let skip = series.len() / 4;
    let (mut denom, mut fixed_hits, mut adaptive_hits) = (0u64, 0u64, 0u64);
    let mut total_samples = 0u64;
    for (i, w) in series.iter().enumerate() {
        total_samples += w.samples;
        let flagged = adaptive.step(w.samples, w.mean(), w.peak);
        if let Some((rec, node, width_us)) = narrate {
            rec.borrow_mut().emit(
                SimTime::from_micros((w.idx + 1) * width_us),
                node,
                &THRESH_UPDATE,
                &[w.idx as f64, adaptive.rate(), adaptive.threshold()],
            );
        }
        if i < skip || w.samples == 0 {
            continue;
        }
        denom += 1;
        if w.peak > fixed {
            fixed_hits += 1;
        }
        if flagged {
            adaptive_hits += 1;
        }
    }
    let fpr = |hits: u64| {
        if denom == 0 {
            0.0
        } else {
            hits as f64 / denom as f64
        }
    };
    AdaptiveEval {
        windows: series.len() as f64,
        avg_rate: if series.is_empty() {
            0.0
        } else {
            total_samples as f64 / series.len() as f64
        },
        fixed_fpr: fpr(fixed_hits),
        adaptive_fpr: fpr(adaptive_hits),
    }
}

/// In-control mean and scale from pooled honest window means; the scale
/// falls back to 1.0 when the honest statistic is (near-)constant, e.g.
/// all-zero NAV margins.
pub fn calibration(means: &[f64]) -> (f64, f64) {
    if means.is_empty() {
        return (0.0, 1.0);
    }
    let n = means.len() as f64;
    let mu = means.iter().sum::<f64>() / n;
    let var = means.iter().map(|m| (m - mu) * (m - mu)).sum::<f64>() / n;
    let sd = var.sqrt();
    (mu, if sd > 1e-9 { sd } else { 1.0 })
}

/// Detection-delay accumulator for one method of one cell.
struct DelayAcc {
    method: &'static str,
    hist: &'static str,
    runs: u64,
    delays_us: Vec<f64>,
}

impl DelayAcc {
    fn new(method: &'static str, hist: &'static str) -> Self {
        DelayAcc {
            method,
            hist,
            runs: 0,
            delays_us: Vec::new(),
        }
    }

    /// Records a detection `pos` windows into the series (delay counts
    /// the firing window itself) and returns the virtual firing time.
    fn fire(&mut self, rec: &obs::RecorderHandle, base: u64, pos: usize, width_us: u64) -> SimTime {
        let delay_us = (pos as u64 + 1) * width_us;
        self.delays_us.push(delay_us as f64);
        rec.borrow_mut().record_hist(self.hist, delay_us as f64);
        SimTime::from_micros((base + pos as u64 + 1) * width_us)
    }

    fn row(&self, cell: &Cell) -> Vec<String> {
        let mut sorted = self.delays_us.clone();
        sorted.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            sorted[((sorted.len() - 1) as f64 * p).round() as usize]
        };
        vec![
            cell.detector.to_string(),
            cell.mix.to_string(),
            self.method.to_string(),
            self.runs.to_string(),
            self.delays_us.len().to_string(),
            format!("{:.0}", q(0.5)),
            format!("{:.0}", q(0.95)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_quality() -> Quality {
        Quality {
            seeds: vec![1],
            duration: SimDuration::from_millis(300),
            samples: 100,
        }
    }

    fn tiny_campaign(jobs: usize) -> RocCampaign {
        RocCampaign {
            quality: tiny_quality(),
            jobs,
            window: SimDuration::from_millis(50),
        }
    }

    /// Every file under `root`, as (relative path, bytes), sorted.
    fn dir_files(root: &Path) -> Vec<(String, Vec<u8>)> {
        fn walk(dir: &Path, base: &Path, out: &mut Vec<(String, Vec<u8>)>) {
            let mut entries: Vec<_> = std::fs::read_dir(dir)
                .expect("readable dir")
                .map(|e| e.expect("entry").path())
                .collect();
            entries.sort();
            for p in entries {
                if p.is_dir() {
                    walk(&p, base, out);
                } else {
                    let rel = p.strip_prefix(base).expect("under base");
                    out.push((
                        rel.to_string_lossy().into_owned(),
                        std::fs::read(&p).expect("readable file"),
                    ));
                }
            }
        }
        let mut out = Vec::new();
        walk(root, root, &mut out);
        out
    }

    #[test]
    fn campaign_artifacts_identical_at_any_job_count() {
        let dir1 = std::env::temp_dir().join("gr-roc-jobs1");
        let dir2 = std::env::temp_dir().join("gr-roc-jobs2");
        for d in [&dir1, &dir2] {
            let _ = std::fs::remove_dir_all(d);
        }
        let r1 = tiny_campaign(1).run(&dir1).unwrap();
        let _r2 = tiny_campaign(2).run(&dir2).unwrap();
        // One AUC row per cell, delay rows for the windowed cells only.
        assert_eq!(r1.auc.rows.len(), CELLS.len());
        assert_eq!(r1.adaptive.rows.len(), ADAPTIVE_LOADS_BPS.len());
        assert_eq!(r1.delays.rows.len(), 4 * 3, "4 windowed cells × 3 methods");
        assert_eq!(r1.roc_csvs.len(), DETECTORS.len());
        let files1 = dir_files(&dir1);
        let files2 = dir_files(&dir2);
        assert_eq!(
            files1.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            files2.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            "artifact sets must match"
        );
        for ((path, a), (_, b)) in files1.iter().zip(&files2) {
            assert_eq!(a, b, "{path} differs between --jobs 1 and --jobs 2");
        }
        for d in [&dir1, &dir2] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    /// The campaign-level version of the adaptive drift claim: at a low
    /// offered load the shipped 1 dB spoof threshold is roughly
    /// calibrated, at a saturating load its honest-window FPR blows up,
    /// and the adaptive controller stays well below it — asserted on
    /// real simulation output, not synthetic noise.
    #[test]
    fn adaptive_fpr_flat_on_simulated_load_sweep_where_fixed_drifts() {
        let q = Quality {
            seeds: vec![1],
            duration: SimDuration::from_secs(4),
            samples: 100,
        };
        let window = SimDuration::from_millis(100);
        let fixed = operating_threshold("spoof");
        let lo = measure_adaptive(500_000, &q, window, RunKey::new("roc/adaptive-drift", 0, 0));
        let hi = measure_adaptive(
            8_000_000,
            &q,
            window,
            RunKey::new("roc/adaptive-drift", 1, 0),
        );
        let lo_eval = eval_adaptive(&lo, fixed, None);
        let hi_eval = eval_adaptive(&hi, fixed, None);
        assert!(
            hi_eval.avg_rate > 3.0 * lo_eval.avg_rate,
            "load sweep must change the observation rate: {lo_eval:?} vs {hi_eval:?}"
        );
        assert!(
            hi_eval.fixed_fpr > lo_eval.fixed_fpr + 0.2,
            "fixed threshold failed to drift: {lo_eval:?} vs {hi_eval:?}"
        );
        assert!(
            hi_eval.adaptive_fpr < hi_eval.fixed_fpr - 0.2,
            "adaptive threshold failed to hold the budget: {hi_eval:?}"
        );
    }

    #[test]
    fn densify_fills_gaps_with_empty_windows() {
        let sparse = vec![
            WindowStat {
                idx: 3,
                peak: 1.0,
                sum: 1.0,
                samples: 1,
            },
            WindowStat {
                idx: 6,
                peak: 2.0,
                sum: 2.0,
                samples: 1,
            },
        ];
        let dense = densify(&sparse);
        assert_eq!(dense.len(), 4);
        assert_eq!(dense[0].idx, 3);
        assert_eq!(dense[1].samples, 0);
        assert_eq!(dense[2].samples, 0);
        assert_eq!(dense[3].peak, 2.0);
        assert!(densify(&[]).is_empty());
    }

    #[test]
    fn operating_thresholds_track_detector_defaults() {
        assert_eq!(operating_threshold("nav"), 2.0);
        assert_eq!(operating_threshold("spoof"), 1.0);
        assert_eq!(operating_threshold("fake"), 0.02);
        assert_eq!(operating_threshold("cross"), 0.5);
        assert_eq!(operating_threshold("domino"), 7.75);
    }

    /// The intensity axis at full strength must reproduce the historical
    /// campaign constants exactly — otherwise `measure_cell_at(.., 1.0)`
    /// would silently drift from the pinned ROC results.
    #[test]
    fn unit_intensity_matches_the_historical_attack_knobs() {
        assert_eq!(
            Axis::NavInflation.knob_at(1.0) as u32,
            crate::cc::NAV_INFLATE_US
        );
        assert_eq!(Axis::AckSpoof.knob_at(1.0), 1.0);
        assert_eq!(Axis::FakeAck.knob_at(1.0), 1.0);
        assert_eq!(Axis::BackoffCheat.knob_at(1.0), 0.1);
        for cell in CELLS {
            assert!(
                greedy80211::misbehavior::intensity::Axis::for_detector(cell.detector).is_some(),
                "cell {} must map onto an intensity axis",
                cell.detector
            );
        }
    }
}
