//! Fidelity settings: how long and how many seeds per data point.
//!
//! The paper runs each scenario five times and reports the median; the
//! full quality does the same.

use sim::SimDuration;

/// Fidelity of an experiment sweep.
#[derive(Debug, Clone)]
pub struct Quality {
    /// Seeds to run per data point (median reported).
    pub seeds: Vec<u64>,
    /// Virtual run length per simulation.
    pub duration: SimDuration,
    /// Monte-Carlo sample count for non-simulation studies.
    pub samples: u64,
}

impl Quality {
    /// Paper-equivalent fidelity: median of 5 seeds, 15 s runs.
    pub fn full() -> Self {
        Quality {
            seeds: vec![1, 2, 3, 4, 5],
            duration: SimDuration::from_secs(15),
            samples: 100_000,
        }
    }

    /// Fast pass for smoke tests and Criterion benches: one seed, 2 s.
    pub fn quick() -> Self {
        Quality {
            seeds: vec![1],
            duration: SimDuration::from_secs(2),
            samples: 5_000,
        }
    }

    /// Median over the per-seed values produced by `f`.
    ///
    /// # Panics
    ///
    /// Panics if no seeds are configured.
    pub fn median_over_seeds<F: FnMut(u64) -> f64>(&self, mut f: F) -> f64 {
        let values: Vec<f64> = self.seeds.iter().map(|&s| f(s)).collect();
        sim::stats::median(&values).expect("at least one seed")
    }

    /// Median over seeds for a vector-valued measurement (component-wise).
    ///
    /// # Panics
    ///
    /// Panics if no seeds are configured or `f` returns inconsistent
    /// lengths.
    pub fn median_vec_over_seeds<F: FnMut(u64) -> Vec<f64>>(&self, mut f: F) -> Vec<f64> {
        let per_seed: Vec<Vec<f64>> = self.seeds.iter().map(|&s| f(s)).collect();
        let n = per_seed[0].len();
        (0..n)
            .map(|i| {
                let column: Vec<f64> = per_seed
                    .iter()
                    .map(|v| {
                        assert_eq!(v.len(), n, "inconsistent measurement arity");
                        v[i]
                    })
                    .collect();
                sim::stats::median(&column).expect("at least one seed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_over_seeds_works() {
        let q = Quality {
            seeds: vec![1, 2, 3],
            duration: SimDuration::from_secs(1),
            samples: 10,
        };
        assert_eq!(q.median_over_seeds(|s| s as f64), 2.0);
    }

    #[test]
    fn median_vec_componentwise() {
        let q = Quality {
            seeds: vec![1, 2, 3],
            duration: SimDuration::from_secs(1),
            samples: 10,
        };
        let m = q.median_vec_over_seeds(|s| vec![s as f64, 10.0 * s as f64]);
        assert_eq!(m, vec![2.0, 20.0]);
    }
}
