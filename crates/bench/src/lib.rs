//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment in [`experiments`] rebuilds one artifact of the
//! paper's evaluation (Figs. 1–19, 21–24 and Tables I–IX) on this
//! workspace's simulator and returns an [`Experiment`] — a titled table
//! that the `repro` binary prints and writes to `results/<id>.csv`.
//! Beyond the paper: `ext1` implements the rate-adaptation interaction
//! the paper leaves as future work, and `abl1`–`abl3` ablate the design
//! choices DESIGN.md calls out (carrier-sense latency, capture
//! threshold, the NAV guard's MTU assumption).
//!
//! Run everything:
//!
//! ```sh
//! cargo run --release -p gr-bench --bin repro -- all
//! ```
//!
//! or a single artifact (`fig1`, `tab2`, …), with `--quick` for a
//! fast low-fidelity pass (one seed, shorter runs).

pub mod cc;
pub mod experiments;
pub mod fuzz;
pub mod gate;
pub mod intensity;
pub mod quality;
pub mod roc;
pub mod sweep;
pub mod table;
pub mod world;

pub use cc::{CcCampaign, CcCampaignReport};
pub use gate::{
    run_gate, CcSmoke, GateReport, WorldSmoke, CONFORM_OVERHEAD_LIMIT_PCT, GATE_SUBSET,
    GATE_TOLERANCE,
};
pub use intensity::{IntensityCampaign, IntensityCampaignReport, INTENSITY_GRID};
pub use quality::Quality;
pub use roc::{RocCampaign, RocCampaignReport};
pub use sweep::{sweep, sweep_scalar};
pub use table::Experiment;
pub use world::{fig2_check, WorldCampaign, WorldCampaignReport};

use sim::RunKey;

/// Campaign-wide flight-recorder collection: the recorder configuration
/// every run records under, plus the shared sink per-run reports are
/// deposited into as jobs finish (in worker-completion order; see
/// [`ObsCampaign::take_reports`] for the deterministic view).
///
/// The sink is the one piece of observability state that genuinely
/// crosses worker threads (every sweep job deposits into it), so it is an
/// explicit `Arc<Mutex<…>>` — unlike per-run recorder handles, which are
/// single-threaded `Rc<RefCell<…>>` cells that never leave their run.
#[derive(Debug, Clone)]
pub struct ObsCampaign {
    /// Recorder configuration applied to every run.
    pub spec: obs::ObsSpec,
    sink: std::sync::Arc<std::sync::Mutex<Vec<(RunKey, obs::ObsReport)>>>,
}

impl ObsCampaign {
    /// Creates an empty campaign collector recording under `spec`.
    pub fn new(spec: obs::ObsSpec) -> Self {
        ObsCampaign {
            spec,
            sink: std::sync::Arc::new(std::sync::Mutex::new(Vec::new())),
        }
    }

    pub(crate) fn deposit(&self, key: RunKey, report: obs::ObsReport) {
        self.sink
            .lock()
            .expect("campaign sink poisoned")
            .push((key, report));
    }

    /// Takes every report deposited so far, sorted by run key so artifact
    /// export order is independent of worker scheduling. The sink is left
    /// empty.
    pub fn take_reports(&self) -> Vec<(RunKey, obs::ObsReport)> {
        let mut v = std::mem::take(&mut *self.sink.lock().expect("campaign sink poisoned"));
        v.sort_by(|(a, _), (b, _)| {
            (a.experiment.as_str(), a.point, a.seed).cmp(&(b.experiment.as_str(), b.point, b.seed))
        });
        v
    }
}

/// Campaign-wide conformance checking: every sweep job installs a
/// [`conform::ConformJob`] keyed by its [`RunKey`], the network attaches
/// a live checker to that run's recorder, and the finished
/// [`conform::ConformReport`]s accumulate in the shared sink here.
///
/// When the run context records nothing, conformance jobs still need a
/// recorder for the checker to tap; [`sweep()`] installs a zero-capacity
/// one (the tap sees every event before ring eviction, so capacity does
/// not affect checking).
#[derive(Debug, Clone)]
pub struct ConformCampaign {
    honor_whitelist: bool,
    sink: conform::ConformSink,
}

impl Default for ConformCampaign {
    fn default() -> Self {
        ConformCampaign::new()
    }
}

impl ConformCampaign {
    /// An empty campaign honoring per-scenario greedy whitelists.
    pub fn new() -> Self {
        ConformCampaign {
            honor_whitelist: true,
            sink: std::sync::Arc::new(std::sync::Mutex::new(Vec::new())),
        }
    }

    /// Same campaign with every rule re-armed even for declared greedy
    /// quirks — for whitelist-removal tests, where greedy runs *must*
    /// produce violations.
    pub fn without_whitelist(mut self) -> Self {
        self.honor_whitelist = false;
        self
    }

    /// The per-run job a sweep worker installs around one run.
    pub fn job(&self, key: RunKey) -> conform::ConformJob {
        conform::ConformJob {
            key: Some(key),
            sink: self.sink.clone(),
            honor_whitelist: self.honor_whitelist,
        }
    }

    /// Takes every report deposited so far, sorted by run key so the
    /// verdict order is independent of worker scheduling.
    pub fn take_reports(&self) -> Vec<(Option<RunKey>, conform::ConformReport)> {
        let mut v = std::mem::take(&mut *self.sink.lock().expect("conform sink poisoned"));
        v.sort_by(|(a, _), (b, _)| {
            let k = |key: &Option<RunKey>| {
                key.as_ref()
                    .map(|k| (k.experiment.clone(), k.point, k.seed))
            };
            k(a).cmp(&k(b))
        });
        v
    }
}

/// Everything an experiment generator needs: fidelity settings plus the
/// worker pool its sweeps execute on.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Seeds, run length, sample counts.
    pub quality: Quality,
    /// Campaign executor sweeps submit their jobs to.
    pub runner: runner::Runner,
    /// Flight-recorder campaign; `None` (the default) records nothing.
    pub record: Option<ObsCampaign>,
    /// Checkpoint/audit campaign spec; `None` (the default) records no
    /// checkpoints and resumes nothing.
    pub checkpoint: Option<greedy80211::checkpoint::CampaignSpec>,
    /// Conformance campaign; `None` (the default) checks nothing.
    pub conform: Option<ConformCampaign>,
}

impl RunCtx {
    /// Context running `quality` sequentially on the calling thread.
    pub fn sequential(quality: Quality) -> Self {
        RunCtx {
            quality,
            runner: runner::Runner::sequential(),
            record: None,
            checkpoint: None,
            conform: None,
        }
    }

    /// Context running `quality` on a pool of `jobs` workers.
    pub fn with_jobs(quality: Quality, jobs: usize) -> Self {
        RunCtx {
            quality,
            runner: runner::Runner::new(jobs),
            record: None,
            checkpoint: None,
            conform: None,
        }
    }

    /// Same context with flight recording enabled under `campaign`.
    pub fn with_record(mut self, campaign: ObsCampaign) -> Self {
        self.record = Some(campaign);
        self
    }

    /// Same context with checkpoint/audit recording (or resuming) under
    /// `spec`; see [`greedy80211::checkpoint::CampaignSpec`].
    pub fn with_checkpoints(mut self, spec: greedy80211::checkpoint::CampaignSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Same context with live conformance checking under `campaign`.
    pub fn with_conform(mut self, campaign: ConformCampaign) -> Self {
        self.conform = Some(campaign);
        self
    }
}

/// An experiment generator function.
pub type Generator = fn(&RunCtx) -> Experiment;

/// All experiment ids in presentation order, with their generators.
pub fn registry() -> Vec<(&'static str, Generator)> {
    use experiments as e;
    vec![
        ("fig1", e::fig01::run as Generator),
        ("fig2", e::fig02::run),
        ("fig3", e::fig03::run),
        ("fig4", e::fig04::run),
        ("fig5", e::fig05::run),
        ("fig6", e::fig06::run),
        ("fig7", e::fig07::run),
        ("fig8", e::fig08::run),
        ("fig9", e::fig09::run),
        ("fig10", e::fig10::run),
        ("fig11", e::fig11::run),
        ("fig12", e::fig12::run),
        ("fig13", e::fig13::run),
        ("fig14", e::fig14::run),
        ("fig15", e::fig15::run),
        ("fig16", e::fig16::run),
        ("fig17", e::fig17::run),
        ("fig18", e::fig18::run),
        ("fig19", e::fig19::run),
        ("fig21", e::fig21::run),
        ("fig22", e::fig22::run),
        ("fig23", e::fig23::run),
        ("fig24", e::fig24::run),
        ("tab1", e::tab01::run),
        ("tab2", e::tab02::run),
        ("tab3", e::tab03::run),
        ("tab4", e::tab04::run),
        ("tab5", e::tab05::run),
        ("tab6", e::tab06::run),
        ("tab7", e::tab07::run),
        ("tab8", e::tab08::run),
        ("tab9", e::tab09::run),
        ("ext1", e::ext01::run),
        ("ext2", e::ext02::run),
        ("abl1", e::abl01::run),
        ("abl2", e::abl02::run),
        ("abl3", e::abl03::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_well_formed() {
        let reg = registry();
        let mut seen = std::collections::HashSet::new();
        for (id, _) in &reg {
            assert!(seen.insert(*id), "duplicate experiment id {id}");
            assert!(
                id.starts_with("fig")
                    || id.starts_with("tab")
                    || id.starts_with("ext")
                    || id.starts_with("abl"),
                "unexpected id scheme: {id}"
            );
        }
        // Every paper artifact present: figs 1–19 + 21–24, tables 1–9.
        for n in (1..=19).chain(21..=24) {
            assert!(seen.contains(format!("fig{n}").as_str()), "missing fig{n}");
        }
        for n in 1..=9 {
            assert!(seen.contains(format!("tab{n}").as_str()), "missing tab{n}");
        }
    }

    #[test]
    fn analytic_tables_generate_instantly() {
        // tab3 (analytic) and tab1 (Monte Carlo) need no simulation and
        // should produce full tables even at quick quality.
        let ctx = RunCtx::sequential(Quality::quick());
        let t3 = experiments::tab03::run(&ctx);
        assert_eq!(t3.rows.len(), 5);
        assert_eq!(t3.columns.len(), 5);
        let t1 = experiments::tab01::run(&ctx);
        assert_eq!(t1.rows.len(), 2);
        // The 802.11b row must show ≥ 95 % address survival.
        let ratio: f64 = t1.rows[0][5].parse().expect("numeric ratio");
        assert!(ratio > 0.95, "dest_ok_ratio {ratio}");
    }

    #[test]
    fn fig21_cdf_row_at_one_db_matches_calibration() {
        let ctx = RunCtx::sequential(Quality::quick());
        let e = experiments::fig21::run(&ctx);
        let row = e
            .rows
            .iter()
            .find(|r| r[0] == "1.0")
            .expect("1 dB row present");
        let cdf: f64 = row[1].parse().expect("numeric cdf");
        assert!((cdf - 0.95).abs() < 0.03, "cdf at 1 dB = {cdf}");
    }
}
