//! Multi-cell world campaigns: greedy density × grid size.
//!
//! The paper measures one hotspot at a time; `repro --world` tiles the
//! same scenario into a [`greedy80211::WorldSpec`] grid and sweeps how
//! many cells host the greedy receiver against how many cells the world
//! has. Every `(grid, greedy-density)` combination is one deterministic
//! lockstep world run; its per-cell damage/detection numbers land in
//! `world-<R>x<C>-g<K>.csv` (one row per cell), and a summary table
//! aggregates honest-vs-greedy goodput and detector counts per
//! combination. All artifacts are byte-identical at any `--jobs` width —
//! the CI smoke compares the CSVs from a `--jobs 1` and a `--jobs 8`
//! pass byte for byte.
//!
//! `repro --fig2-check` is the identity gate: it regenerates fig. 2 both
//! directly and through 1×1 worlds (same labels, same derived seeds) and
//! fails unless the two CSVs match byte for byte — the proof that the
//! lockstep path is the single-network path when there is nothing to
//! exchange.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use greedy80211::{NavInflationConfig, Run, Scenario, WorldOutcome, WorldSpec};
use sim::RunKey;

use crate::experiments::{nav_two_pair, UDP_NAV_SWEEP_US};
use crate::table::Experiment;
use crate::{sweep, Quality, RunCtx};

/// Grid sizes the default campaign sweeps.
pub const DEFAULT_GRIDS: &[(usize, usize)] = &[(1, 1), (2, 2), (3, 3)];

/// Greedy-cell densities the default campaign sweeps (fraction of
/// cells hosting the greedy receiver).
pub const DEFAULT_GREEDY_FRACS: &[f64] = &[0.0, 0.34, 1.0];

/// A planned `--world` campaign.
#[derive(Debug, Clone)]
pub struct WorldCampaign {
    /// Run length and template seed source (`seeds[0]`).
    pub quality: Quality,
    /// Worker threads per world run.
    pub jobs: usize,
    /// Grid sizes to sweep.
    pub grids: Vec<(usize, usize)>,
    /// Greedy-cell densities to sweep.
    pub greedy_fracs: Vec<f64>,
    /// Arm per-cell 802.11 conformance checking.
    pub conform: bool,
    /// Whether declared greedy quirks exempt their rules.
    pub honor_whitelist: bool,
}

impl WorldCampaign {
    /// The default sweep at `quality` fidelity on `jobs` workers.
    pub fn new(quality: Quality, jobs: usize) -> Self {
        WorldCampaign {
            quality,
            jobs,
            grids: DEFAULT_GRIDS.to_vec(),
            greedy_fracs: DEFAULT_GREEDY_FRACS.to_vec(),
            conform: false,
            honor_whitelist: true,
        }
    }

    /// Restricts the campaign to a single grid size.
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        self.grids = vec![(rows, cols)];
        self
    }

    /// The world spec of one campaign combination.
    pub fn spec(&self, rows: usize, cols: usize, greedy_cells: usize) -> WorldSpec {
        let mut spec = WorldSpec::grid(world_template(&self.quality), rows, cols);
        spec.greedy_cells = greedy_cells;
        spec.label = format!("world-{rows}x{cols}-g{greedy_cells}");
        spec
    }

    /// Runs every combination, writes one per-cell CSV each into
    /// `out_dir`, and returns the summary table plus conformance
    /// verdicts.
    ///
    /// # Errors
    ///
    /// Propagates CSV I/O errors; world validation failures surface as
    /// `InvalidData` (the pinned template never triggers them).
    pub fn run(&self, out_dir: &Path) -> io::Result<WorldCampaignReport> {
        std::fs::create_dir_all(out_dir)?;
        let job = self.conform.then(|| {
            let j = ::conform::ConformJob::new(None);
            if self.honor_whitelist {
                j
            } else {
                j.without_whitelist()
            }
        });
        let mut summary = Experiment::new(
            "world",
            "Multi-cell world: damage and detection vs greedy density and grid size",
            &[
                "grid",
                "cells",
                "greedy_cells",
                "honest_mbps",
                "greedy_mbps",
                "nav_detections",
                "spoof_flags",
            ],
        );
        let mut cell_csvs = Vec::new();
        let mut conform_reports = Vec::new();
        for &(rows, cols) in &self.grids {
            let n = rows * cols;
            let mut seen = std::collections::BTreeSet::new();
            for &frac in &self.greedy_fracs {
                let k = ((frac * n as f64).round() as usize).min(n);
                if !seen.insert(k) {
                    continue; // two fractions rounding to the same k
                }
                let spec = self.spec(rows, cols, k);
                let mut run = Run::world(&spec).jobs(self.jobs);
                if let Some(j) = &job {
                    run = run.conform(j.clone());
                }
                let out = run
                    .execute()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let path = out_dir.join(format!("{}.csv", spec.label));
                std::fs::write(&path, per_cell_csv(&out))?;
                cell_csvs.push(path);
                let fmt_mbps = |v: Option<f64>| match v {
                    Some(x) => format!("{x:.3}"),
                    None => "-".into(),
                };
                summary.push_row(vec![
                    format!("{rows}x{cols}"),
                    n.to_string(),
                    k.to_string(),
                    fmt_mbps(out.honest_goodput_mbps()),
                    fmt_mbps(out.greedy_goodput_mbps()),
                    out.nav_detections().to_string(),
                    out.spoof_flags().to_string(),
                ]);
                if let Some(j) = &job {
                    conform_reports.extend(j.drain());
                }
            }
        }
        conform_reports.sort_by(|(a, _), (b, _)| {
            let k = |key: &Option<RunKey>| {
                key.as_ref()
                    .map(|k| (k.experiment.clone(), k.point, k.seed))
            };
            k(a).cmp(&k(b))
        });
        Ok(WorldCampaignReport {
            summary,
            cell_csvs,
            conform_reports,
        })
    }
}

/// Result of a finished `--world` campaign.
#[derive(Debug)]
pub struct WorldCampaignReport {
    /// One row per `(grid, greedy-density)` combination.
    pub summary: Experiment,
    /// Per-cell CSV files written, in combination order.
    pub cell_csvs: Vec<PathBuf>,
    /// Per-cell conformance verdicts (empty unless armed), in run-key
    /// order.
    pub conform_reports: Vec<(Option<RunKey>, ::conform::ConformReport)>,
}

impl WorldCampaignReport {
    /// Total non-whitelisted violations across every checked cell.
    pub fn conform_violations(&self) -> u64 {
        self.conform_reports
            .iter()
            .map(|(_, r)| r.violation_count())
            .sum()
    }
}

/// The campaign's per-cell template: the paper's 2-pair UDP hotspot with
/// a CTS-NAV-inflating receiver and GRC observing (not mitigating), so
/// greedy cells report damage *and* detections.
pub fn world_template(q: &Quality) -> Scenario {
    let mut s = nav_two_pair(
        true,
        NavInflationConfig::cts_only(10_000, 1.0),
        q,
        q.seeds.first().copied().unwrap_or(1),
    );
    s.grc = Some(false);
    s
}

/// Renders one world outcome as a per-cell CSV: position, channel,
/// greedy flag, per-flow goodput, detector counts.
pub fn per_cell_csv(out: &WorldOutcome) -> String {
    let mut csv = String::from(
        "cell,row,col,channel,greedy,flow0_mbps,flow1_mbps,nav_detections,spoof_flags\n",
    );
    for c in &out.cells {
        let flow = |i: usize| {
            if i < c.outcome.flows.len() {
                format!("{:.6}", c.outcome.goodput_mbps(i))
            } else {
                "-".into()
            }
        };
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{}",
            c.id,
            c.row,
            c.col,
            c.channel,
            c.greedy as u8,
            flow(0),
            flow(1),
            c.outcome.nav_detections(),
            c.outcome.spoof_flags(),
        );
    }
    csv
}

/// Fig. 2 regenerated through 1×1 worlds: same sweep label (hence the
/// same derived seeds) and the same measurement as
/// [`crate::experiments::fig02::run`], but every run goes through the
/// lockstep world path.
pub fn fig2_world(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig2",
        "Fig. 2 via 1×1 worlds: average contention window of GS and NS vs CTS-NAV inflation",
        &["inflate_us", "NS_avg_cw", "GS_avg_cw"],
    );
    let rows = sweep(ctx, "fig2", UDP_NAV_SWEEP_US, |&inflate, seed| {
        let s = nav_two_pair(true, NavInflationConfig::cts_only(inflate, 1.0), q, seed);
        let mut spec = WorldSpec::grid(s, 1, 1);
        spec.greedy_cells = 1; // the lone cell keeps the greedy receiver
        let world = Run::world(&spec).execute().expect("valid world");
        let out = &world.cells[0].outcome;
        let cw = |node| {
            out.metrics
                .node(node)
                .and_then(|n| n.avg_cw)
                .unwrap_or(f64::NAN)
        };
        vec![cw(out.senders[0]), cw(out.senders[1])]
    });
    for (&inflate, vals) in UDP_NAV_SWEEP_US.iter().zip(rows) {
        e.push_row(vec![
            inflate.to_string(),
            format!("{:.1}", vals[0]),
            format!("{:.1}", vals[1]),
        ]);
    }
    e
}

/// The 1×1-world identity gate: regenerates fig. 2 directly and through
/// [`fig2_world`] and demands byte-identical CSVs.
///
/// # Errors
///
/// Returns a description of the first differing line when the identity
/// does not hold.
pub fn fig2_check(ctx: &RunCtx) -> Result<String, String> {
    let direct = crate::experiments::fig02::run(ctx).csv();
    let world = fig2_world(ctx).csv();
    if direct == world {
        return Ok(format!(
            "fig2 identity OK: 1×1 world reproduces fig2.csv byte-for-byte ({} bytes, {} rows)",
            direct.len(),
            direct.lines().count().saturating_sub(1)
        ));
    }
    let diff = direct
        .lines()
        .zip(world.lines())
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| format!("line {}: direct `{a}` vs world `{b}`", i + 1))
        .unwrap_or_else(|| {
            format!(
                "line counts differ: {} direct vs {} world",
                direct.lines().count(),
                world.lines().count()
            )
        });
    Err(format!(
        "fig2 identity BROKEN: 1×1 world diverges from the direct run — {diff}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;

    fn tiny_quality() -> Quality {
        Quality {
            seeds: vec![1],
            duration: SimDuration::from_millis(300),
            samples: 100,
        }
    }

    #[test]
    fn one_by_one_world_matches_direct_sweep() {
        // The full `--fig2-check` sweeps 11 points at campaign fidelity;
        // this is the same identity on a 2-point, 300 ms slice.
        let ctx = RunCtx::sequential(tiny_quality());
        let q = tiny_quality();
        let points: &[u32] = &[0, 10_000];
        let direct = sweep(&ctx, "fig2", points, |&inflate, seed| {
            let s = nav_two_pair(true, NavInflationConfig::cts_only(inflate, 1.0), &q, seed);
            let out = Run::plan(&s).execute().expect("valid scenario");
            vec![
                out.goodput_mbps(0),
                out.goodput_mbps(1),
                out.metrics.events_processed as f64,
            ]
        });
        let world = sweep(&ctx, "fig2", points, |&inflate, seed| {
            let s = nav_two_pair(true, NavInflationConfig::cts_only(inflate, 1.0), &q, seed);
            let mut spec = WorldSpec::grid(s, 1, 1);
            spec.greedy_cells = 1;
            let w = Run::world(&spec).execute().expect("valid world");
            let out = &w.cells[0].outcome;
            vec![
                out.goodput_mbps(0),
                out.goodput_mbps(1),
                out.metrics.events_processed as f64,
            ]
        });
        assert_eq!(direct, world);
    }

    #[test]
    fn campaign_csvs_are_identical_at_any_job_count() {
        let campaign = |jobs: usize| {
            let mut c = WorldCampaign::new(tiny_quality(), jobs).with_grid(2, 1);
            c.greedy_fracs = vec![0.5];
            c
        };
        let dir1 = std::env::temp_dir().join("gr-world-jobs1");
        let dir2 = std::env::temp_dir().join("gr-world-jobs2");
        let r1 = campaign(1).run(&dir1).unwrap();
        let r2 = campaign(2).run(&dir2).unwrap();
        assert_eq!(r1.summary.csv(), r2.summary.csv());
        assert_eq!(r1.cell_csvs.len(), 1);
        let a = std::fs::read_to_string(&r1.cell_csvs[0]).unwrap();
        let b = std::fs::read_to_string(&r2.cell_csvs[0]).unwrap();
        assert_eq!(a, b, "per-cell CSVs must not depend on --jobs");
        assert!(a.starts_with("cell,row,col,channel,greedy,"));
        assert_eq!(a.lines().count(), 3, "header + one row per cell");
    }

    #[test]
    fn conforming_campaign_reports_honest_cells_clean() {
        let mut c = WorldCampaign::new(tiny_quality(), 2).with_grid(2, 1);
        c.greedy_fracs = vec![0.0];
        c.conform = true;
        let dir = std::env::temp_dir().join("gr-world-conform");
        let report = c.run(&dir).unwrap();
        assert_eq!(report.conform_reports.len(), 2, "one verdict per cell");
        assert_eq!(
            report.conform_violations(),
            0,
            "honest cells must be violation-free"
        );
        for (key, r) in &report.conform_reports {
            assert!(key.is_some(), "world verdicts carry the cell's run key");
            assert!(
                r.events_checked > 0,
                "the checker must actually tap each cell's event stream"
            );
        }
    }
}
