//! Performance gate: a pinned subset of experiments run as a throughput
//! benchmark, with a committed baseline to regress against.
//!
//! `repro --bench-gate` runs [`GATE_SUBSET`] sequentially at a fidelity
//! pinned *here* (deliberately not [`Quality::quick`], so tuning the
//! smoke-test fidelity can never silently move the gate), writes
//! `BENCH_<date>.json` next to `bench_summary.json`, and — with
//! `--check` — compares simulator event throughput against the committed
//! `BENCH_BASELINE.json`, failing on a regression beyond the tolerance
//! band. Everything is wall-clock-sequential and single-threaded so the
//! numbers are comparable on a 1-core CI container.

use std::path::Path;
use std::time::Instant;

use net::stats;

use crate::{registry, Quality, RunCtx};

/// Experiments the gate times, in run order. Chosen to cover the three
/// hot regimes: UDP NAV sweeps (`fig2`), TCP NAV sweeps (`fig6`), and
/// mixed topologies with GRC attached (`tab5`).
pub const GATE_SUBSET: &[&str] = &["fig2", "fig6", "tab5"];

/// Relative throughput loss tolerated by `--bench-gate --check` before
/// the gate fails (0.25 = fail when >25 % slower than baseline).
pub const GATE_TOLERANCE: f64 = 0.25;

/// Largest wall-clock overhead (percent) the live conformance checker
/// may add to the gate subset before `--bench-gate --check` fails.
/// Both sides of the ratio are best-of-[`GATE_PASSES`] measurements
/// (see [`run_gate`]), which strips most scheduling noise; the
/// remaining budget covers the residual jitter of two sub-second
/// timings on a loaded 1-core container — a checker cost regression
/// shows up as a sustained jump past it.
pub const CONFORM_OVERHEAD_LIMIT_PCT: f64 = 40.0;

/// Timed passes per measurement. Sub-second wall-clock readings on a
/// loaded container swing by tens of percent between back-to-back runs
/// of the same binary; the *minimum* of three passes is a robust
/// estimate of what the code actually costs (noise only ever adds
/// time), so both the throughput figure and the conformance-overhead
/// ratio are taken from the fastest pass of each kind.
pub const GATE_PASSES: usize = 3;

/// Fidelity the gate is pinned at. One seed and short runs: the gate
/// measures throughput, not statistics, and must finish in CI time.
fn gate_quality() -> Quality {
    Quality {
        seeds: vec![1],
        duration: sim::SimDuration::from_secs(2),
        samples: 5_000,
    }
}

/// Timing of one gate experiment.
#[derive(Debug)]
pub struct GateStat {
    /// Experiment id (e.g. `"fig2"`).
    pub id: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Simulator events dispatched.
    pub events: u64,
}

impl GateStat {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }

    /// Nanoseconds of wall clock per simulator event.
    pub fn ns_per_event(&self) -> f64 {
        self.wall_s * 1e9 / (self.events as f64).max(1.0)
    }
}

/// Result of one full gate run.
#[derive(Debug)]
pub struct GateReport {
    /// `YYYY-MM-DD` (UTC) the gate ran.
    pub date: String,
    /// Per-experiment timings, in [`GATE_SUBSET`] order.
    pub stats: Vec<GateStat>,
    /// Peak resident set size in KiB (`VmHWM`; 0 if unavailable).
    pub peak_rss_kib: u64,
    /// Root digest of the audit ladder of a pinned reference run (see
    /// [`audit_root`]) — a determinism canary: any change means the
    /// simulation itself changed, not just its speed.
    pub audit_root: u64,
    /// Best-of-[`GATE_PASSES`] wall-clock seconds of a pass over the
    /// subset with the live conformance checker attached.
    pub conform_wall_s: f64,
    /// Runs conformance-checked across all checked passes.
    pub conform_runs: u64,
    /// Invariant violations found across those runs (must be 0).
    pub conform_violations: u64,
    /// Throughput of the pinned multi-cell world smoke (see
    /// [`world_smoke`]).
    pub world: WorldSmoke,
    /// Throughput of the pinned congestion-controller smoke (see
    /// [`cc_smoke`]).
    pub cc: CcSmoke,
    /// Events/s of the pinned sustained-throughput workload (see
    /// [`sustained_smoke`]): a saturating many-flow hotspot that keeps
    /// the frame arena, the interferer fold and the FER path hot for the
    /// whole run — the netbench-style figure the data-oriented hot path
    /// is tuned against.
    pub sustained_events_per_sec: f64,
    /// Events/s of the pinned detection-science smoke (see
    /// [`roc_smoke`]): a tiny `repro roc` campaign end to end — paired
    /// honest/greedy runs with windowed guard statistics, the offline
    /// ROC sweep, the adaptive-threshold replay and the sequential
    /// detectors. Catches a regression in the guard window tracking or
    /// the detsci evaluation path that the figure subset never touches.
    pub roc_events_per_sec: f64,
    /// Events/s of the pinned intensity-frontier smoke (see
    /// [`intensity_smoke`]): a two-point `repro intensity` campaign end
    /// to end — split honest/attacked jobs per intensity, the knee and
    /// crossover evaluation, the frontier CSVs. Catches a regression in
    /// the intensity-sweep path (per-class measurement, axis scaling)
    /// that the full-strength roc smoke never exercises.
    pub intensity_events_per_sec: f64,
}

/// Event throughput of the non-default congestion controllers on the
/// gate's TCP template. The NewReno path is what `fig6` already times;
/// these two catch a hot-path regression inside the CUBIC window curve
/// or the BBR filter bank, which the NewReno-only subset would miss.
#[derive(Debug)]
pub struct CcSmoke {
    /// Events/s of the pinned TCP scenario under CUBIC.
    pub cubic_events_per_sec: f64,
    /// Events/s of the pinned TCP scenario under BBR.
    pub bbr_events_per_sec: f64,
}

/// Event throughput of a pinned world smoke at two grid sizes: the
/// cells-9 figure exposes the lockstep/exchange overhead relative to a
/// single cell on the same template, so a regression in the world layer
/// shows up in `BENCH_<date>.json` even though `--check` gates only the
/// single-network subset.
#[derive(Debug)]
pub struct WorldSmoke {
    /// Events/s of a 1×1 world (single cell through the lockstep path).
    pub cells1_events_per_sec: f64,
    /// Events/s of a 3×3 co-channel world.
    pub cells9_events_per_sec: f64,
}

impl GateReport {
    /// Total events across the subset.
    pub fn total_events(&self) -> u64 {
        self.stats.iter().map(|s| s.events).sum()
    }

    /// Total wall-clock seconds across the subset.
    pub fn total_wall_s(&self) -> f64 {
        self.stats.iter().map(|s| s.wall_s).sum()
    }

    /// Aggregate events per second over the whole subset.
    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 / self.total_wall_s().max(1e-9)
    }

    /// Aggregate nanoseconds per event over the whole subset.
    pub fn ns_per_event(&self) -> f64 {
        self.total_wall_s() * 1e9 / (self.total_events() as f64).max(1.0)
    }

    /// Wall-clock overhead of the conformance pass relative to the
    /// unchecked pass, in percent.
    pub fn conform_overhead_pct(&self) -> f64 {
        (self.conform_wall_s / self.total_wall_s().max(1e-9) - 1.0) * 100.0
    }

    /// Checks the conformance pass: no violations, overhead within
    /// `limit_pct`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the checked runs produced
    /// violations or the checker's overhead exceeded the limit.
    pub fn conform_check(&self, limit_pct: f64) -> Result<String, String> {
        if self.conform_violations > 0 {
            return Err(format!(
                "{} invariant violation(s) across {} gate runs",
                self.conform_violations, self.conform_runs
            ));
        }
        let pct = self.conform_overhead_pct();
        if pct > limit_pct {
            return Err(format!(
                "conformance overhead {pct:.1} % exceeds the {limit_pct:.0} % limit \
                 ({:.3} s unchecked vs {:.3} s checked)",
                self.total_wall_s(),
                self.conform_wall_s
            ));
        }
        Ok(format!(
            "conform OK: {} runs clean, overhead {pct:+.1} %",
            self.conform_runs
        ))
    }

    /// Renders the report as JSON (the `BENCH_<date>.json` format).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"date\": \"{}\",\n", self.date));
        s.push_str(&format!("  \"subset\": {:?},\n", GATE_SUBSET));
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        s.push_str(&format!(
            "  \"total_wall_s\": {:.3},\n",
            self.total_wall_s()
        ));
        s.push_str(&format!(
            "  \"total_events_per_sec\": {:.0},\n",
            self.events_per_sec()
        ));
        s.push_str(&format!(
            "  \"ns_per_event\": {:.1},\n",
            self.ns_per_event()
        ));
        s.push_str(&format!("  \"peak_rss_kib\": {},\n", self.peak_rss_kib));
        s.push_str(&format!(
            "  \"audit_root\": \"{:#018x}\",\n",
            self.audit_root
        ));
        s.push_str(&format!(
            "  \"conform_wall_s\": {:.3},\n",
            self.conform_wall_s
        ));
        s.push_str(&format!(
            "  \"conform_overhead_pct\": {:.1},\n",
            self.conform_overhead_pct()
        ));
        s.push_str(&format!("  \"conform_runs\": {},\n", self.conform_runs));
        s.push_str(&format!(
            "  \"conform_violations\": {},\n",
            self.conform_violations
        ));
        s.push_str(&format!(
            "  \"world_cells1_events_per_sec\": {:.0},\n",
            self.world.cells1_events_per_sec
        ));
        s.push_str(&format!(
            "  \"world_cells9_events_per_sec\": {:.0},\n",
            self.world.cells9_events_per_sec
        ));
        s.push_str(&format!(
            "  \"cc_cubic_events_per_sec\": {:.0},\n",
            self.cc.cubic_events_per_sec
        ));
        s.push_str(&format!(
            "  \"cc_bbr_events_per_sec\": {:.0},\n",
            self.cc.bbr_events_per_sec
        ));
        s.push_str(&format!(
            "  \"sustained_events_per_sec\": {:.0},\n",
            self.sustained_events_per_sec
        ));
        s.push_str(&format!(
            "  \"roc_events_per_sec\": {:.0},\n",
            self.roc_events_per_sec
        ));
        s.push_str(&format!(
            "  \"intensity_events_per_sec\": {:.0},\n",
            self.intensity_events_per_sec
        ));
        s.push_str("  \"experiments\": [\n");
        for (i, st) in self.stats.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \
                 \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}}}{}\n",
                st.id,
                st.wall_s,
                st.events,
                st.events_per_sec(),
                st.ns_per_event(),
                if i + 1 < self.stats.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Peak resident set size in KiB, from `/proc/self/status` `VmHWM`.
/// Some kernels and container runtimes omit or zero `VmHWM`, so this
/// falls back to the instantaneous `VmRSS`, then to `/proc/self/statm`
/// resident pages — a lower bound beats the `0` that used to land in
/// `BENCH_<date>.json` and made memory regressions invisible.
/// Returns 0 only on platforms without procfs.
pub fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |name: &str| -> Option<u64> {
        status
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
            .filter(|&kib| kib > 0)
    };
    if let Some(kib) = field("VmHWM:") {
        return kib;
    }
    if let Some(kib) = field("VmRSS:") {
        return kib;
    }
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1)?.parse::<u64>().ok())
        .map(|pages| pages * (page_size_bytes() / 1024))
        .unwrap_or(0)
}

/// System page size in bytes; 4 KiB when it cannot be queried (the
/// offline build has no libc binding, so read it from procfs-adjacent
/// sysfs knobs only if trivially available).
fn page_size_bytes() -> u64 {
    // smaps_rollup exposes "KernelPageSize: N kB" without libc.
    std::fs::read_to_string("/proc/self/smaps_rollup")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("KernelPageSize:"))
                .and_then(|rest| {
                    rest.trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse::<u64>()
                        .ok()
                })
        })
        .map(|kib| kib * 1024)
        .unwrap_or(4096)
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, proleptic
/// Gregorian — no external time crate in the offline build).
pub fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Root digest of the audit ladder of a pinned reference run: a 2-pair
/// UDP NAV-inflation scenario with GRC attached, audited every 100 ms of
/// virtual time. Pinned *here* (seed, duration, audit grid and all) so
/// the digest is a pure function of the simulator's behavior: a changed
/// value in `BENCH_<date>.json` means some layer's state evolution
/// changed, independent of how fast it ran.
///
/// # Panics
///
/// Panics if the pinned scenario fails to build — a bug in this crate.
pub fn audit_root() -> u64 {
    use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario};
    let mut s = Scenario::two_pair_udp(GreedyConfig::nav_inflation(NavInflationConfig::cts_only(
        10_000, 0.5,
    )));
    s.duration = sim::SimDuration::from_secs(1);
    s.byte_error_rate = 2e-4;
    s.grc = Some(true);
    let out = Run::plan(&s)
        .seeded(7)
        .audit_every(sim::SimDuration::from_millis(100))
        .execute()
        .expect("pinned audit scenario is valid");
    out.audit.root_digest()
}

/// Runs the pinned gate subset sequentially and times it: best of
/// [`GATE_PASSES`] unchecked passes for the throughput figure, best of
/// [`GATE_PASSES`] conformance-checked passes for the overhead ratio.
///
/// # Panics
///
/// Panics if a [`GATE_SUBSET`] id is missing from the registry — that is
/// a bug in this crate, not a runtime condition.
pub fn run_gate() -> GateReport {
    let reg = registry();
    let ctx = RunCtx::sequential(gate_quality());
    let mut stats_out: Option<Vec<GateStat>> = None;
    for _ in 0..GATE_PASSES {
        let mut pass = Vec::new();
        for id in GATE_SUBSET {
            let (_, gen) = reg
                .iter()
                .find(|(rid, _)| rid == id)
                .expect("gate subset id in registry");
            let before = stats::snapshot();
            let t = Instant::now();
            let _ = gen(&ctx);
            let wall_s = t.elapsed().as_secs_f64();
            let used = stats::snapshot().since(before);
            pass.push(GateStat {
                id: (*id).to_string(),
                wall_s,
                events: used.events_processed,
            });
        }
        let total: f64 = pass.iter().map(|s| s.wall_s).sum();
        let best = stats_out
            .as_ref()
            .map(|b| b.iter().map(|s| s.wall_s).sum::<f64>());
        if best.is_none_or(|b| total < b) {
            stats_out = Some(pass);
        }
    }
    let stats_out = stats_out.expect("at least one gate pass ran");
    // Same subset, identical fidelity, with the live conformance checker
    // attached to every run: the wall-clock delta between the two best
    // passes *is* the checker's overhead, and the subset doubles as a
    // protocol regression test — any violation fails `--check`.
    let camp = crate::ConformCampaign::new();
    let conform_ctx = RunCtx::sequential(gate_quality()).with_conform(camp.clone());
    let mut conform_wall_s = f64::INFINITY;
    for _ in 0..GATE_PASSES {
        let t = Instant::now();
        for id in GATE_SUBSET {
            let (_, gen) = reg
                .iter()
                .find(|(rid, _)| rid == id)
                .expect("gate subset id in registry");
            let _ = gen(&conform_ctx);
        }
        conform_wall_s = conform_wall_s.min(t.elapsed().as_secs_f64());
    }
    let reports = camp.take_reports();
    let conform_runs = reports.len() as u64;
    let conform_violations = reports.iter().map(|(_, r)| r.violation_count()).sum();
    GateReport {
        date: utc_date(),
        stats: stats_out,
        peak_rss_kib: peak_rss_kib(),
        audit_root: audit_root(),
        conform_wall_s,
        conform_runs,
        conform_violations,
        world: world_smoke(),
        cc: cc_smoke(),
        sustained_events_per_sec: sustained_smoke(),
        roc_events_per_sec: roc_smoke(),
        intensity_events_per_sec: intensity_smoke(),
    }
}

/// Times the pinned detection-science smoke: a one-seed
/// [`crate::RocCampaign`] at a fidelity pinned here, writing its
/// artifacts to a scratch directory under the system temp dir.
/// Most of the wall clock is the paired simulation runs, so the figure
/// is events/s like the rest of the gate; the offline sweep and the
/// sequential-detector replay ride inside the same timing, which is the
/// point — a slowdown anywhere in the `repro roc` path moves it.
///
/// # Panics
///
/// Panics if the pinned campaign fails to run — a bug in this crate
/// (the scratch directory is always creatable under `temp_dir`).
pub fn roc_smoke() -> f64 {
    let quality = Quality {
        seeds: vec![1],
        duration: sim::SimDuration::from_millis(500),
        samples: 1_000,
    };
    let campaign = crate::RocCampaign {
        quality,
        jobs: 1,
        window: sim::SimDuration::from_millis(100),
    };
    let dir = std::env::temp_dir().join("gr-gate-roc-smoke");
    let before = stats::snapshot();
    let t = Instant::now();
    campaign.run(&dir).expect("pinned roc smoke is valid");
    let wall = t.elapsed().as_secs_f64();
    let used = stats::snapshot().since(before);
    used.events_processed as f64 / wall.max(1e-9)
}

/// Times the pinned intensity-frontier smoke: a one-seed
/// [`crate::IntensityCampaign`] thinned to the two grid endpoints
/// (`{0.01, 1.0}`), writing its artifacts to a scratch directory under
/// the system temp dir. Like [`roc_smoke`], most of the wall clock is
/// simulation, so the figure is events/s.
///
/// # Panics
///
/// Panics if the pinned campaign fails to run — a bug in this crate
/// (the scratch directory is always creatable under `temp_dir`).
pub fn intensity_smoke() -> f64 {
    let quality = Quality {
        seeds: vec![1],
        duration: sim::SimDuration::from_millis(500),
        samples: 1_000,
    };
    let mut campaign = crate::IntensityCampaign::new(quality, 1).with_points(2);
    campaign.window = sim::SimDuration::from_millis(100);
    let dir = std::env::temp_dir().join("gr-gate-intensity-smoke");
    let before = stats::snapshot();
    let t = Instant::now();
    campaign.run(&dir).expect("pinned intensity smoke is valid");
    let wall = t.elapsed().as_secs_f64();
    let used = stats::snapshot().since(before);
    used.events_processed as f64 / wall.max(1e-9)
}

/// Times the pinned sustained-throughput workload: one AP saturating
/// eight stations with CBR/UDP over RTS/CTS and a lossy channel for the
/// full run. Unlike the figure experiments — which sweep a parameter
/// and spend much of their wall clock in set-up — this keeps the medium
/// contended and the frame arena, interferer fold and FER path hot for
/// every dispatched event, so it is the most direct events/s probe of
/// the data-oriented hot path. Best of [`GATE_PASSES`] passes — this
/// number is gated against the baseline, so like the subset it must be
/// robust to a transiently loaded machine (noise only adds time).
pub fn sustained_smoke() -> f64 {
    use greedy80211::{Run, Scenario, TransportKind};
    let s = Scenario {
        transport: TransportKind::SATURATING_UDP,
        pairs: 8,
        shared_sender: true,
        payload: 1024,
        byte_error_rate: 2e-4,
        duration: sim::SimDuration::from_secs(2),
        seed: 7,
        ..Scenario::default()
    };
    let mut best = 0.0f64;
    for _ in 0..GATE_PASSES {
        let before = stats::snapshot();
        let t = Instant::now();
        Run::plan(&s)
            .execute()
            .expect("pinned sustained smoke is valid");
        let wall = t.elapsed().as_secs_f64();
        let used = stats::snapshot().since(before);
        best = best.max(used.events_processed as f64 / wall.max(1e-9));
    }
    best
}

/// Times the pinned CC smoke: the default 2-pair TCP scenario at gate
/// fidelity, once per non-default controller, sequentially.
pub fn cc_smoke() -> CcSmoke {
    use greedy80211::{CcConfig, Run, Scenario};
    let run = |cc: CcConfig| {
        let s = Scenario {
            cc,
            duration: sim::SimDuration::from_secs(2),
            seed: 7,
            ..Scenario::default()
        };
        let before = stats::snapshot();
        let t = Instant::now();
        Run::plan(&s).execute().expect("pinned cc smoke is valid");
        let wall = t.elapsed().as_secs_f64();
        let used = stats::snapshot().since(before);
        used.events_processed as f64 / wall.max(1e-9)
    };
    CcSmoke {
        cubic_events_per_sec: run(CcConfig::cubic()),
        bbr_events_per_sec: run(CcConfig::bbr()),
    }
}

/// The pinned world-smoke template: the gate's 2-pair UDP NAV-inflation
/// scenario, shortened so nine cells stay within CI time.
fn world_smoke_spec(rows: usize, cols: usize) -> greedy80211::WorldSpec {
    use greedy80211::{GreedyConfig, NavInflationConfig, Scenario, WorldSpec};
    let mut s = Scenario::two_pair_udp(GreedyConfig::nav_inflation(NavInflationConfig::cts_only(
        10_000, 1.0,
    )));
    s.duration = sim::SimDuration::from_millis(500);
    s.grc = Some(false);
    s.seed = 7;
    let mut spec = WorldSpec::grid(s, rows, cols);
    // Everything co-channel: the exchange does maximal work, which is
    // the overhead this smoke exists to watch.
    spec.channels = 1;
    spec.greedy_cells = rows * cols / 3;
    spec.label = "gate-world".into();
    spec
}

/// Times the pinned world smoke at 1 cell and at 3×3 co-channel cells,
/// sequentially (like the rest of the gate) so the figures are
/// comparable on a 1-core container.
pub fn world_smoke() -> WorldSmoke {
    let run = |rows, cols| {
        let before = stats::snapshot();
        let t = Instant::now();
        greedy80211::Run::world(&world_smoke_spec(rows, cols))
            .execute()
            .expect("pinned world smoke is valid");
        let wall = t.elapsed().as_secs_f64();
        let used = stats::snapshot().since(before);
        used.events_processed as f64 / wall.max(1e-9)
    };
    WorldSmoke {
        cells1_events_per_sec: run(1, 1),
        cells9_events_per_sec: run(3, 3),
    }
}

/// Extracts `"<key>": <number>` from a baseline JSON file. A hand-rolled
/// scan — the offline build has no JSON parser, and the format is our
/// own.
pub fn baseline_value(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"total_events_per_sec": <number>` from a baseline JSON file.
pub fn baseline_events_per_sec(json: &str) -> Option<f64> {
    baseline_value(json, "total_events_per_sec")
}

/// Compares a gate run against the committed baseline.
///
/// # Errors
///
/// Returns a human-readable message when the baseline file is missing or
/// unparsable, or when throughput regressed beyond `tolerance`.
pub fn check_against_baseline(
    report: &GateReport,
    baseline_path: &Path,
    tolerance: f64,
) -> Result<String, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let base = baseline_events_per_sec(&text)
        .ok_or_else(|| format!("no total_events_per_sec in {}", baseline_path.display()))?;
    let cur = report.events_per_sec();
    let floor = base * (1.0 - tolerance);
    if cur < floor {
        return Err(format!(
            "throughput regression: {cur:.0} events/s vs baseline {base:.0} \
             (floor {floor:.0}, tolerance {:.0} %)",
            tolerance * 100.0
        ));
    }
    // The CC, sustained and roc smokes ride the same band when the
    // baseline carries their keys (older baselines predate them and
    // gate only the aggregate).
    for (key, cur_cc) in [
        ("cc_cubic_events_per_sec", report.cc.cubic_events_per_sec),
        ("cc_bbr_events_per_sec", report.cc.bbr_events_per_sec),
        ("sustained_events_per_sec", report.sustained_events_per_sec),
        ("roc_events_per_sec", report.roc_events_per_sec),
        ("intensity_events_per_sec", report.intensity_events_per_sec),
    ] {
        let Some(base_cc) = baseline_value(&text, key) else {
            continue;
        };
        let floor_cc = base_cc * (1.0 - tolerance);
        if cur_cc < floor_cc {
            return Err(format!(
                "{key} regression: {cur_cc:.0} events/s vs baseline {base_cc:.0} \
                 (floor {floor_cc:.0}, tolerance {:.0} %)",
                tolerance * 100.0
            ));
        }
    }
    Ok(format!(
        "gate OK: {cur:.0} events/s vs baseline {base:.0} ({:+.1} %)",
        (cur / base - 1.0) * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parser_reads_own_format() {
        let r = GateReport {
            date: "2026-01-01".into(),
            stats: vec![GateStat {
                id: "fig2".into(),
                wall_s: 2.0,
                events: 1_000_000,
            }],
            peak_rss_kib: 12_345,
            audit_root: 0xdead_beef,
            conform_wall_s: 2.1,
            conform_runs: 30,
            conform_violations: 0,
            world: WorldSmoke {
                cells1_events_per_sec: 1_000_000.0,
                cells9_events_per_sec: 800_000.0,
            },
            cc: CcSmoke {
                cubic_events_per_sec: 900_000.0,
                bbr_events_per_sec: 850_000.0,
            },
            sustained_events_per_sec: 1_200_000.0,
            roc_events_per_sec: 1_100_000.0,
            intensity_events_per_sec: 1_050_000.0,
        };
        let json = r.to_json();
        let eps = baseline_events_per_sec(&json).expect("parsable");
        assert!((eps - 500_000.0).abs() < 1.0, "{eps}");
        assert!(json.contains("\"audit_root\": \"0x00000000deadbeef\""));
        assert!(json.contains("\"conform_overhead_pct\": 5.0"));
        assert!(json.contains("\"conform_violations\": 0"));
        assert!(json.contains("\"world_cells1_events_per_sec\": 1000000"));
        assert!(json.contains("\"world_cells9_events_per_sec\": 800000"));
        assert!(json.contains("\"cc_cubic_events_per_sec\": 900000"));
        assert!(json.contains("\"cc_bbr_events_per_sec\": 850000"));
        assert!(json.contains("\"sustained_events_per_sec\": 1200000"));
        assert!(json.contains("\"roc_events_per_sec\": 1100000"));
        assert!(json.contains("\"intensity_events_per_sec\": 1050000"));
        assert_eq!(
            baseline_value(&json, "intensity_events_per_sec"),
            Some(1_050_000.0)
        );
        assert_eq!(
            baseline_value(&json, "roc_events_per_sec"),
            Some(1_100_000.0)
        );
        assert_eq!(
            baseline_value(&json, "cc_cubic_events_per_sec"),
            Some(900_000.0)
        );
        assert_eq!(
            baseline_value(&json, "sustained_events_per_sec"),
            Some(1_200_000.0)
        );
    }

    #[test]
    fn conform_check_enforces_violations_and_overhead() {
        let mk = |wall: f64, violations: u64| GateReport {
            date: "2026-01-01".into(),
            stats: vec![GateStat {
                id: "fig2".into(),
                wall_s: 1.0,
                events: 1,
            }],
            peak_rss_kib: 0,
            audit_root: 0,
            conform_wall_s: wall,
            conform_runs: 3,
            conform_violations: violations,
            world: WorldSmoke {
                cells1_events_per_sec: 0.0,
                cells9_events_per_sec: 0.0,
            },
            cc: CcSmoke {
                cubic_events_per_sec: 0.0,
                bbr_events_per_sec: 0.0,
            },
            sustained_events_per_sec: 0.0,
            roc_events_per_sec: 0.0,
            intensity_events_per_sec: 0.0,
        };
        assert!(mk(1.10, 0).conform_check(15.0).is_ok());
        assert!(mk(1.30, 0).conform_check(15.0).is_err());
        assert!(mk(1.00, 1).conform_check(15.0).is_err());
    }

    #[test]
    fn audit_root_is_deterministic_and_nonzero() {
        let a = audit_root();
        assert_eq!(a, audit_root(), "audit root must be reproducible");
        assert_ne!(a, 0);
    }

    #[test]
    fn check_accepts_within_band_and_rejects_regressions() {
        let dir = std::env::temp_dir().join("gr-gate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_BASELINE.json");
        std::fs::write(&path, "{\n  \"total_events_per_sec\": 1000000,\n}\n").unwrap();
        let mk = |events: u64| GateReport {
            date: "2026-01-01".into(),
            stats: vec![GateStat {
                id: "fig2".into(),
                wall_s: 1.0,
                events,
            }],
            peak_rss_kib: 0,
            audit_root: 0,
            conform_wall_s: 1.0,
            conform_runs: 0,
            conform_violations: 0,
            world: WorldSmoke {
                cells1_events_per_sec: 0.0,
                cells9_events_per_sec: 0.0,
            },
            cc: CcSmoke {
                cubic_events_per_sec: 0.0,
                bbr_events_per_sec: 0.0,
            },
            sustained_events_per_sec: 0.0,
            roc_events_per_sec: 0.0,
            intensity_events_per_sec: 0.0,
        };
        assert!(check_against_baseline(&mk(900_000), &path, 0.25).is_ok());
        assert!(check_against_baseline(&mk(1_600_000), &path, 0.25).is_ok());
        assert!(check_against_baseline(&mk(700_000), &path, 0.25).is_err());
        assert!(
            check_against_baseline(&mk(1_000), dir.join("missing.json").as_path(), 0.25).is_err()
        );
        // A baseline carrying CC-smoke keys gates them in the same band;
        // the mk reports say 0 events/s, a >25 % regression.
        let cc_path = dir.join("BENCH_BASELINE_CC.json");
        std::fs::write(
            &cc_path,
            "{\n  \"total_events_per_sec\": 1000000,\n  \"cc_cubic_events_per_sec\": 900000,\n}\n",
        )
        .unwrap();
        let err = check_against_baseline(&mk(1_000_000), &cc_path, 0.25).unwrap_err();
        assert!(err.contains("cc_cubic_events_per_sec"), "{err}");
    }

    #[test]
    fn peak_rss_is_nonzero_under_procfs() {
        // A running process always has resident pages; the VmRSS/statm
        // fallback must keep this nonzero even where VmHWM is absent.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kib() > 0);
        }
    }

    #[test]
    fn civil_date_is_well_formed() {
        let d = utc_date();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        // Sanity: the container clock is past 2020.
        assert!(d[..4].parse::<u32>().unwrap() >= 2020);
    }

    #[test]
    fn gate_subset_ids_exist_in_registry() {
        let reg = registry();
        for id in GATE_SUBSET {
            assert!(
                reg.iter().any(|(rid, _)| rid == id),
                "gate id {id} missing from registry"
            );
        }
    }
}
