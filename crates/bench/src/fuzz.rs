//! Deterministic scenario fuzzing under the live conformance checker.
//!
//! `repro --fuzz N --fuzz-seed K` generates `N` randomized scenarios —
//! topology, transport, payload, loss, greedy mixes — runs each under
//! the full invariant checker, and shrinks any violation to a 10 ms
//! virtual-time bracket via the checkpoint subsystem: the violating run
//! is replayed with 10 ms checkpoint barriers, the checkpoint at the
//! bracket floor is written to `DIR/conform/violation-<run>.snap`, and
//! the printed repro command resumes exactly the offending tail with
//! the checker re-attached.
//!
//! Everything derives from the [`RunKey`] `("fuzz", K, i)`: case `i`'s
//! scenario parameters come from the key's RNG stream, the run's master
//! seed from the same key, and the shrink replay reuses it — so two
//! invocations with the same `N` and `K` produce identical verdicts and
//! byte-identical artifacts, on any machine.
//!
//! Attack intensity is a fuzz dimension too: each greedy case draws a
//! strength in `{0.05, 0.2, 1.0}` and scales its misbehavior configs by
//! it ([`GreedyConfig::at_intensity`]). When a greedy case violates, a
//! second shrink bisects that scale under the same key and reports the
//! *minimal-intensity bracket* — the narrowest `(clean, violating]`
//! span of attack strength, pinpointing how weak the attack can go and
//! still trip the invariant.

use std::path::{Path, PathBuf};

use greedy80211::checkpoint::run_file_stem;
use greedy80211::{
    CcConfig, Checkpoint, GreedyConfig, NavInflationConfig, Run, Scenario, TransportKind,
};
use sim::{RunKey, SimDuration, SimError};

/// Width of the virtual-time bracket a violation is shrunk to.
pub const BRACKET: SimDuration = SimDuration::from_millis(10);

/// One generated fuzz case: the run key that seeds everything, the
/// scenario it expands to, and a one-line human description.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// `("fuzz", fuzz_seed, index)`.
    pub key: RunKey,
    /// The expanded scenario (master seed stamped by the key at
    /// execution time).
    pub scenario: Scenario,
    /// Compact parameter summary for logs.
    pub desc: String,
}

/// Expands fuzz case `index` of campaign `fuzz_seed` — a pure function
/// of its arguments.
///
/// # Panics
///
/// Panics if the generated scenario fails its probe build — every point
/// in the generator's parameter space is valid by construction, so that
/// is a bug in this module.
pub fn generate_case(fuzz_seed: u64, index: u64) -> FuzzCase {
    let key = RunKey::new("fuzz", fuzz_seed, index);
    let mut rng = key.rng();
    let pairs = 1 + rng.uniform_usize(3);
    let shared_sender = rng.chance(0.5);
    let transport = if rng.chance(0.5) {
        TransportKind::SATURATING_UDP
    } else {
        TransportKind::Tcp
    };
    let rts = rng.chance(0.5);
    let payload = [256, 512, 1024, 1460][rng.uniform_usize(4)];
    let duration = SimDuration::from_millis(150 + rng.uniform_usize(251) as u64);
    let byte_error_rate = [0.0, 1e-5, 5e-5][rng.uniform_usize(3)];
    let grc = [None, Some(false), Some(true)][rng.uniform_usize(3)];
    let probes = rng.chance(0.3);
    // Congestion controller: drawn for every case so the key stream stays
    // stable, applied only when the transport is TCP.
    let cc = [
        CcConfig::newreno(),
        CcConfig::cubic(),
        CcConfig::bbr(),
        CcConfig::newreno().with_hystart(),
    ][rng.uniform_usize(4)];
    let mut s = Scenario {
        transport,
        cc,
        pairs,
        shared_sender,
        rts,
        payload,
        byte_error_rate,
        grc,
        probes,
        duration,
        ..Scenario::default()
    };
    // Greedy mix: each receiver independently turns greedy with one of
    // the paper's three misbehaviors. Spoofing needs victim node ids,
    // which depend on the topology — a probe build resolves them.
    let victims = s.build().expect("generated scenario is valid").receivers;
    // Attack intensity, drawn for every case (stream stability), applied
    // to whatever greedy mix materializes below.
    let intensity = [0.05, 0.2, 1.0][rng.uniform_usize(3)];
    let mut greedy_desc = Vec::new();
    for r in 0..pairs {
        if !rng.chance(0.4) {
            continue;
        }
        let cfg = match rng.uniform_usize(3) {
            0 => {
                let inflate_us = [2_000, 10_000, 32_000][rng.uniform_usize(3)];
                let gp = [0.5, 1.0][rng.uniform_usize(2)];
                greedy_desc.push(format!("{r}:nav({}ms,gp{gp})", inflate_us / 1_000));
                GreedyConfig::nav_inflation(NavInflationConfig::cts_only(inflate_us, gp))
            }
            1 => {
                let victim = victims[rng.uniform_usize(victims.len())];
                let gp = [0.5, 1.0][rng.uniform_usize(2)];
                greedy_desc.push(format!("{r}:spoof(n{},gp{gp})", victim.0));
                GreedyConfig::ack_spoofing(vec![victim], gp)
            }
            _ => {
                let gp = [0.5, 1.0][rng.uniform_usize(2)];
                greedy_desc.push(format!("{r}:fake(gp{gp})"));
                GreedyConfig::fake_acks(gp)
            }
        };
        s.greedy.push((r, cfg.at_intensity(intensity)));
    }
    let intensity_mark = if s.greedy.is_empty() {
        String::new()
    } else {
        format!("@i{intensity}")
    };
    let desc = format!(
        "{pairs}p{} {} {} pay={payload} ber={byte_error_rate:.0e} grc={} dur={}ms greedy=[{}]{intensity_mark}",
        if shared_sender { "(ap)" } else { "" },
        match transport {
            TransportKind::Udp { .. } => "udp".to_string(),
            TransportKind::Tcp => format!("tcp/cc={}", cc.name()),
        },
        if rts { "rts" } else { "basic" },
        match grc {
            None => "off",
            Some(false) => "detect",
            Some(true) => "mitigate",
        },
        duration.as_nanos() / 1_000_000,
        greedy_desc.join(","),
    );
    FuzzCase {
        key,
        scenario: s,
        desc,
    }
}

/// Verdict for one fuzz case.
#[derive(Debug)]
pub struct FuzzVerdict {
    /// The case that ran.
    pub case: FuzzCase,
    /// Events the checker examined.
    pub events_checked: u64,
    /// Violations found (empty = clean).
    pub violations: Vec<conform::Violation>,
    /// Would-be violations exempted by declared greedy quirks.
    pub whitelisted: u64,
    /// Virtual-time bracket `[lo, hi)` in ms containing the first
    /// violation, when one was found and shrunk.
    pub bracket_ms: Option<(u64, u64)>,
    /// Minimal-intensity bracket `(lo, hi]` for greedy cases that
    /// violated: scaling the case's attack to `lo` of its strength runs
    /// clean, scaling to `hi` still violates. `(0, 0)` marks a violation
    /// independent of the attack (it reproduces with the attack off).
    pub intensity_bracket: Option<(f64, f64)>,
    /// Layer the violated rule belongs to.
    pub layer: Option<&'static str>,
    /// Checkpoint written at the bracket floor, replayable with
    /// `repro --conform --resume <path>`.
    pub artifact: Option<PathBuf>,
}

impl FuzzVerdict {
    /// Whether the case passed every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `scenario` once under the checker (a capacity-0 recorder feeds
/// the checker's tap without retaining anything) and returns its report.
fn check_scenario(
    scenario: &Scenario,
    key: &RunKey,
    honor_whitelist: bool,
) -> Result<conform::ConformReport, SimError> {
    let mut job = conform::ConformJob::new(Some(key.clone()));
    job.honor_whitelist = honor_whitelist;
    {
        let rec = obs::ObsSpec {
            capacity: 0,
            probe_interval: None,
            filter: obs::Filter::all(),
        }
        .recorder();
        let _obs_guard = obs::ambient::install(rec);
        let _cf_guard = conform::ambient::install(job.clone());
        Run::plan(scenario).keyed(key.clone()).execute()?;
    }
    let mut reports = job.drain();
    Ok(reports.pop().unwrap_or_default().1)
}

/// Bisects the attack-strength scale of a violating greedy case: six
/// halvings of `(clean lo, violating hi]` starting from `(0, 1]`, each
/// probe re-running the scaled scenario under the same key and whitelist
/// mode. A violation at scale 0 (attack fully off) short-circuits to
/// `(0, 0)` — the invariant breaks without any misbehavior.
fn shrink_intensity(case: &FuzzCase, honor_whitelist: bool) -> Result<(f64, f64), SimError> {
    let scaled = |scale: f64| {
        let mut s = case.scenario.clone();
        for (_, cfg) in &mut s.greedy {
            *cfg = cfg.at_intensity(scale);
        }
        s
    };
    if !check_scenario(&scaled(0.0), &case.key, honor_whitelist)?.is_clean() {
        return Ok((0.0, 0.0));
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..6 {
        let mid = 0.5 * (lo + hi);
        if check_scenario(&scaled(mid), &case.key, honor_whitelist)?.is_clean() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo, hi))
}

/// Runs one fuzz case under the checker; on violation, replays it with
/// [`BRACKET`] checkpoint barriers, writes the bracket-floor checkpoint
/// into `out_dir/conform/`, and (for greedy cases) bisects the attack
/// strength to a minimal-intensity bracket.
///
/// # Errors
///
/// Propagates simulation and filesystem errors.
pub fn run_case(case: FuzzCase, out_dir: &Path) -> Result<FuzzVerdict, SimError> {
    run_case_with(case, out_dir, true)
}

/// [`run_case`] with the whitelist mode explicit, for tests that must
/// re-arm rules a declared greedy quirk would exempt.
pub fn run_case_with(
    case: FuzzCase,
    out_dir: &Path,
    honor_whitelist: bool,
) -> Result<FuzzVerdict, SimError> {
    let report = check_scenario(&case.scenario, &case.key, honor_whitelist)?;
    if report.is_clean() {
        return Ok(FuzzVerdict {
            case,
            events_checked: report.events_checked,
            violations: report.violations,
            whitelisted: report.whitelisted,
            bracket_ms: None,
            intensity_bracket: None,
            layer: None,
            artifact: None,
        });
    }

    // Shrink: the checker pinned the first violation to an exact virtual
    // time; replay the identical run with 10 ms checkpoint barriers and
    // keep the checkpoint at the bracket floor. Resuming it replays only
    // the offending bracket.
    let first = report.violations.first().expect("non-clean report");
    let lo = first.at.floor_to(BRACKET);
    let lo_ms = lo.as_nanos() / 1_000_000;
    let bracket_ms = (lo_ms, lo_ms + BRACKET.as_nanos() / 1_000_000);
    let layer = first.rule.layer();
    let replay = Run::plan(&case.scenario)
        .keyed(case.key.clone())
        .checkpoint_every(BRACKET)
        .execute()?;
    // The barrier grid starts at one interval, so a violation inside the
    // first bracket has no earlier state to freeze — the repro is then
    // simply the run itself from the start.
    let artifact = match replay.checkpoints.iter().find(|(at, _)| *at == lo) {
        Some((_, bytes)) => {
            let path = out_dir
                .join("conform")
                .join(format!("violation-{}.snap", run_file_stem(&case.key)));
            let ckpt = Checkpoint::decode(bytes)
                .map_err(|e| SimError::invalid_config(format!("checkpoint re-decode: {e}")))?;
            ckpt.write(&path).map_err(|e| {
                SimError::invalid_config(format!("cannot write {}: {e}", path.display()))
            })?;
            Some(path)
        }
        None => None,
    };
    // Greedy cases get the second shrink axis: how weak can this attack
    // go and still trip the invariant?
    let intensity_bracket = if case.scenario.greedy.is_empty() {
        None
    } else {
        Some(shrink_intensity(&case, honor_whitelist)?)
    };
    Ok(FuzzVerdict {
        case,
        events_checked: report.events_checked,
        violations: report.violations,
        whitelisted: report.whitelisted,
        bracket_ms: Some(bracket_ms),
        intensity_bracket,
        layer: Some(layer),
        artifact,
    })
}

/// Runs the whole fuzz campaign sequentially (fuzzing wants stable,
/// scannable output more than parallel wall clock) and returns every
/// verdict in case order.
///
/// # Errors
///
/// Propagates the first simulation or filesystem error.
pub fn run_campaign(n: u64, fuzz_seed: u64, out_dir: &Path) -> Result<Vec<FuzzVerdict>, SimError> {
    (0..n)
        .map(|i| run_case(generate_case(fuzz_seed, i), out_dir))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..10 {
            let a = generate_case(7, i);
            let b = generate_case(7, i);
            assert_eq!(a.desc, b.desc, "case {i}");
            assert_eq!(a.key, b.key);
        }
    }

    #[test]
    fn distinct_campaign_seeds_change_cases() {
        let a: Vec<String> = (0..10).map(|i| generate_case(1, i).desc).collect();
        let b: Vec<String> = (0..10).map(|i| generate_case(2, i).desc).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn cases_cover_the_parameter_space() {
        let descs: Vec<String> = (0..40).map(|i| generate_case(3, i).desc).collect();
        let any = |pat: &str| descs.iter().any(|d| d.contains(pat));
        assert!(any("udp") && any("tcp"), "both transports");
        assert!(
            any("cc=newreno") && any("cc=cubic") && any("cc=bbr"),
            "controller draw must reach the zoo"
        );
        assert!(any("rts") && any("basic"), "both access modes");
        assert!(
            any(":nav(") && any(":spoof(") && any(":fake("),
            "all misbehaviors"
        );
        assert!(any("greedy=[]"), "honest cases too");
        assert!(
            any("@i0.05") && any("@i0.2") && any("@i1"),
            "intensity draw must reach every strength"
        );
        assert!(
            !descs
                .iter()
                .any(|d| d.contains("greedy=[]") && d.contains("@i")),
            "honest cases carry no intensity marker"
        );
    }

    /// Intensity shrinking end to end on a real violation: a
    /// NAV-inflating case with the whitelist re-armed violates
    /// `nav-duration-bound`; the bisection must return a genuine
    /// bracket — a clean floor strictly below a violating ceiling within
    /// the case's own strength.
    #[test]
    fn violating_greedy_case_shrinks_to_an_intensity_bracket() {
        let mut scenario = Scenario {
            duration: SimDuration::from_millis(200),
            ..Scenario::default()
        };
        scenario.greedy.push((
            0,
            GreedyConfig::nav_inflation(NavInflationConfig::cts_only(32_000, 1.0)),
        ));
        let case = FuzzCase {
            key: RunKey::new("fuzz-int", 0, 0),
            scenario,
            desc: "intensity shrink drill".into(),
        };
        let dir = std::env::temp_dir().join("gr-fuzz-int-test");
        let v = run_case_with(case, &dir, false).expect("case runs");
        assert!(!v.is_clean(), "re-armed NAV inflation must violate");
        let (lo, hi) = v.intensity_bracket.expect("greedy violation shrinks");
        assert!(lo < hi, "bracket must have width: ({lo}, {hi}]");
        assert!(hi <= 1.0);
        assert!(
            hi - lo <= 1.0 / 64.0 + 1e-12,
            "six bisections must narrow to 1/64: ({lo}, {hi}]"
        );
    }

    #[test]
    fn clean_case_runs_clean() {
        // Case search: find an honest (no-greedy) short case and check it
        // verifies clean end to end.
        let case = (0..50)
            .map(|i| generate_case(11, i))
            .find(|c| c.scenario.greedy.is_empty())
            .expect("an honest case among 50");
        let dir = std::env::temp_dir().join("gr-fuzz-clean-test");
        let v = run_case(case, &dir).expect("runs");
        assert!(v.is_clean(), "violations: {:?}", v.violations);
        assert!(v.events_checked > 0);
    }
}
