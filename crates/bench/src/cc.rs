//! Congestion-control zoo campaign: controller × misbehavior damage
//! matrix.
//!
//! The paper fixes the transport at TCP Reno; `repro --cc` asks how much
//! of its damage story is Reno-specific. Every controller of the zoo
//! ({NewReno, CUBIC, BBR, NewReno+HyStart}) runs the standard two-pair
//! TCP hotspot under every misbehavior ({honest, NAV inflation, ACK
//! spoofing, fake ACKs}), with the GRC observer watching (detect-only,
//! so detection counts ride along without perturbing the run). Each
//! `(controller, attack)` cell reports the victim's honest-baseline and
//! under-attack goodput, the greedy flow's goodput, the damage
//! percentage, detector counts, and the victim's retransmission /
//! timeout / average-cwnd profile.
//!
//! Artifacts: `cc_matrix.csv` (the full matrix) plus one
//! `cc-<controller>.csv` per controller. Sweeps are labelled
//! `cc/<controller>`, so derived seeds depend only on the cell — the
//! CSVs are byte-identical at any `--jobs` width (the CI smoke compares
//! a `--jobs 1` and a `--jobs 8` pass byte for byte).

use std::io;
use std::path::{Path, PathBuf};

use greedy80211::{CcConfig, GreedyConfig, NavInflationConfig, Run, RunOutcome, Scenario};

use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

/// Misbehaviors swept, in matrix row order.
pub const ATTACKS: &[&str] = &["honest", "nav", "spoof", "fake"];

/// NAV inflation applied by the greedy receiver (CTS-only, 10 ms — the
/// paper's high-damage point).
pub const NAV_INFLATE_US: u32 = 10_000;

/// Byte error rate for the spoof and fake cells (both the attacked run
/// and its honest baseline): either ACK forgery only has frames to lie
/// about when the channel actually loses some (paper Figs. 11/12 sweep
/// this; 2e-4 sits at the high-damage end of Table III's grid).
pub const LOSSY_BER: f64 = 2e-4;

/// Controllers swept, in matrix column-group order.
pub fn controllers() -> Vec<CcConfig> {
    vec![
        CcConfig::newreno(),
        CcConfig::cubic(),
        CcConfig::bbr(),
        CcConfig::newreno().with_hystart(),
    ]
}

/// A planned `--cc` campaign.
#[derive(Debug, Clone)]
pub struct CcCampaign {
    /// Run length and replication seeds.
    pub quality: Quality,
    /// Worker threads the sweeps shard across.
    pub jobs: usize,
    /// Controllers to sweep (defaults to [`controllers`]).
    pub ccs: Vec<CcConfig>,
}

impl CcCampaign {
    /// The default controller × attack matrix at `quality` fidelity.
    pub fn new(quality: Quality, jobs: usize) -> Self {
        CcCampaign {
            quality,
            jobs,
            ccs: controllers(),
        }
    }

    /// Runs the matrix, writes `cc_matrix.csv` and one per-controller
    /// CSV into `out_dir`, and returns the report.
    ///
    /// # Errors
    ///
    /// Propagates CSV I/O errors.
    pub fn run(&self, out_dir: &Path) -> io::Result<CcCampaignReport> {
        std::fs::create_dir_all(out_dir)?;
        let ctx = RunCtx::with_jobs(self.quality.clone(), self.jobs);
        let columns = [
            "cc",
            "attack",
            "honest_mbps",
            "victim_mbps",
            "greedy_mbps",
            "damage_pct",
            "nav_detections",
            "spoof_flags",
            "victim_retx",
            "victim_timeouts",
            "victim_avg_cwnd",
        ];
        let mut matrix = Experiment::new(
            "cc_matrix",
            "Congestion-control zoo: misbehavior damage matrix",
            &columns,
        );
        let mut controller_csvs = Vec::new();
        for &cfg in &self.ccs {
            let label = format!("cc/{}", cfg.name());
            let rows = sweep(&ctx, &label, ATTACKS, |&attack, seed| {
                measure_cell(cfg, attack, &self.quality, seed)
            });
            let mut per = Experiment::new(
                "cc",
                format!("Controller {}: damage and detection per attack", cfg.name()),
                &columns,
            );
            for (&attack, vals) in ATTACKS.iter().zip(rows) {
                let row = render_row(cfg, attack, &vals);
                per.push_row(row.clone());
                matrix.push_row(row);
            }
            let path = out_dir.join(format!("cc-{}.csv", cfg.name().replace('+', "-")));
            std::fs::write(&path, per.csv())?;
            controller_csvs.push(path);
        }
        matrix.write_csv(out_dir)?;
        Ok(CcCampaignReport {
            matrix,
            controller_csvs,
        })
    }
}

/// Result of a finished `--cc` campaign.
#[derive(Debug)]
pub struct CcCampaignReport {
    /// One row per `(controller, attack)` cell.
    pub matrix: Experiment,
    /// Per-controller CSV files written, in controller order.
    pub controller_csvs: Vec<PathBuf>,
}

/// The standard two-pair TCP hotspot under `cc`, GRC watching
/// (detect-only).
fn cc_two_pair(cc: CcConfig, q: &Quality, seed: u64, ber: f64) -> Scenario {
    Scenario {
        cc,
        byte_error_rate: ber,
        grc: Some(false),
        duration: q.duration,
        seed,
        ..Scenario::default()
    }
}

/// Measures one `(controller, attack)` cell for one seed: the honest
/// baseline and the attacked run under matching channel conditions.
fn measure_cell(cc: CcConfig, attack: &str, q: &Quality, seed: u64) -> Vec<f64> {
    let ber = if matches!(attack, "spoof" | "fake") {
        LOSSY_BER
    } else {
        0.0
    };
    let honest = Run::plan(&cc_two_pair(cc, q, seed, ber))
        .execute()
        .expect("valid scenario");
    let out = match attack {
        "honest" => None,
        "nav" => Some(GreedyConfig::nav_inflation(NavInflationConfig::cts_only(
            NAV_INFLATE_US,
            1.0,
        ))),
        "spoof" => Some(GreedyConfig::ack_spoofing(vec![honest.receivers[0]], 1.0)),
        "fake" => Some(GreedyConfig::fake_acks(1.0)),
        other => panic!("unknown attack {other}"),
    }
    .map(|g| {
        let mut s = cc_two_pair(cc, q, seed, ber);
        s.greedy = vec![(1, g)];
        Run::plan(&s).execute().expect("valid scenario")
    })
    .unwrap_or_else(|| honest.clone());
    let victim = flow_stats(&out, 0);
    vec![
        honest.goodput_mbps(0),
        out.goodput_mbps(0),
        out.goodput_mbps(1),
        out.nav_detections() as f64,
        out.spoof_flags() as f64,
        victim.0,
        victim.1,
        victim.2,
    ]
}

/// `(retransmissions, timeouts, avg_cwnd)` of flow `i`.
fn flow_stats(out: &RunOutcome, i: usize) -> (f64, f64, f64) {
    let m = out.metrics.flow(out.flows[i]).expect("flow metrics");
    (
        m.retransmissions as f64,
        m.timeouts as f64,
        m.avg_cwnd.unwrap_or(f64::NAN),
    )
}

/// One CSV row from a cell's per-seed medians.
fn render_row(cc: CcConfig, attack: &str, vals: &[f64]) -> Vec<String> {
    let honest = vals[0];
    let victim = vals[1];
    let damage = if honest > 0.0 {
        (honest - victim) / honest * 100.0
    } else {
        0.0
    };
    vec![
        cc.name().to_string(),
        attack.to_string(),
        mbps(honest),
        mbps(victim),
        mbps(vals[2]),
        format!("{damage:.1}"),
        format!("{:.0}", vals[3]),
        format!("{:.0}", vals[4]),
        format!("{:.0}", vals[5]),
        format!("{:.0}", vals[6]),
        format!("{:.1}", vals[7]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;

    fn tiny_quality() -> Quality {
        Quality {
            seeds: vec![1],
            duration: SimDuration::from_millis(300),
            samples: 100,
        }
    }

    #[test]
    fn campaign_csvs_are_identical_at_any_job_count() {
        let campaign = |jobs: usize| {
            let mut c = CcCampaign::new(tiny_quality(), jobs);
            c.ccs = vec![CcConfig::newreno(), CcConfig::bbr()];
            c
        };
        let dir1 = std::env::temp_dir().join("gr-cc-jobs1");
        let dir2 = std::env::temp_dir().join("gr-cc-jobs2");
        let r1 = campaign(1).run(&dir1).unwrap();
        let r2 = campaign(2).run(&dir2).unwrap();
        assert_eq!(r1.matrix.csv(), r2.matrix.csv());
        assert_eq!(r1.controller_csvs.len(), 2);
        for (a, b) in r1.controller_csvs.iter().zip(&r2.controller_csvs) {
            assert_eq!(
                std::fs::read_to_string(a).unwrap(),
                std::fs::read_to_string(b).unwrap(),
                "per-controller CSVs must not depend on --jobs"
            );
        }
        // Matrix shape: 2 controllers × 4 attacks.
        assert_eq!(r1.matrix.rows.len(), 8);
        assert!(r1.matrix.csv().starts_with("cc,attack,honest_mbps,"));
    }

    #[test]
    fn honest_rows_report_zero_damage() {
        let mut c = CcCampaign::new(tiny_quality(), 2);
        c.ccs = vec![CcConfig::cubic()];
        let dir = std::env::temp_dir().join("gr-cc-honest");
        let r = c.run(&dir).unwrap();
        let honest = &r.matrix.rows[0];
        assert_eq!(honest[1], "honest");
        assert_eq!(honest[2], honest[3], "honest baseline is its own victim");
        assert_eq!(honest[5], "0.0", "no damage without an attacker");
    }
}
