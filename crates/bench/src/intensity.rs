//! Attack-intensity frontiers behind `repro intensity` (DESIGN.md §18).
//!
//! The ROC campaign (§17) characterizes every detector against *full
//! strength* misbehavior. This campaign asks the harder operational
//! question: **how weak can an attacker go and still get caught?** Each
//! misbehavior's strength is a first-class sweep dimension — the
//! [`Axis`] maps a normalized intensity `t ∈ (0, 1]` onto the attack's
//! native knob (NAV inflation µs, forgery probability, backoff
//! fraction) — and every `(detector, mix, intensity)` cell runs a
//! matched honest/attacked pair under one simulation [`RunKey`].
//!
//! Artifacts, per detector:
//!
//! * `intensity_<det>.csv` — the frontier: AUC and the shipped
//!   operating point's TPR/FPR per intensity, plus (for the windowed
//!   guards) the fraction of attacked runs in which the shipped
//!   windowed rule, a one-window Shewhart rule on the standardized
//!   means, CUSUM, and SPRT each fired.
//! * `knees.csv` — the minimal reliably-detectable intensity per cell
//!   (the *knee*, [`detsci::minimal_detectable`]) and the crossover
//!   regime where sequential detection beats the memoryless Shewhart
//!   rule at matched calibration ([`detsci::crossover_regime`]).
//!
//! Every job is **one** simulation (honest *or* attacked), so a
//! checkpointing [`RunCtx`] gives each run its own checkpoint file and
//! the whole campaign can be resumed mid-sweep. Honest and attacked
//! jobs of a cell share the simulation key, so channel draws stay
//! matched. Results are regrouped in submission order — artifacts are
//! byte-identical at any `--jobs` width.

use std::io;
use std::path::{Path, PathBuf};

use detsci::{
    auc, crossover_regime, minimal_detectable, Cusum, IntensityPoint, KneeCriterion, MethodPoint,
    OperatingPoint, Sprt, SprtVerdict,
};
use greedy80211::detect::WindowStat;
use greedy80211::Axis;
use sim::{RunKey, SimDuration};

use crate::roc::{
    calibration, densify, measure_class, operating_threshold, Cell, ClassSeed, CELLS, CUSUM_ARL0,
    CUSUM_K, DETECTORS, SPRT_ALPHA, SPRT_BETA,
};
use crate::table::Experiment;
use crate::{Quality, RunCtx};

/// The default intensity grid: log-ish spacing from 1 % of full attack
/// strength up to the historical full-strength campaigns.
pub const INTENSITY_GRID: &[f64] = &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

/// A sequential/windowed method "fires reliably" at an intensity when it
/// detects in at least this fraction of attacked runs.
pub const FIRE_FRACTION: f64 = 0.5;

/// A planned `repro intensity` campaign.
#[derive(Debug, Clone)]
pub struct IntensityCampaign {
    /// Run length and replication seeds.
    pub quality: Quality,
    /// Worker threads the simulation batch shards across.
    pub jobs: usize,
    /// Decision-statistic window width (default 200 ms).
    pub window: SimDuration,
    /// Intensity grid, ascending in `(0, 1]`.
    pub grid: Vec<f64>,
}

/// One measured intensity sample of a cell's frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Normalized attack intensity in `(0, 1]`.
    pub intensity: f64,
    /// The attack's native knob value at this intensity
    /// ([`Axis::knob_at`]).
    pub knob: f64,
    /// Honest-class sample count (pooled over seeds).
    pub honest_n: usize,
    /// Greedy-class sample count (pooled over seeds).
    pub greedy_n: usize,
    /// Exact Mann–Whitney AUC (NaN when a class is empty).
    pub auc: f64,
    /// The shipped threshold's operating point at this intensity.
    pub op: OperatingPoint,
    /// Fraction of attacked runs the windowed rule fired in at the
    /// *shipped* operating threshold (windowed guards only).
    pub windowed_fired: Option<f64>,
    /// Fraction of attacked runs a memoryless one-window (Shewhart)
    /// rule fired in, on the same standardized window means the
    /// sequential detectors consume, calibrated to CUSUM's in-control
    /// ARL. The fair baseline for the sequential crossover: the
    /// shipped peak thresholds free-fire (spoof) or are
    /// per-observation exact (nav), so beating them on firing alone
    /// means nothing.
    pub shewhart_fired: Option<f64>,
    /// Fraction of attacked runs CUSUM fired in (windowed guards only).
    pub cusum_fired: Option<f64>,
    /// Fraction of attacked runs the SPRT reached a greedy verdict in
    /// (windowed guards only).
    pub sprt_fired: Option<f64>,
}

/// One cell's full intensity frontier with its derived summaries.
#[derive(Debug, Clone)]
pub struct CellFrontier {
    /// The `(detector, mix)` cell.
    pub cell: Cell,
    /// Frontier samples in grid order.
    pub points: Vec<FrontierPoint>,
    /// Minimal reliably-detectable intensity under the default
    /// [`KneeCriterion`], when the cell ever becomes reliable.
    pub knee: Option<f64>,
    /// Intensity span where a sequential detector fires reliably while
    /// the windowed rule does not (windowed guards only).
    pub crossover: Option<(f64, f64)>,
}

/// Result of a finished `repro intensity` campaign.
#[derive(Debug)]
pub struct IntensityCampaignReport {
    /// Per-cell frontiers in [`CELLS`] order.
    pub cells: Vec<CellFrontier>,
    /// Per-detector frontier tables in [`DETECTORS`] order.
    pub frontiers: Vec<Experiment>,
    /// The knee/crossover summary table.
    pub knees: Experiment,
    /// Every CSV written (frontiers in [`DETECTORS`] order, then
    /// `knees.csv`).
    pub csvs: Vec<PathBuf>,
}

/// Per-detector frontier CSV ids (static for [`Experiment`]).
///
/// # Panics
///
/// Panics on a detector id outside [`DETECTORS`].
pub fn intensity_table_id(detector: &str) -> &'static str {
    match detector {
        "nav" => "intensity_nav",
        "spoof" => "intensity_spoof",
        "fake" => "intensity_fake",
        "cross" => "intensity_cross",
        "domino" => "intensity_domino",
        other => panic!("unknown detector {other}"),
    }
}

/// One `(cell, intensity, class)` job of the sweep.
#[derive(Debug, Clone, Copy)]
struct JobPoint {
    ci: usize,
    ii: usize,
    attacked: bool,
}

impl IntensityCampaign {
    /// The default grid at `quality` fidelity with 200 ms windows.
    pub fn new(quality: Quality, jobs: usize) -> Self {
        IntensityCampaign {
            quality,
            jobs,
            window: SimDuration::from_millis(200),
            grid: INTENSITY_GRID.to_vec(),
        }
    }

    /// Same campaign with the grid thinned to `n` points, keeping both
    /// endpoints (smoke tests want `{0.01, 1.0}` rather than the full
    /// seven-point sweep).
    pub fn with_points(mut self, n: usize) -> Self {
        let len = self.grid.len();
        if n == 0 || n >= len {
            return self;
        }
        self.grid = if n == 1 {
            vec![self.grid[len - 1]]
        } else {
            (0..n).map(|k| self.grid[k * (len - 1) / (n - 1)]).collect()
        };
        self
    }

    /// Runs the campaign on its own worker pool and writes every
    /// artifact into `out_dir`.
    ///
    /// # Errors
    ///
    /// Propagates CSV I/O errors.
    pub fn run(&self, out_dir: &Path) -> io::Result<IntensityCampaignReport> {
        let ctx = RunCtx::with_jobs(self.quality.clone(), self.jobs);
        self.run_with(&ctx, out_dir)
    }

    /// Like [`run`](Self::run), but on an existing context — a
    /// checkpointing `ctx` records (or resumes) one checkpoint file per
    /// simulation, keyed `intensity/runs`, enabling mid-sweep resume.
    ///
    /// # Errors
    ///
    /// Propagates CSV I/O errors.
    ///
    /// # Panics
    ///
    /// Panics when `ctx.quality.seeds` is empty.
    pub fn run_with(&self, ctx: &RunCtx, out_dir: &Path) -> io::Result<IntensityCampaignReport> {
        std::fs::create_dir_all(out_dir)?;
        let q = &ctx.quality;
        let n_seeds = q.seeds.len();
        assert!(n_seeds > 0, "at least one seed");
        let window = self.window;
        let grid = &self.grid;

        // One job per (cell, intensity, class, seed). The *job* key
        // (label `intensity/runs`, class folded into the point) names
        // checkpoint files uniquely per simulation; the *simulation* key
        // (label `intensity/pair`, class excluded) is shared by both
        // classes so their channel draws match.
        let points: Vec<JobPoint> = (0..CELLS.len())
            .flat_map(|ci| {
                (0..grid.len())
                    .flat_map(move |ii| [false, true].map(|attacked| JobPoint { ci, ii, attacked }))
            })
            .collect();
        let checkpoint = ctx.checkpoint.as_ref();
        let jobs: Vec<_> = points
            .iter()
            .enumerate()
            .flat_map(|(pi, point)| {
                let point = *point;
                let intensity = grid[point.ii];
                (0..n_seeds).map(move |si| {
                    let job_key = RunKey::new("intensity/runs", pi as u64, si as u64);
                    let sim_key = RunKey::new(
                        "intensity/pair",
                        (point.ci * grid.len() + point.ii) as u64,
                        si as u64,
                    );
                    let checkpoint = checkpoint.cloned();
                    move || {
                        let _ck_guard = checkpoint.map(|spec| {
                            greedy80211::checkpoint::ambient::install(spec.job(job_key))
                        });
                        measure_class(
                            &CELLS[point.ci],
                            q,
                            window,
                            sim_key,
                            intensity,
                            point.attacked,
                        )
                    }
                })
            })
            .collect();
        let mut flat = ctx.runner.execute_all(jobs).into_iter();
        let per_point: Vec<Vec<ClassSeed>> = points
            .iter()
            .map(|_| {
                (0..n_seeds)
                    .map(|_| flat.next().expect("job count"))
                    .collect()
            })
            .collect();
        let class_seeds = |ci: usize, ii: usize, attacked: bool| -> &Vec<ClassSeed> {
            &per_point[(ci * grid.len() + ii) * 2 + usize::from(attacked)]
        };

        // Evaluation: pure arithmetic over the regrouped measurements.
        let criterion = KneeCriterion::default();
        let cells: Vec<CellFrontier> = CELLS
            .iter()
            .enumerate()
            .map(|(ci, cell)| {
                let axis = Axis::for_detector(cell.detector).expect("every cell has an axis");
                let windowed_guard = matches!(cell.detector, "nav" | "spoof");
                let op_threshold = operating_threshold(cell.detector);
                let points: Vec<FrontierPoint> = grid
                    .iter()
                    .enumerate()
                    .map(|(ii, &intensity)| {
                        let honest_seeds = class_seeds(ci, ii, false);
                        let greedy_seeds = class_seeds(ci, ii, true);
                        let honest: Vec<f64> = honest_seeds
                            .iter()
                            .flat_map(|s| s.stats.iter().copied())
                            .collect();
                        let greedy: Vec<f64> = greedy_seeds
                            .iter()
                            .flat_map(|s| s.stats.iter().copied())
                            .collect();
                        let op = OperatingPoint::at(&honest, &greedy, op_threshold);
                        let fired = windowed_guard
                            .then(|| fired_fractions(honest_seeds, greedy_seeds, op_threshold));
                        FrontierPoint {
                            intensity,
                            knob: axis.knob_at(intensity),
                            honest_n: honest.len(),
                            greedy_n: greedy.len(),
                            auc: auc(&honest, &greedy).unwrap_or(f64::NAN),
                            op,
                            windowed_fired: fired.map(|f| f.windowed_op),
                            shewhart_fired: fired.map(|f| f.shewhart),
                            cusum_fired: fired.map(|f| f.cusum),
                            sprt_fired: fired.map(|f| f.sprt),
                        }
                    })
                    .collect();
                let frontier: Vec<IntensityPoint> = points
                    .iter()
                    .map(|p| IntensityPoint {
                        intensity: p.intensity,
                        tpr: p.op.tpr,
                        fpr: p.op.fpr,
                    })
                    .collect();
                let methods: Vec<MethodPoint> = points
                    .iter()
                    .filter_map(|p| {
                        Some(MethodPoint {
                            intensity: p.intensity,
                            windowed: p.shewhart_fired?,
                            sequential: p.cusum_fired?.max(p.sprt_fired?),
                        })
                    })
                    .collect();
                CellFrontier {
                    cell: *cell,
                    knee: minimal_detectable(&frontier, criterion),
                    crossover: crossover_regime(&methods, FIRE_FRACTION),
                    points,
                }
            })
            .collect();

        // Artifacts.
        let opt = |v: Option<f64>, width: usize| match v {
            Some(x) => format!("{x:.width$}"),
            None => "-".to_string(),
        };
        let mut csvs = Vec::new();
        let mut frontiers = Vec::new();
        for &det in DETECTORS {
            let mut table = Experiment::new(
                intensity_table_id(det),
                format!("Intensity frontier: {det} detector, attack strength sweep"),
                &[
                    "mix",
                    "intensity",
                    "knob",
                    "honest_n",
                    "greedy_n",
                    "auc",
                    "op_tpr",
                    "op_fpr",
                    "windowed_fired",
                    "shewhart_fired",
                    "cusum_fired",
                    "sprt_fired",
                ],
            );
            for cf in cells.iter().filter(|cf| cf.cell.detector == det) {
                for p in &cf.points {
                    table.push_row(vec![
                        cf.cell.mix.to_string(),
                        format!("{:.2}", p.intensity),
                        format!("{:.3}", p.knob),
                        p.honest_n.to_string(),
                        p.greedy_n.to_string(),
                        format!("{:.4}", p.auc),
                        format!("{:.4}", p.op.tpr),
                        format!("{:.4}", p.op.fpr),
                        opt(p.windowed_fired, 2),
                        opt(p.shewhart_fired, 2),
                        opt(p.cusum_fired, 2),
                        opt(p.sprt_fired, 2),
                    ]);
                }
            }
            table.write_csv(out_dir)?;
            csvs.push(out_dir.join(format!("{}.csv", intensity_table_id(det))));
            frontiers.push(table);
        }
        let mut knees = Experiment::new(
            "knees",
            "Minimal detectable intensity and windowed-vs-sequential crossover per cell",
            &[
                "detector",
                "mix",
                "min_tpr",
                "max_fpr",
                "knee_intensity",
                "knee_knob",
                "crossover_lo",
                "crossover_hi",
            ],
        );
        for cf in &cells {
            let axis = Axis::for_detector(cf.cell.detector).expect("every cell has an axis");
            knees.push_row(vec![
                cf.cell.detector.to_string(),
                cf.cell.mix.to_string(),
                format!("{:.2}", criterion.min_tpr),
                format!("{:.2}", criterion.max_fpr),
                opt(cf.knee, 2),
                opt(cf.knee.map(|k| axis.knob_at(k)), 3),
                opt(cf.crossover.map(|c| c.0), 2),
                opt(cf.crossover.map(|c| c.1), 2),
            ]);
        }
        knees.write_csv(out_dir)?;
        csvs.push(out_dir.join("knees.csv"));

        Ok(IntensityCampaignReport {
            cells,
            frontiers,
            knees,
            csvs,
        })
    }
}

/// Per-method firing fractions over the attacked runs of one
/// `(cell, intensity)` point.
#[derive(Clone, Copy)]
struct FiredFractions {
    /// Windowed rule at the shipped operating threshold.
    windowed_op: f64,
    /// Memoryless one-window (Shewhart) rule on the standardized window
    /// means, z-threshold matched to CUSUM's in-control ARL.
    shewhart: f64,
    /// CUSUM on the standardized window means.
    cusum: f64,
    /// SPRT greedy verdict on the standardized window means.
    sprt: f64,
}

/// Fractions of attacked runs in which each detection method fired. The
/// Shewhart rule, CUSUM, and the SPRT all consume the same window means
/// standardized against this intensity's pooled honest windows, with
/// the Shewhart z-threshold set for the same in-control ARL as CUSUM —
/// the textbook memoryless-vs-accumulating comparison at matched
/// false-alarm calibration.
fn fired_fractions(
    honest_seeds: &[ClassSeed],
    greedy_seeds: &[ClassSeed],
    op: f64,
) -> FiredFractions {
    let means: Vec<f64> = honest_seeds
        .iter()
        .flat_map(|s| {
            s.windows
                .iter()
                .filter(|w| w.samples > 0)
                .map(WindowStat::mean)
        })
        .collect();
    let (mu0, sigma0) = calibration(&means);
    // One-sided Shewhart with in-control ARL = CUSUM's:
    // P(Z > z) = 1/ARL₀  ⇒  z = Φ⁻¹(1 − 1/ARL₀).
    let shewhart_z = detsci::adaptive::normal_quantile(1.0 - 1.0 / CUSUM_ARL0);
    let (mut at_op, mut shewhart_hits, mut cusum_hits, mut sprt_hits) = (0u64, 0u64, 0u64, 0u64);
    for cs in greedy_seeds {
        let series = densify(&cs.windows);
        if series.iter().any(|w| w.samples > 0 && w.peak > op) {
            at_op += 1;
        }
        let std = |w: &WindowStat| (w.mean() - mu0) / sigma0;
        if series.iter().any(|w| std(w) > shewhart_z) {
            shewhart_hits += 1;
        }
        let mut cusum = Cusum::with_arl(CUSUM_K, CUSUM_ARL0);
        if series.iter().any(|w| cusum.step(std(w))) {
            cusum_hits += 1;
        }
        let mut sprt = Sprt::new(SPRT_ALPHA, SPRT_BETA, 0.0, 1.0, 1.0);
        if series
            .iter()
            .any(|w| sprt.step(std(w)) == Some(SprtVerdict::Greedy))
        {
            sprt_hits += 1;
        }
    }
    let n = greedy_seeds.len().max(1) as f64;
    FiredFractions {
        windowed_op: at_op as f64 / n,
        shewhart: shewhart_hits as f64 / n,
        cusum: cusum_hits as f64 / n,
        sprt: sprt_hits as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_ascending_and_ends_at_full_strength() {
        assert!(INTENSITY_GRID.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*INTENSITY_GRID.last().unwrap(), 1.0);
        assert!(*INTENSITY_GRID.first().unwrap() > 0.0);
    }

    #[test]
    fn with_points_keeps_both_endpoints() {
        let base = IntensityCampaign::new(Quality::quick(), 1);
        let two = base.clone().with_points(2);
        assert_eq!(two.grid, vec![0.01, 1.0]);
        let three = base.clone().with_points(3);
        assert_eq!(three.grid.len(), 3);
        assert_eq!(three.grid[0], 0.01);
        assert_eq!(*three.grid.last().unwrap(), 1.0);
        assert_eq!(base.clone().with_points(99).grid, INTENSITY_GRID.to_vec());
        assert_eq!(base.with_points(1).grid, vec![1.0]);
    }

    #[test]
    fn table_ids_cover_every_detector() {
        for &det in DETECTORS {
            assert!(intensity_table_id(det).starts_with("intensity_"));
        }
    }
}
