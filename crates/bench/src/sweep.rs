//! Declarative parameter sweeps over the campaign runner.
//!
//! Every simulation-backed experiment is the same shape: measure some
//! vector of values at each sweep point, once per replication seed, and
//! report the component-wise median over seeds per point. [`sweep`] is
//! that shape as a function. It expands `points × seeds` into independent
//! jobs, derives each job's RNG seed from its stable
//! `(label, point index, seed index)` [`RunKey`] — never from execution
//! order — and shards the jobs across the [`RunCtx`]'s worker pool.
//! Results are aggregated in submission order, so the returned medians
//! are bit-identical at any `--jobs` width.
//!
//! Labels feed the seed derivation: an experiment running several sweeps
//! must give each a distinct label (e.g. `"abl1/cs"` and `"abl1/fair"`),
//! or the sweeps would replay identical RNG streams.

use sim::RunKey;

use crate::RunCtx;

/// Runs `measure(point, derived_seed)` for every point × seed and returns
/// per-point component-wise medians over seeds, in point order.
///
/// `measure` receives the derived 64-bit stream seed for that
/// `(point, seed)` cell; it should feed it directly to
/// `Scenario::seed` / `NetworkBuilder::seed`.
///
/// # Panics
///
/// Panics if the quality has no seeds or `measure` returns inconsistent
/// vector lengths across seeds of one point.
pub fn sweep<P, F>(ctx: &RunCtx, label: &str, points: &[P], measure: F) -> Vec<Vec<f64>>
where
    P: Sync,
    F: Fn(&P, u64) -> Vec<f64> + Sync,
{
    let n_seeds = ctx.quality.seeds.len();
    assert!(n_seeds > 0, "at least one seed");
    let measure = &measure;
    let record = ctx.record.as_ref();
    let checkpoint = ctx.checkpoint.as_ref();
    let conform_camp = ctx.conform.as_ref();
    let jobs: Vec<_> = points
        .iter()
        .enumerate()
        .flat_map(|(pi, point)| {
            (0..n_seeds).map(move |si| {
                let key = RunKey::new(label, pi as u64, si as u64);
                let seed = key.stream_seed();
                let record = record.cloned();
                let checkpoint = checkpoint.cloned();
                let conform_camp = conform_camp.cloned();
                move || {
                    // The checkpoint spec rides the same thread-ambient
                    // channel as the flight recorder: installed around
                    // the job so `Run::execute` inside `measure` records
                    // (or resumes) this run's checkpoint/audit files,
                    // named by the job's RunKey.
                    let _ck_guard = checkpoint.map(|spec| {
                        greedy80211::checkpoint::ambient::install(spec.job(key.clone()))
                    });
                    // Conformance rides the same channel again; the
                    // network attaches the checker when it wires its
                    // recorder, so a recorder must exist — hence the
                    // zero-capacity fallback in the unrecorded arm.
                    let _cf_guard = conform_camp
                        .as_ref()
                        .map(|camp| conform::ambient::install(camp.job(key.clone())));
                    match record {
                        Some(camp) => {
                            // One fresh recorder per job, installed as the
                            // worker thread's ambient recorder so every
                            // `Scenario::build` inside `measure` picks it up
                            // without signature changes. The report lands in
                            // the campaign sink keyed by the job's RunKey —
                            // content depends only on the key, never on
                            // which worker ran it.
                            let rec = camp.spec.recorder();
                            let out = {
                                let _guard = obs::ambient::install(rec.clone());
                                measure(point, seed)
                            };
                            let report = rec.borrow_mut().drain_report();
                            let empty = report.events.is_empty()
                                && report.hists.is_empty()
                                && report.series.is_empty();
                            if !empty {
                                camp.deposit(key, report);
                            }
                            out
                        }
                        None if conform_camp.is_some() => {
                            // No telemetry wanted, but the checker needs
                            // an event stream: a capacity-0 recorder
                            // keeps nothing while its tap still sees
                            // every emission.
                            let rec = obs::ObsSpec {
                                capacity: 0,
                                probe_interval: None,
                                filter: obs::Filter::all(),
                            }
                            .recorder();
                            let _guard = obs::ambient::install(rec);
                            measure(point, seed)
                        }
                        None => measure(point, seed),
                    }
                }
            })
        })
        .collect();
    let per_run = ctx.runner.execute_all(jobs);

    per_run
        .chunks(n_seeds)
        .map(|chunk| {
            let arity = chunk[0].len();
            (0..arity)
                .map(|i| {
                    let column: Vec<f64> = chunk
                        .iter()
                        .map(|v| {
                            assert_eq!(v.len(), arity, "inconsistent measurement arity");
                            v[i]
                        })
                        .collect();
                    sim::stats::median(&column).expect("at least one seed")
                })
                .collect()
        })
        .collect()
}

/// Scalar-valued convenience over [`sweep`]: one median per point.
pub fn sweep_scalar<P, F>(ctx: &RunCtx, label: &str, points: &[P], measure: F) -> Vec<f64>
where
    P: Sync,
    F: Fn(&P, u64) -> f64 + Sync,
{
    sweep(ctx, label, points, |p, seed| vec![measure(p, seed)])
        .into_iter()
        .map(|v| v[0])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Quality;
    use runner::Runner;

    fn ctx(jobs: usize) -> RunCtx {
        RunCtx {
            quality: Quality {
                seeds: vec![1, 2, 3],
                ..Quality::quick()
            },
            runner: Runner::new(jobs),
            record: None,
            checkpoint: None,
            conform: None,
        }
    }

    #[test]
    fn medians_in_point_order() {
        let points = [10.0f64, 20.0, 30.0];
        let rows = sweep(&ctx(1), "t", &points, |p, seed| vec![*p, (seed % 7) as f64]);
        assert_eq!(rows.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], points[i]);
        }
    }

    #[test]
    fn identical_at_any_job_count() {
        let points: Vec<u64> = (0..5).collect();
        let gold = sweep(&ctx(1), "t", &points, |p, seed| {
            vec![(*p as f64) + (seed % 100) as f64]
        });
        for jobs in [2, 4, 8] {
            let out = sweep(&ctx(jobs), "t", &points, |p, seed| {
                vec![(*p as f64) + (seed % 100) as f64]
            });
            assert_eq!(out, gold, "jobs={jobs}");
        }
    }

    #[test]
    fn labels_separate_streams() {
        let seeds_a = std::sync::Mutex::new(Vec::new());
        let seeds_b = std::sync::Mutex::new(Vec::new());
        sweep(&ctx(1), "a", &[0], |_, seed| {
            seeds_a.lock().unwrap().push(seed);
            vec![0.0]
        });
        sweep(&ctx(1), "b", &[0], |_, seed| {
            seeds_b.lock().unwrap().push(seed);
            vec![0.0]
        });
        assert_ne!(*seeds_a.lock().unwrap(), *seeds_b.lock().unwrap());
    }

    #[test]
    fn scalar_wrapper_matches_vector_form() {
        let points = [1u32, 2, 3];
        let a = sweep_scalar(&ctx(2), "t", &points, |p, _| *p as f64);
        assert_eq!(a, vec![1.0, 2.0, 3.0]);
    }
}
