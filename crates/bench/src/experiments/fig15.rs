//! Fig. 15 — ACK spoofing with remote TCP senders: the wired latency
//! multiplies the cost of end-to-end recovery. The gap peaks around
//! 200 ms, after which ACK clocking throttles the greedy flow too.

use greedy80211::{GreedyConfig, Run, Scenario};
use sim::SimDuration;

use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

/// Wire latencies swept, in ms (paper: 2–400 ms).
pub(crate) const WIRE_SWEEP_MS: &[u64] = &[2, 10, 50, 100, 200, 400];

pub(crate) fn remote_pair(
    q: &Quality,
    seed: u64,
    wire_ms: u64,
    gp: f64,
) -> greedy80211::RunOutcome {
    let mut s = Scenario {
        byte_error_rate: 2e-5,
        wire_delay: Some(SimDuration::from_millis(wire_ms)),
        // Remote runs need longer to amortize slow start over long RTTs.
        duration: (q.duration * 2).max(SimDuration::from_secs(10)),
        seed,
        ..Scenario::default()
    };
    let base = Run::plan(&s).execute().expect("valid");
    if gp > 0.0 {
        s.greedy = vec![(1, GreedyConfig::ack_spoofing(vec![base.receivers[0]], gp))];
        Run::plan(&s).execute().expect("valid")
    } else {
        base
    }
}

/// Runs the latency sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig15",
        "Fig. 15: remote TCP senders over a wired backbone, R2 spoofs for R1 (BER 2e-5)",
        &["wire_ms", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR"],
    );
    let rows = sweep(ctx, "fig15", WIRE_SWEEP_MS, |&wire_ms, seed| {
        let base = remote_pair(q, seed, wire_ms, 0.0);
        let attacked = remote_pair(q, seed, wire_ms, 1.0);
        vec![
            base.goodput_mbps(0),
            base.goodput_mbps(1),
            attacked.goodput_mbps(0),
            attacked.goodput_mbps(1),
        ]
    });
    for (&wire_ms, vals) in WIRE_SWEEP_MS.iter().zip(rows) {
        e.push_row(vec![
            wire_ms.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
            mbps(vals[2]),
            mbps(vals[3]),
        ]);
    }
    e
}
