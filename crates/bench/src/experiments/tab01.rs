//! Table I — Corrupted frames overwhelmingly preserve their MAC
//! addresses, making fake ACKs feasible. The paper measured this on
//! hardware; we regenerate it with the byte-level corruption model over
//! the real frame layout, with per-byte rates chosen to match the
//! paper's observed corruption fractions (≈2 % on 802.11b at close
//! range, ≈32 % on 802.11a at the cell edge).

use greedy80211::CorruptionStudy;
use sim::SimRng;

use crate::table::{ratio, Experiment};
use crate::RunCtx;

/// 1024 B payload + headers + PLCP-equivalent, as elsewhere.
const FRAME_BYTES: usize = 1104;

/// Runs both rows.
///
/// Analytic-style study with a fixed internal seed (1): intentionally
/// not routed through the sweep runner.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab1",
        "Table I: corrupted frames preserving MAC addresses (synthetic corruption model)",
        &[
            "phy",
            "received",
            "corrupted",
            "corrupted_dest_ok",
            "corrupted_src_dest_ok",
            "dest_ok_ratio",
            "src_dest_ok_ratio",
        ],
    );
    // (label, per-byte rate, frames) — rates reproduce the corruption
    // fractions of the paper's two capture sessions.
    let sessions = [
        ("802.11b", 1.9e-5, 65_536u64),
        ("802.11a", 3.5e-4, 23_068u64),
    ];
    for (label, rate, frames) in sessions {
        let frames = frames.min(q.samples.max(1_000));
        let study = CorruptionStudy::new(FRAME_BYTES, rate).expect("valid study");
        let mut rng = SimRng::new(1);
        let counts = study.run(frames, &mut rng);
        e.push_row(vec![
            label.into(),
            counts.received.to_string(),
            counts.corrupted.to_string(),
            counts.corrupted_dest_ok.to_string(),
            counts.corrupted_src_dest_ok.to_string(),
            ratio(counts.dest_ok_ratio()),
            ratio(counts.src_dest_ok_ratio()),
        ]);
    }
    e
}
