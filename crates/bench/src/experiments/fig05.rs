//! Fig. 5 — the Fig. 4 sweep on 802.11a. The same trends, amplified:
//! shorter inter-frame timing makes each microsecond of inflation worth
//! relatively more.

use phy::PhyStandard;

use crate::experiments::nav_frames_experiment;
use crate::table::Experiment;
use crate::RunCtx;

/// Runs the four sub-figures on 802.11a.
pub fn run(ctx: &RunCtx) -> Experiment {
    nav_frames_experiment(
        "fig5",
        "Fig. 5: TCP goodput vs NAV inflation per inflated frame kind (802.11a)",
        PhyStandard::Dot11a,
        ctx,
    )
}
