//! Fig. 2 — Average contention window of the greedy and normal senders
//! as the NAV inflation grows (UDP, 802.11b). GS stays near CWmin while
//! NS's collisions drive its window up.

use greedy80211::{NavInflationConfig, Run};

use crate::experiments::{nav_two_pair, UDP_NAV_SWEEP_US};
use crate::table::Experiment;
use crate::{sweep, RunCtx};

/// Runs the sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig2",
        "Fig. 2: average contention window of GS and NS vs CTS-NAV inflation (UDP, 802.11b)",
        &["inflate_us", "NS_avg_cw", "GS_avg_cw"],
    );
    let rows = sweep(ctx, "fig2", UDP_NAV_SWEEP_US, |&inflate, seed| {
        let s = nav_two_pair(true, NavInflationConfig::cts_only(inflate, 1.0), q, seed);
        let out = Run::plan(&s).execute().expect("valid scenario");
        let cw = |node| {
            out.metrics
                .node(node)
                .and_then(|n| n.avg_cw)
                .unwrap_or(f64::NAN)
        };
        vec![cw(out.senders[0]), cw(out.senders[1])]
    });
    for (&inflate, vals) in UDP_NAV_SWEEP_US.iter().zip(rows) {
        e.push_row(vec![
            inflate.to_string(),
            format!("{:.1}", vals[0]),
            format!("{:.1}", vals[1]),
        ]);
    }
    e
}
