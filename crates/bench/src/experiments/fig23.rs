//! Fig. 23 — GRC against inflated CTS NAV as the two pairs move apart
//! (communication range 55 m, interference range 99 m).
//!
//! Within ~55 m the victims hear the inflated CTS: without GRC they
//! starve; with GRC they reconstruct the correct NAV. The greedy pair's
//! sender sits 10 m beyond its receiver, so between 45 m and 55 m the
//! victims hear the CTS but not the matching RTS and must fall back to
//! the 1500-byte MTU bound — the greedy receiver keeps a small edge
//! there, exactly as the paper observes at its 45 m transition. Past
//! 55 m the CTS is inaudible and only interference remains; past 99 m
//! the pairs are independent and goodput jumps.

use greedy80211::{GrcObserver, GreedyConfig, NavInflationConfig};
use net::NetworkBuilder;
use phy::{ChannelModel, PhyParams, Position};
use sim::SimDuration;

use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

const DISTANCES_M: &[f64] = &[10.0, 25.0, 40.0, 48.0, 54.0, 60.0, 80.0, 95.0, 105.0, 120.0];

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    NoGreedy,
    Greedy,
    GreedyWithGrc,
}

fn run_case(seed: u64, duration: SimDuration, d: f64, udp: bool, mode: Mode) -> Vec<f64> {
    let params = PhyParams::dot11b();
    let mut b = NetworkBuilder::new(params)
        .seed(seed)
        .channel(ChannelModel::grc_evaluation());
    let add = |b: &mut NetworkBuilder, pos: Position, grc: bool| {
        if grc {
            let (obs, _handles) = GrcObserver::new(params, true);
            b.add_node_with_observer(pos, obs)
        } else {
            b.add_node(pos)
        }
    };
    // The greedy receiver R2 fronts its pair at distance `d` from the
    // victims; its sender S2 sits 10 m further out, so for
    // d ∈ (45, 55] the victims hear R2's CTS but not S2's RTS and must
    // clamp by the MTU bound rather than the exact expected NAV.
    let grc = mode == Mode::GreedyWithGrc;
    let s1 = add(&mut b, Position::new(0.0, 0.0), grc);
    let r1 = add(&mut b, Position::new(1.0, 0.0), grc);
    let s2 = add(&mut b, Position::new(d + 10.0, 0.0), grc);
    let r2 = match mode {
        Mode::NoGreedy => b.add_node(Position::new(d, 0.0)),
        _ => b.add_node_with_policy(
            Position::new(d, 0.0),
            GreedyConfig::nav_inflation(NavInflationConfig::cts_only(31_000, 1.0)).into_policy(),
        ),
    };
    let (f1, f2) = if udp {
        (
            b.udp_flow(s1, r1, 1024, 10_000_000),
            b.udp_flow(s2, r2, 1024, 10_000_000),
        )
    } else {
        (
            b.tcp_flow(s1, r1, Default::default()),
            b.tcp_flow(s2, r2, Default::default()),
        )
    };
    let mut net = b.build();
    let m = net.run(duration);
    vec![m.goodput_mbps(f1), m.goodput_mbps(f2)]
}

/// Runs UDP and TCP sweeps over the pair separation.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig23",
        "Fig. 23: GRC vs inflated CTS NAV over pair separation (ranges 55/99 m, 802.11b)",
        &[
            "transport",
            "distance_m",
            "noGR_R1",
            "noGR_R2",
            "wGR_R1",
            "wGR_R2",
            "GRC_R1",
            "GRC_R2",
        ],
    );
    for udp in [true, false] {
        let name = if udp { "udp" } else { "tcp" };
        let label = format!("fig23/{name}");
        let rows = sweep(ctx, &label, DISTANCES_M, |&d, seed| {
            let mut row = run_case(seed, q.duration, d, udp, Mode::NoGreedy);
            row.extend(run_case(seed, q.duration, d, udp, Mode::Greedy));
            row.extend(run_case(seed, q.duration, d, udp, Mode::GreedyWithGrc));
            row
        });
        for (&d, vals) in DISTANCES_M.iter().zip(rows) {
            let mut row = vec![name.to_string(), format!("{d:.0}")];
            row.extend(vals.iter().map(|&v| mbps(v)));
            e.push_row(row);
        }
    }
    e
}
