//! Fig. 3 — Sending ratio between the greedy and normal pairs: measured
//! RTS counts against the analytical model (paper Equations 1–2), fed
//! with the empirical contention-window distributions from the same run.

use greedy80211::{model, NavInflationConfig, Run};

use crate::experiments::{nav_two_pair, UDP_NAV_SWEEP_US};
use crate::table::{ratio, Experiment};
use crate::{sweep, RunCtx};

/// Runs the sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig3",
        "Fig. 3: GS share of transmissions — simulation vs analytical model (UDP, 802.11b)",
        &["inflate_us", "measured_GS_share", "model_GS_share"],
    );
    let rows = sweep(ctx, "fig3", UDP_NAV_SWEEP_US, |&inflate, seed| {
        let s = nav_two_pair(true, NavInflationConfig::cts_only(inflate, 1.0), q, seed);
        let out = Run::plan(&s).execute().expect("valid scenario");
        let ns = &out.metrics.node(out.senders[0]).unwrap().counters;
        let gs = &out.metrics.node(out.senders[1]).unwrap().counters;
        let measured = {
            let total = (ns.rts_sent.get() + gs.rts_sent.get()) as f64;
            if total == 0.0 {
                0.5
            } else {
                gs.rts_sent.get() as f64 / total
            }
        };
        let v_slots = model::inflation_us_to_slots(inflate, 20);
        let predicted =
            model::nav_inflation_model(v_slots, &gs.cw_distribution(), &ns.cw_distribution())
                .greedy_share();
        vec![measured, predicted]
    });
    for (&inflate, vals) in UDP_NAV_SWEEP_US.iter().zip(rows) {
        e.push_row(vec![inflate.to_string(), ratio(vals[0]), ratio(vals[1])]);
    }
    e
}
