//! Fig. 21 — CDF of per-packet RSSI deviation from the link median on a
//! 16-node floor (synthetic testbed calibrated to the paper's ≈95 %
//! within 1 dB).

use greedy80211::{RssiStudy, RssiStudyConfig};
use sim::SimRng;

use crate::table::{ratio, Experiment};
use crate::RunCtx;

/// Generates the CDF.
///
/// Analytic-style study with a fixed internal seed (21): intentionally
/// not routed through the sweep runner.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig21",
        "Fig. 21: CDF of |RSSI − median RSSI| over all links (16-node synthetic floor)",
        &["deviation_db", "cdf"],
    );
    let cfg = RssiStudyConfig {
        samples_per_link: (q.samples / 1_000).clamp(50, 500) as usize,
        ..RssiStudyConfig::default()
    };
    let mut rng = SimRng::new(21);
    let study = RssiStudy::generate(&cfg, &mut rng);
    for x10 in 0..=30u32 {
        let x = x10 as f64 / 10.0;
        e.push_row(vec![format!("{x:.1}"), ratio(study.deviation_cdf(x))]);
    }
    e
}
