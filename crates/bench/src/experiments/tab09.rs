//! Table IX — Testbed-equivalent emulation of fake ACKs: one AP sends
//! UDP to two receivers and clamps its contention window to CWmin when
//! transmitting to the greedy one (the paper's hardware emulation),
//! over a lossy channel.

use net::NetworkBuilder;
use phy::{ErrorModel, ErrorUnit, PhyParams, Position};

use crate::experiments::fer_to_byte_rate;
use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

fn run_case(q: &Quality, seed: u64, emulate_fake: bool) -> Vec<f64> {
    let mut b = NetworkBuilder::new(PhyParams::dot11a())
        .seed(seed)
        .rts(false)
        .default_error(ErrorModel::new(ErrorUnit::Byte, fer_to_byte_rate(0.15)).expect("rate"));
    let ap = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(20.0, 0.0));
    let r2 = b.add_node(Position::new(20.0, 5.0));
    if emulate_fake {
        // Sender never backs off toward the greedy receiver — as if
        // every loss were masked by a fake ACK's successor traffic.
        b.set_cw_clamp(ap, vec![r2]);
    }
    let f1 = b.udp_flow(ap, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(ap, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(q.duration);
    vec![m.goodput_mbps(f1), m.goodput_mbps(f2)]
}

/// Runs baseline and emulated attack.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab9",
        "Table IX: testbed emulation of fake ACKs (UDP, shared AP, 802.11a, FER 15 %)",
        &["case", "R1(NR)_mbps", "R2(GR)_mbps"],
    );
    let rows = sweep(ctx, "tab9", &[()], |_, seed| {
        let mut row = run_case(q, seed, false);
        row.extend(run_case(q, seed, true));
        row
    });
    let vals = &rows[0];
    e.push_row(vec!["no_GR".into(), mbps(vals[0]), mbps(vals[1])]);
    e.push_row(vec!["emulated_GR".into(), mbps(vals[2]), mbps(vals[3])]);
    e
}
