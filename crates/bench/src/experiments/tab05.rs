//! Table V — Fake ACKs under inherent (noise) losses: a modest but
//! consistent gain for the faker; with two fakers both still improve
//! (backoff was pure waste against noise).

use greedy80211::{GreedyConfig, Run, Scenario, TransportKind};

use crate::experiments::fer_to_byte_rate;
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Frame error rates swept.
const FERS: &[f64] = &[0.2, 0.5, 0.8];

/// Runs the frame-error-rate grid.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab5",
        "Table V: UDP goodput under inherent losses with fake ACKs (802.11b)",
        &[
            "data_FER",
            "noGR_R1",
            "noGR_R2",
            "1GR_R1",
            "1GR_R2(GR)",
            "2GR_R1",
            "2GR_R2",
        ],
    );
    let rows = sweep(ctx, "tab5", FERS, |&fer, seed| {
        let base_scenario = || Scenario {
            transport: TransportKind::SATURATING_UDP,
            rts: false,
            byte_error_rate: fer_to_byte_rate(fer),
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        let no_gr = Run::plan(&base_scenario()).execute().expect("valid");
        let mut one = base_scenario();
        one.greedy = vec![(1, GreedyConfig::fake_acks(1.0))];
        let one = Run::plan(&one).execute().expect("valid");
        let mut two = base_scenario();
        two.greedy = vec![
            (0, GreedyConfig::fake_acks(1.0)),
            (1, GreedyConfig::fake_acks(1.0)),
        ];
        let two = Run::plan(&two).execute().expect("valid");
        vec![
            no_gr.goodput_mbps(0),
            no_gr.goodput_mbps(1),
            one.goodput_mbps(0),
            one.goodput_mbps(1),
            two.goodput_mbps(0),
            two.goodput_mbps(1),
        ]
    });
    for (&fer, vals) in FERS.iter().zip(rows) {
        let mut row = vec![format!("{fer}")];
        row.extend(vals.iter().map(|&v| mbps(v)));
        e.push_row(row);
    }
    e
}
