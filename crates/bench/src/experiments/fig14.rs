//! Fig. 14 — One spoofing receiver against a growing crowd of normal
//! pairs (TCP, BER 2e-4): shared AP vs one AP per pair. Head-of-line
//! blocking at a shared AP narrows the gap.

use greedy80211::{GreedyConfig, Run, Scenario};

use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

fn run_case(q: &Quality, seed: u64, pairs: usize, shared: bool) -> Vec<f64> {
    let greedy_idx = pairs - 1;
    let mut s = Scenario {
        pairs,
        shared_sender: shared,
        byte_error_rate: 2e-4,
        duration: q.duration,
        seed,
        ..Scenario::default()
    };
    let probe = Run::plan(&s).execute().expect("valid");
    let victims: Vec<_> = (0..pairs - 1).map(|i| probe.receivers[i]).collect();
    s.greedy = vec![(greedy_idx, GreedyConfig::ack_spoofing(victims, 1.0))];
    let out = Run::plan(&s).execute().expect("valid");
    let normals: Vec<f64> = (0..pairs - 1).map(|i| out.goodput_mbps(i)).collect();
    let avg_nr = normals.iter().sum::<f64>() / normals.len().max(1) as f64;
    vec![out.goodput_mbps(greedy_idx), avg_nr]
}

/// Runs both sub-figures over the pair count.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig14",
        "Fig. 14: one spoofing receiver vs N normal pairs (TCP, BER 2e-4, 802.11b)",
        &["topology", "normal_pairs", "GR_mbps", "avg_NR_mbps"],
    );
    for shared in [true, false] {
        let name = if shared { "one_AP" } else { "per_pair_APs" };
        let label = format!("fig14/{name}");
        let counts = [1usize, 2, 4, 7];
        let rows = sweep(ctx, &label, &counts, |&n, seed| {
            run_case(q, seed, n + 1, shared)
        });
        for (&n, vals) in counts.iter().zip(rows) {
            e.push_row(vec![
                name.into(),
                n.to_string(),
                mbps(vals[0]),
                mbps(vals[1]),
            ]);
        }
    }
    e
}
