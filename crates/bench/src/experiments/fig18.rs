//! Fig. 18 — Fake ACKs under hidden-terminal collisions: one faker
//! starves the honest flow; two fakers destroy each other (no backoff →
//! collision storm).

use greedy80211::GreedyConfig;
use net::NetworkBuilder;
use phy::{ChannelModel, PhyParams, PhyStandard, Position};
use sim::SimDuration;

use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Hidden-terminal outcome: `(R1 goodput, R2 goodput, S1 avg CW, S2 avg CW)`.
pub(crate) fn hidden_terminal(
    phy: PhyStandard,
    seed: u64,
    duration: SimDuration,
    greedy: &[usize],
    gp: f64,
) -> Vec<f64> {
    // Receivers adjacent in the middle, senders out of each other's
    // carrier-sense range (paper §V-C).
    let mut b = NetworkBuilder::new(PhyParams::for_standard(phy))
        .seed(seed)
        .rts(false)
        .channel(ChannelModel::with_ranges(60.0, 60.0));
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let s2 = b.add_node(Position::new(102.0, 0.0));
    let rx = |b: &mut NetworkBuilder, pos, is_greedy: bool| {
        if is_greedy {
            b.add_node_with_policy(pos, GreedyConfig::fake_acks(gp).into_policy())
        } else {
            b.add_node(pos)
        }
    };
    let r1 = rx(&mut b, Position::new(50.0, 0.0), greedy.contains(&0));
    let r2 = rx(&mut b, Position::new(52.0, 0.0), greedy.contains(&1));
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(duration);
    vec![
        m.goodput_mbps(f1),
        m.goodput_mbps(f2),
        m.node(s1).and_then(|n| n.avg_cw).unwrap_or(f64::NAN),
        m.node(s2).and_then(|n| n.avg_cw).unwrap_or(f64::NAN),
    ]
}

/// Runs the GP sweep for one and two fakers.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig18",
        "Fig. 18: fake ACKs under hidden-terminal collisions (UDP, 802.11b, no RTS)",
        &["num_greedy", "gp_pct", "R1_mbps", "R2_mbps"],
    );
    let grid: Vec<(&[usize], u32)> = [&[][..], &[1][..], &[0, 1][..]]
        .iter()
        .flat_map(|&greedy| [25u32, 50, 75, 100].iter().map(move |&gp| (greedy, gp)))
        .filter(|&(greedy, gp)| !(greedy.is_empty() && gp != 100))
        .collect();
    let rows = sweep(ctx, "fig18", &grid, |&(greedy, gp), seed| {
        hidden_terminal(
            PhyStandard::Dot11b,
            seed,
            q.duration,
            greedy,
            gp as f64 / 100.0,
        )
    });
    for (&(greedy, gp), vals) in grid.iter().zip(rows) {
        e.push_row(vec![
            greedy.len().to_string(),
            gp.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
