//! Fig. 7 — Varying the greedy percentage: inflating only a fraction of
//! CTS frames still pays handsomely (TCP, 802.11b).

use greedy80211::{NavInflationConfig, Run};

use crate::experiments::nav_two_pair;
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs the GP × inflation grid.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig7",
        "Fig. 7: TCP goodput vs greedy percentage for CTS-NAV inflation of 5/10/31 ms (802.11b)",
        &["gp_pct", "inflate_ms", "NR_mbps", "GR_mbps"],
    );
    let grid: Vec<(u32, u32)> = [5u32, 10, 31]
        .iter()
        .flat_map(|&ms| [0u32, 25, 50, 75, 100].iter().map(move |&gp| (ms, gp)))
        .collect();
    let rows = sweep(ctx, "fig7", &grid, |&(ms, gp), seed| {
        let nav = NavInflationConfig::cts_only(ms * 1_000, gp as f64 / 100.0);
        let s = nav_two_pair(false, nav, q, seed);
        let out = Run::plan(&s).execute().expect("valid scenario");
        vec![out.goodput_mbps(0), out.goodput_mbps(1)]
    });
    for (&(ms, gp), vals) in grid.iter().zip(rows) {
        e.push_row(vec![
            gp.to_string(),
            ms.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
