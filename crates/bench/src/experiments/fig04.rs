//! Fig. 4(a–d) — TCP goodput under NAV inflation on different frame
//! kinds (802.11b): CTS only, RTS+CTS, ACK only, and all frames.
//! RTS/DATA inflation rides the receiver's TCP-ACK transmissions.

use phy::PhyStandard;

use crate::experiments::nav_frames_experiment;
use crate::table::Experiment;
use crate::RunCtx;

/// Runs the four sub-figures on 802.11b.
pub fn run(ctx: &RunCtx) -> Experiment {
    nav_frames_experiment(
        "fig4",
        "Fig. 4: TCP goodput vs NAV inflation per inflated frame kind (802.11b)",
        PhyStandard::Dot11b,
        ctx,
    )
}
