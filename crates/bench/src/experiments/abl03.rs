//! Ablation 3 — the NAV guard's MTU assumption.
//!
//! When a GRC node hears only the greedy receiver's CTS (not the
//! matching RTS), it clamps the NAV to the worst-case exchange for an
//! assumed MTU. The paper argues 1500 B (Internet traffic); the 802.11
//! maximum MSDU would be 2304 B. The looser the bound, the more
//! residual over-reservation the greedy receiver keeps in the
//! 45–55 m band of the Fig. 23 topology where only the CTS is heard.

use greedy80211::{GrcObserver, GreedyConfig, NavInflationConfig};
use net::NetworkBuilder;
use phy::{ChannelModel, PhyParams, Position};

use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

fn run_case(q: &Quality, seed: u64, mtu: usize) -> Vec<f64> {
    // Fig. 23 geometry pinned at d = 48 m: victims hear R2's CTS but
    // not S2's RTS → the MTU bound is the only defence.
    let d = 48.0;
    let params = PhyParams::dot11b();
    let mut b = NetworkBuilder::new(params)
        .seed(seed)
        .channel(ChannelModel::grc_evaluation());
    let add_grc = |b: &mut NetworkBuilder, pos: Position| {
        let (obs, _h) = GrcObserver::with_nav_mtu(params, true, mtu);
        b.add_node_with_observer(pos, obs)
    };
    let s1 = add_grc(&mut b, Position::new(0.0, 0.0));
    let r1 = add_grc(&mut b, Position::new(1.0, 0.0));
    let s2 = add_grc(&mut b, Position::new(d + 10.0, 0.0));
    let r2 = b.add_node_with_policy(
        Position::new(d, 0.0),
        GreedyConfig::nav_inflation(NavInflationConfig::cts_only(31_000, 1.0)).into_policy(),
    );
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let f2 = b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(q.duration);
    vec![m.goodput_mbps(f1), m.goodput_mbps(f2)]
}

/// Assumed MTUs swept: 1060 ≈ the true packet size (tight bound),
/// 1500 = paper's choice, 2304 = 802.11 maximum MSDU (loosest sound bound).
const MTUS: &[usize] = &[1060, 1500, 2304];

/// Runs the MTU-assumption sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "abl3",
        "Ablation: NAV-guard MTU assumption in the CTS-only band (Fig. 23 topology, d = 48 m)",
        &["assumed_mtu", "victim_mbps", "GR_mbps"],
    );
    let rows = sweep(ctx, "abl3", MTUS, |&mtu, seed| run_case(q, seed, mtu));
    for (&mtu, vals) in MTUS.iter().zip(rows) {
        e.push_row(vec![mtu.to_string(), mbps(vals[0]), mbps(vals[1])]);
    }
    e
}
