//! Fig. 8 — Zero, one or two greedy receivers among two TCP pairs.
//! With both greedy, whoever grabs the medium first keeps it.

use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario};

use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs the grid.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig8",
        "Fig. 8: goodput under 0/1/2 greedy receivers, CTS NAV +5/10/31 ms (TCP, 802.11b)",
        &["inflate_ms", "num_greedy", "R1_mbps", "R2_mbps"],
    );
    let grid: Vec<(u32, usize)> = [5u32, 10, 31]
        .iter()
        .flat_map(|&ms| (0..=2usize).map(move |n| (ms, n)))
        .collect();
    let rows = sweep(ctx, "fig8", &grid, |&(ms, num_greedy), seed| {
        let mut s = Scenario {
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        let cfg = || GreedyConfig::nav_inflation(NavInflationConfig::cts_only(ms * 1_000, 1.0));
        s.greedy = match num_greedy {
            0 => vec![],
            1 => vec![(1, cfg())],
            _ => vec![(0, cfg()), (1, cfg())],
        };
        let out = Run::plan(&s).execute().expect("valid scenario");
        vec![out.goodput_mbps(0), out.goodput_mbps(1)]
    });
    for (&(ms, num_greedy), vals) in grid.iter().zip(rows) {
        e.push_row(vec![
            ms.to_string(),
            num_greedy.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
