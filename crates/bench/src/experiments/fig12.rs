//! Fig. 12 — ACK spoofing: greedy percentage × loss rate grid (TCP,
//! 802.11b). More spoofing means more goodput at every loss rate.

use phy::PhyStandard;

use crate::experiments::fig11::spoof_pair;
use crate::table::{mbps, Experiment};
use crate::Quality;

/// Runs the GP × BER grid.
pub fn run(q: &Quality) -> Experiment {
    let mut e = Experiment::new(
        "fig12",
        "Fig. 12: TCP goodput vs spoofing greedy percentage across loss rates (802.11b)",
        &["BER", "gp_pct", "NR_mbps", "GR_mbps"],
    );
    for &ber in &[2e-5, 2e-4, 8e-4] {
        for &gp in &[0u32, 20, 50, 80, 100] {
            let vals = q.median_vec_over_seeds(|seed| {
                let out = spoof_pair(q, seed, PhyStandard::Dot11b, ber, gp as f64 / 100.0);
                vec![out.goodput_mbps(0), out.goodput_mbps(1)]
            });
            e.push_row(vec![
                format!("{ber:.0e}"),
                gp.to_string(),
                mbps(vals[0]),
                mbps(vals[1]),
            ]);
        }
    }
    e
}
