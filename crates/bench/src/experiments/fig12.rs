//! Fig. 12 — ACK spoofing: greedy percentage × loss rate grid (TCP,
//! 802.11b). More spoofing means more goodput at every loss rate.

use phy::PhyStandard;

use crate::experiments::fig11::spoof_pair;
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs the GP × BER grid.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig12",
        "Fig. 12: TCP goodput vs spoofing greedy percentage across loss rates (802.11b)",
        &["BER", "gp_pct", "NR_mbps", "GR_mbps"],
    );
    let grid: Vec<(f64, u32)> = [2e-5, 2e-4, 8e-4]
        .iter()
        .flat_map(|&ber| [0u32, 20, 50, 80, 100].iter().map(move |&gp| (ber, gp)))
        .collect();
    let rows = sweep(ctx, "fig12", &grid, |&(ber, gp), seed| {
        let out = spoof_pair(q, seed, PhyStandard::Dot11b, ber, gp as f64 / 100.0);
        vec![out.goodput_mbps(0), out.goodput_mbps(1)]
    });
    for (&(ber, gp), vals) in grid.iter().zip(rows) {
        e.push_row(vec![
            format!("{ber:.0e}"),
            gp.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
