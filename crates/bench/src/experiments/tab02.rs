//! Table II — Average TCP congestion window under CTS-NAV inflation,
//! one shared sender vs two independent senders.

use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario};

use crate::table::Experiment;
use crate::{sweep, RunCtx};

fn avg_cwnd(out: &greedy80211::RunOutcome, i: usize) -> f64 {
    out.metrics
        .flow(out.flows[i])
        .and_then(|f| f.avg_cwnd)
        .unwrap_or(f64::NAN)
}

/// Inflation amounts swept, in ms.
const INFLATE_MS: &[u32] = &[0, 1, 2, 5, 10, 20, 31];

/// Runs both columns of the table.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab2",
        "Table II: average TCP congestion window vs CTS-NAV inflation (802.11b)",
        &["inflate_ms", "S-NR", "S-GR", "NS-NR", "GS-GR"],
    );
    let rows = sweep(ctx, "tab2", INFLATE_MS, |&ms, seed| {
        let greedy = |s: &mut Scenario| {
            if ms > 0 {
                s.greedy = vec![(
                    1,
                    GreedyConfig::nav_inflation(NavInflationConfig::cts_only(ms * 1_000, 1.0)),
                )];
            }
        };
        // One shared sender.
        let mut one = Scenario {
            shared_sender: true,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        greedy(&mut one);
        let one = Run::plan(&one).execute().expect("valid");
        // Two senders.
        let mut two = Scenario {
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        greedy(&mut two);
        let two = Run::plan(&two).execute().expect("valid");
        vec![
            avg_cwnd(&one, 0),
            avg_cwnd(&one, 1),
            avg_cwnd(&two, 0),
            avg_cwnd(&two, 1),
        ]
    });
    for (&ms, vals) in INFLATE_MS.iter().zip(rows) {
        e.push_row(vec![
            ms.to_string(),
            format!("{:.3}", vals[0]),
            format!("{:.3}", vals[1]),
            format!("{:.3}", vals[2]),
            format!("{:.3}", vals[3]),
        ]);
    }
    e
}
