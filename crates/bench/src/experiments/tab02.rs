//! Table II — Average TCP congestion window under CTS-NAV inflation,
//! one shared sender vs two independent senders.

use greedy80211::{GreedyConfig, NavInflationConfig, Scenario};

use crate::table::Experiment;
use crate::Quality;

fn avg_cwnd(out: &greedy80211::ScenarioOutcome, i: usize) -> f64 {
    out.metrics
        .flow(out.flows[i])
        .and_then(|f| f.avg_cwnd)
        .unwrap_or(f64::NAN)
}

/// Runs both columns of the table.
pub fn run(q: &Quality) -> Experiment {
    let mut e = Experiment::new(
        "tab2",
        "Table II: average TCP congestion window vs CTS-NAV inflation (802.11b)",
        &["inflate_ms", "S-NR", "S-GR", "NS-NR", "GS-GR"],
    );
    for &ms in &[0u32, 1, 2, 5, 10, 20, 31] {
        let vals = q.median_vec_over_seeds(|seed| {
            let greedy = |s: &mut Scenario| {
                if ms > 0 {
                    s.greedy = vec![(
                        1,
                        GreedyConfig::nav_inflation(NavInflationConfig::cts_only(
                            ms * 1_000,
                            1.0,
                        )),
                    )];
                }
            };
            // One shared sender.
            let mut one = Scenario {
                shared_sender: true,
                duration: q.duration,
                seed,
                ..Scenario::default()
            };
            greedy(&mut one);
            let one = one.run().expect("valid");
            // Two senders.
            let mut two = Scenario {
                duration: q.duration,
                seed,
                ..Scenario::default()
            };
            greedy(&mut two);
            let two = two.run().expect("valid");
            vec![
                avg_cwnd(&one, 0),
                avg_cwnd(&one, 1),
                avg_cwnd(&two, 0),
                avg_cwnd(&two, 1),
            ]
        });
        e.push_row(vec![
            ms.to_string(),
            format!("{:.3}", vals[0]),
            format!("{:.3}", vals[1]),
            format!("{:.3}", vals[2]),
            format!("{:.3}", vals[3]),
        ]);
    }
    e
}
