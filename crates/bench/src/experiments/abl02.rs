//! Ablation 2 — the capture threshold and ACK spoofing.
//!
//! The paper sidesteps the jamming case of misbehavior 2 by arranging
//! capture between overlapping genuine and spoofed ACKs. This ablation
//! sweeps the capture threshold: with our 25 m attacker/victim offset
//! (≈10.6 dB power gap at the sender), thresholds at or below ~10 dB
//! preserve the paper's no-jamming regime, while larger thresholds turn
//! every overlap into a collision — the spoofer then additionally jams
//! the victim's genuine ACKs, and the victim does even worse.

use greedy80211::{GreedyConfig, Run, Scenario};

use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

fn spoof_with_threshold(q: &Quality, seed: u64, threshold_db: f64) -> Vec<f64> {
    // Scenario drives placement; we rebuild with a custom capture model
    // via the underlying builder by cloning the standard topology.
    let mut s = Scenario {
        byte_error_rate: 2e-4,
        duration: q.duration,
        seed,
        ..Scenario::default()
    };
    let probe = Run::plan(&s).execute().expect("valid");
    s.greedy = vec![(1, GreedyConfig::ack_spoofing(vec![probe.receivers[0]], 1.0))];
    s.capture_threshold_db = Some(threshold_db);
    let out = Run::plan(&s).execute().expect("valid");
    vec![out.goodput_mbps(0), out.goodput_mbps(1)]
}

/// Capture thresholds swept, in dB.
const THRESHOLDS_DB: &[f64] = &[0.0, 5.0, 10.0, 15.0, 25.0];

/// Runs the threshold sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "abl2",
        "Ablation: capture threshold vs ACK-spoofing outcome (TCP, BER 2e-4)",
        &["capture_threshold_db", "NR_mbps", "GR_mbps"],
    );
    let rows = sweep(ctx, "abl2", THRESHOLDS_DB, |&thr, seed| {
        spoof_with_threshold(q, seed, thr)
    });
    for (&thr, vals) in THRESHOLDS_DB.iter().zip(rows) {
        e.push_row(vec![format!("{thr}"), mbps(vals[0]), mbps(vals[1])]);
    }
    e
}
