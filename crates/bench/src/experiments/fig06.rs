//! Fig. 6 — Eight TCP flows, one greedy receiver sweeping its CTS-NAV
//! inflation. ~10 ms suffices to dominate the cell.

use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario};

use crate::experiments::TCP_NAV_SWEEP_MS;
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

const PAIRS: usize = 8;
const GREEDY: usize = 7;

/// Runs the sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig6",
        "Fig. 6: 8 TCP flows, one greedy receiver inflating CTS NAV (802.11b)",
        &["inflate_ms", "GR_mbps", "avg_NR_mbps", "min_NR_mbps"],
    );
    let rows = sweep(ctx, "fig6", TCP_NAV_SWEEP_MS, |&ms, seed| {
        let mut s = Scenario {
            pairs: PAIRS,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        if ms > 0 {
            s.greedy = vec![(
                GREEDY,
                GreedyConfig::nav_inflation(NavInflationConfig::cts_only(ms * 1_000, 1.0)),
            )];
        }
        let out = Run::plan(&s).execute().expect("valid scenario");
        let normals: Vec<f64> = (0..PAIRS)
            .filter(|&i| i != GREEDY)
            .map(|i| out.goodput_mbps(i))
            .collect();
        vec![
            out.goodput_mbps(GREEDY),
            normals.iter().sum::<f64>() / normals.len() as f64,
            normals.iter().cloned().fold(f64::INFINITY, f64::min),
        ]
    });
    for (&ms, vals) in TCP_NAV_SWEEP_MS.iter().zip(rows) {
        e.push_row(vec![
            ms.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
            mbps(vals[2]),
        ]);
    }
    e
}
