//! Table IV — Contention window of the normal and greedy senders under
//! hidden-terminal fake ACKs, GP 100 %, for 802.11b and 802.11a.
//! Faking pins the greedy sender's CW near CWmin while the honest
//! sender's CW soars.

use phy::PhyStandard;

use crate::experiments::fig18::hidden_terminal;
use crate::table::Experiment;
use crate::{sweep, RunCtx};

/// Runs the three configurations on both PHYs.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab4",
        "Table IV: sender contention windows under hidden-terminal fake ACKs (GP 100 %)",
        &["phy", "config", "S1_avg_cw", "S2_avg_cw"],
    );
    let configs = [
        ("no_GR", &[][..]),
        ("R2_GR", &[1][..]),
        ("both_GR", &[0, 1][..]),
    ];
    for phy in [PhyStandard::Dot11b, PhyStandard::Dot11a] {
        let label = format!("tab4/{phy}");
        let rows = sweep(ctx, &label, &configs, |&(_, greedy), seed| {
            hidden_terminal(phy, seed, q.duration, greedy, 1.0)
        });
        for (&(name, _), vals) in configs.iter().zip(rows) {
            e.push_row(vec![
                phy.to_string(),
                name.into(),
                format!("{:.1}", vals[2]),
                format!("{:.1}", vals[3]),
            ]);
        }
    }
    e
}
