//! Table IV — Contention window of the normal and greedy senders under
//! hidden-terminal fake ACKs, GP 100 %, for 802.11b and 802.11a.
//! Faking pins the greedy sender's CW near CWmin while the honest
//! sender's CW soars.

use phy::PhyStandard;

use crate::experiments::fig18::hidden_terminal;
use crate::table::Experiment;
use crate::Quality;

/// Runs the three configurations on both PHYs.
pub fn run(q: &Quality) -> Experiment {
    let mut e = Experiment::new(
        "tab4",
        "Table IV: sender contention windows under hidden-terminal fake ACKs (GP 100 %)",
        &["phy", "config", "S1_avg_cw", "S2_avg_cw"],
    );
    for phy in [PhyStandard::Dot11b, PhyStandard::Dot11a] {
        for (name, greedy) in [
            ("no_GR", &[][..]),
            ("R2_GR", &[1][..]),
            ("both_GR", &[0, 1][..]),
        ] {
            let vals = q.median_vec_over_seeds(|seed| {
                hidden_terminal(phy, seed, q.duration, greedy, 1.0)
            });
            e.push_row(vec![
                phy.to_string(),
                name.into(),
                format!("{:.1}", vals[2]),
                format!("{:.1}", vals[3]),
            ]);
        }
    }
    e
}
