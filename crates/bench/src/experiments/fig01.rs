//! Fig. 1 — Goodput of two UDP flows where the greedy receiver inflates
//! its CTS NAV (802.11b). Even a sub-millisecond inflation starves the
//! competing flow completely.

use greedy80211::{NavInflationConfig, Run};

use crate::experiments::{nav_two_pair, UDP_NAV_SWEEP_US};
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs the sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig1",
        "Fig. 1: UDP goodput vs CTS-NAV inflation (802.11b)",
        &["inflate_us", "NR_mbps", "GR_mbps"],
    );
    let rows = sweep(ctx, "fig1", UDP_NAV_SWEEP_US, |&inflate, seed| {
        let s = nav_two_pair(true, NavInflationConfig::cts_only(inflate, 1.0), q, seed);
        let out = Run::plan(&s).execute().expect("valid scenario");
        vec![out.goodput_mbps(0), out.goodput_mbps(1)]
    });
    for (&inflate, vals) in UDP_NAV_SWEEP_US.iter().zip(rows) {
        e.push_row(vec![inflate.to_string(), mbps(vals[0]), mbps(vals[1])]);
    }
    e
}
