//! Fig. 1 — Goodput of two UDP flows where the greedy receiver inflates
//! its CTS NAV (802.11b). Even a sub-millisecond inflation starves the
//! competing flow completely.

use greedy80211::NavInflationConfig;

use crate::experiments::{nav_two_pair, UDP_NAV_SWEEP_US};
use crate::table::{mbps, Experiment};
use crate::Quality;

/// Runs the sweep.
pub fn run(q: &Quality) -> Experiment {
    let mut e = Experiment::new(
        "fig1",
        "Fig. 1: UDP goodput vs CTS-NAV inflation (802.11b)",
        &["inflate_us", "NR_mbps", "GR_mbps"],
    );
    for &inflate in UDP_NAV_SWEEP_US {
        let vals = q.median_vec_over_seeds(|seed| {
            let s = nav_two_pair(true, NavInflationConfig::cts_only(inflate, 1.0), q, seed);
            let out = s.run().expect("valid scenario");
            vec![out.goodput_mbps(0), out.goodput_mbps(1)]
        });
        e.push_row(vec![inflate.to_string(), mbps(vals[0]), mbps(vals[1])]);
    }
    e
}
