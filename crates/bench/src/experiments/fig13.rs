//! Fig. 13 — Zero, one or two spoofing receivers (TCP, BER 2e-4).
//! With mutual spoofing both flows disable each other's MAC recovery
//! and total goodput collapses as GP grows.

use greedy80211::{GreedyConfig, Run, Scenario};

use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs the grid.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig13",
        "Fig. 13: goodput under 0/1/2 spoofing receivers (TCP, BER 2e-4, 802.11b)",
        &["num_greedy", "gp_pct", "R1_mbps", "R2_mbps", "total_mbps"],
    );
    let grid: Vec<(usize, u32)> = (0..=2usize)
        .flat_map(|n| [20u32, 50, 100].iter().map(move |&gp| (n, gp)))
        // baseline is GP-independent
        .filter(|&(n, gp)| !(n == 0 && gp != 100))
        .collect();
    let rows = sweep(ctx, "fig13", &grid, |&(num_greedy, gp), seed| {
        let mut s = Scenario {
            byte_error_rate: 2e-4,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        let probe = Run::plan(&s).execute().expect("valid");
        let (r0, r1) = (probe.receivers[0], probe.receivers[1]);
        let gpf = gp as f64 / 100.0;
        s.greedy = match num_greedy {
            0 => vec![],
            1 => vec![(1, GreedyConfig::ack_spoofing(vec![r0], gpf))],
            _ => vec![
                (0, GreedyConfig::ack_spoofing(vec![r1], gpf)),
                (1, GreedyConfig::ack_spoofing(vec![r0], gpf)),
            ],
        };
        let out = Run::plan(&s).execute().expect("valid");
        let (a, b) = (out.goodput_mbps(0), out.goodput_mbps(1));
        vec![a, b, a + b]
    });
    for (&(num_greedy, gp), vals) in grid.iter().zip(rows) {
        e.push_row(vec![
            num_greedy.to_string(),
            gp.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
            mbps(vals[2]),
        ]);
    }
    e
}
