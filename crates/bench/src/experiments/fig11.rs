//! Fig. 11 — ACK spoofing under TCP: goodput vs bit error rate for
//! 802.11b and 802.11a. The greedy gain peaks at moderate loss: too
//! little loss gives nothing to disable, too much loss hurts the greedy
//! flow itself.

use greedy80211::{GreedyConfig, Run, Scenario};
use phy::PhyStandard;

use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

/// BER values swept (paper Table III's grid, plus clean).
pub(crate) const BER_SWEEP: &[f64] = &[0.0, 1e-5, 1e-4, 2e-4, 3.2e-4, 4.4e-4, 8e-4];

pub(crate) fn spoof_pair(
    q: &Quality,
    seed: u64,
    phy: PhyStandard,
    ber: f64,
    gp: f64,
) -> greedy80211::RunOutcome {
    let mut s = Scenario {
        phy,
        byte_error_rate: ber,
        duration: q.duration,
        seed,
        ..Scenario::default()
    };
    let base = Run::plan(&s).execute().expect("valid");
    if gp > 0.0 {
        s.greedy = vec![(1, GreedyConfig::ack_spoofing(vec![base.receivers[0]], gp))];
        Run::plan(&s).execute().expect("valid")
    } else {
        base
    }
}

/// Runs both PHYs over the BER sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig11",
        "Fig. 11: TCP goodput vs BER, R2 spoofs MAC ACKs for R1",
        &["phy", "BER", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR"],
    );
    for phy in [PhyStandard::Dot11b, PhyStandard::Dot11a] {
        let label = format!("fig11/{phy}");
        let rows = sweep(ctx, &label, BER_SWEEP, |&ber, seed| {
            let base = spoof_pair(q, seed, phy, ber, 0.0);
            let attacked = spoof_pair(q, seed, phy, ber, 1.0);
            vec![
                base.goodput_mbps(0),
                base.goodput_mbps(1),
                attacked.goodput_mbps(0),
                attacked.goodput_mbps(1),
            ]
        });
        for (&ber, vals) in BER_SWEEP.iter().zip(rows) {
            e.push_row(vec![
                phy.to_string(),
                format!("{ber:.1e}"),
                mbps(vals[0]),
                mbps(vals[1]),
                mbps(vals[2]),
                mbps(vals[3]),
            ]);
        }
    }
    e
}
