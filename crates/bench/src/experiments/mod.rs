//! One module per regenerated paper artifact.
//!
//! Naming: `figNN`/`tabNN` mirrors the paper's numbering. Every module
//! exposes `run(&RunCtx) -> Experiment`; sweeps inside each generator
//! are submitted to the context's runner and execute in parallel when
//! the campaign was launched with `--jobs N`. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured notes.

pub mod abl01;
pub mod abl02;
pub mod abl03;
pub mod ext01;
pub mod ext02;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod tab01;
pub mod tab02;
pub mod tab03;
pub mod tab04;
pub mod tab05;
pub mod tab06;
pub mod tab07;
pub mod tab08;
pub mod tab09;

use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario};

use crate::Quality;

/// NAV-inflation sweep values used by the UDP figures, in µs
/// (the paper sweeps α·100 µs up to the 32 767 µs maximum).
pub(crate) const UDP_NAV_SWEEP_US: &[u32] = &[
    0, 100, 200, 400, 600, 1_000, 2_000, 5_000, 10_000, 20_000, 31_000,
];

/// NAV-inflation sweep values used by the TCP figures, in ms.
pub(crate) const TCP_NAV_SWEEP_MS: &[u32] = &[0, 1, 2, 5, 10, 20, 31];

/// Builds the standard 2-pair scenario with receiver 1 greedy
/// (NAV-inflating) and the given transport, seeded and sized by `q`.
pub(crate) fn nav_two_pair(udp: bool, nav: NavInflationConfig, q: &Quality, seed: u64) -> Scenario {
    let mut s = if udp {
        Scenario::two_pair_udp(GreedyConfig::nav_inflation(nav))
    } else {
        Scenario::two_pair_tcp(GreedyConfig::nav_inflation(nav))
    };
    s.duration = q.duration;
    s.seed = seed;
    s
}

/// Converts a target data-frame error rate into the per-byte error rate
/// of our corruption process (1104-byte data frame incl. PLCP).
pub(crate) fn fer_to_byte_rate(fer: f64) -> f64 {
    1.0 - (1.0 - fer).powf(1.0 / 1104.0)
}

/// Shared driver for Figs. 4 and 5: sweep NAV inflation over the four
/// inflated-frame variants under TCP. Each variant is its own labelled
/// sweep so the derived RNG streams never alias between variants.
pub(crate) fn nav_frames_experiment(
    id: &'static str,
    title: &str,
    phy: phy::PhyStandard,
    ctx: &crate::RunCtx,
) -> crate::table::Experiment {
    use crate::table::{mbps, Experiment};
    use greedy80211::InflatedFrames;

    let q = &ctx.quality;
    let variants: [(&str, InflatedFrames); 4] = [
        ("cts", InflatedFrames::CTS),
        ("rts+cts", InflatedFrames::RTS_CTS),
        ("ack", InflatedFrames::ACK),
        ("all", InflatedFrames::ALL),
    ];
    let mut e = Experiment::new(id, title, &["frames", "inflate_ms", "NR_mbps", "GR_mbps"]);
    for (name, frames) in variants {
        let label = format!("{id}/{name}");
        let rows = crate::sweep(ctx, &label, TCP_NAV_SWEEP_MS, |&ms, seed| {
            let nav = NavInflationConfig {
                inflate_us: ms * 1_000,
                gp: 1.0,
                frames,
            };
            let mut s = nav_two_pair(false, nav, q, seed);
            s.phy = phy;
            let out = Run::plan(&s).execute().expect("valid scenario");
            vec![out.goodput_mbps(0), out.goodput_mbps(1)]
        });
        for (&ms, vals) in TCP_NAV_SWEEP_MS.iter().zip(rows) {
            e.push_row(vec![
                name.to_string(),
                ms.to_string(),
                mbps(vals[0]),
                mbps(vals[1]),
            ]);
        }
    }
    e
}
