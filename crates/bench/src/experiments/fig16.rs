//! Fig. 16 — Remote senders: greedy percentage × wired latency grid.
//! Around 200 ms even spoofing a fifth of the sniffed frames pays off
//! dramatically.

use crate::experiments::fig15::remote_pair;
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs the grid.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig16",
        "Fig. 16: remote TCP senders — spoofing GP vs wired latency (BER 2e-5)",
        &["wire_ms", "gp_pct", "NR_mbps", "GR_mbps"],
    );
    let grid: Vec<(u64, u32)> = [2u64, 50, 100, 200, 400]
        .iter()
        .flat_map(|&ms| [0u32, 20, 50, 100].iter().map(move |&gp| (ms, gp)))
        .collect();
    let rows = sweep(ctx, "fig16", &grid, |&(wire_ms, gp), seed| {
        let out = remote_pair(q, seed, wire_ms, gp as f64 / 100.0);
        vec![out.goodput_mbps(0), out.goodput_mbps(1)]
    });
    for (&(wire_ms, gp), vals) in grid.iter().zip(rows) {
        e.push_row(vec![
            wire_ms.to_string(),
            gp.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
