//! Fig. 17 — ACK spoofing against UDP traffic: one AP sending CBR to
//! two receivers. Disabling the victim's MAC retransmissions shifts
//! service time toward the greedy receiver, though less dramatically
//! than under TCP (no congestion-control amplification).

use greedy80211::{GreedyConfig, Run, Scenario, TransportKind};

use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// BER values swept.
const BERS: &[f64] = &[1e-5, 1e-4, 2e-4, 4.4e-4, 8e-4];

/// Runs the loss sweep.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig17",
        "Fig. 17: UDP goodput vs loss rate, shared AP, R2 spoofs for R1 (802.11b)",
        &["BER", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR"],
    );
    let rows = sweep(ctx, "fig17", BERS, |&ber, seed| {
        let mut s = Scenario {
            shared_sender: true,
            transport: TransportKind::SATURATING_UDP,
            byte_error_rate: ber,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        let base = Run::plan(&s).execute().expect("valid");
        s.greedy = vec![(1, GreedyConfig::ack_spoofing(vec![base.receivers[0]], 1.0))];
        let out = Run::plan(&s).execute().expect("valid");
        vec![
            base.goodput_mbps(0),
            base.goodput_mbps(1),
            out.goodput_mbps(0),
            out.goodput_mbps(1),
        ]
    });
    for (&ber, vals) in BERS.iter().zip(rows) {
        e.push_row(vec![
            format!("{ber:.1e}"),
            mbps(vals[0]),
            mbps(vals[1]),
            mbps(vals[2]),
            mbps(vals[3]),
        ]);
    }
    e
}
