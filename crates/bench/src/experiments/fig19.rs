//! Fig. 19 — One fake-ACKing receiver against a growing number of
//! normal pairs, at two loss rates. The absolute gap shrinks with more
//! competitors (per-flow goodput falls) but the *relative* advantage
//! persists.

use greedy80211::{GreedyConfig, Run, Scenario, TransportKind};

use crate::experiments::fer_to_byte_rate;
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs the pairs × loss grid.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig19",
        "Fig. 19: one fake-ACK receiver vs N normal pairs under inherent loss (UDP, 802.11b)",
        &["data_FER", "normal_pairs", "GR_mbps", "avg_NR_mbps"],
    );
    let grid: Vec<(f64, usize)> = [0.2, 0.5]
        .iter()
        .flat_map(|&fer| [1usize, 2, 4, 6].iter().map(move |&n| (fer, n)))
        .collect();
    let rows = sweep(ctx, "fig19", &grid, |&(fer, n), seed| {
        let pairs = n + 1;
        let mut s = Scenario {
            pairs,
            transport: TransportKind::SATURATING_UDP,
            rts: false,
            byte_error_rate: fer_to_byte_rate(fer),
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        s.greedy = vec![(pairs - 1, GreedyConfig::fake_acks(1.0))];
        let out = Run::plan(&s).execute().expect("valid");
        let normals: Vec<f64> = (0..n).map(|i| out.goodput_mbps(i)).collect();
        vec![
            out.goodput_mbps(pairs - 1),
            normals.iter().sum::<f64>() / n as f64,
        ]
    });
    for (&(fer, n), vals) in grid.iter().zip(rows) {
        e.push_row(vec![
            format!("{fer}"),
            n.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
