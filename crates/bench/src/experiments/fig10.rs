//! Fig. 10(a–c) — One sender serving multiple receivers: head-of-line
//! blocking at the shared AP softens (but does not remove) the NAV
//! inflation gain; under UDP both receivers lose.

use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario, TransportKind};

use crate::experiments::TCP_NAV_SWEEP_MS;
use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

fn shared(q: &Quality, seed: u64, pairs: usize, udp: bool, inflate_ms: u32) -> Scenario {
    let mut s = Scenario {
        pairs,
        shared_sender: true,
        duration: q.duration,
        seed,
        ..Scenario::default()
    };
    if udp {
        s.transport = TransportKind::SATURATING_UDP;
    }
    if inflate_ms > 0 {
        s.greedy = vec![(
            pairs - 1,
            GreedyConfig::nav_inflation(NavInflationConfig::cts_only(inflate_ms * 1_000, 1.0)),
        )];
    }
    s
}

/// Runs all three sub-figures.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig10",
        "Fig. 10: one sender, multiple receivers, last receiver inflates CTS NAV (802.11b)",
        &["variant", "inflate_ms", "NR_mbps", "GR_mbps"],
    );
    // (a) TCP, 2 receivers.
    let rows = sweep(ctx, "fig10/tcp_2rx", TCP_NAV_SWEEP_MS, |&ms, seed| {
        let out = Run::plan(&shared(q, seed, 2, false, ms))
            .execute()
            .expect("valid");
        vec![out.goodput_mbps(0), out.goodput_mbps(1)]
    });
    for (&ms, vals) in TCP_NAV_SWEEP_MS.iter().zip(rows) {
        e.push_row(vec![
            "tcp_2rx".into(),
            ms.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    // (b) TCP, 8 receivers (7 normal + 1 greedy); NR column is the
    // average of the seven normal receivers.
    let rows = sweep(ctx, "fig10/tcp_8rx", TCP_NAV_SWEEP_MS, |&ms, seed| {
        let out = Run::plan(&shared(q, seed, 8, false, ms))
            .execute()
            .expect("valid");
        let avg_nr = (0..7).map(|i| out.goodput_mbps(i)).sum::<f64>() / 7.0;
        vec![avg_nr, out.goodput_mbps(7)]
    });
    for (&ms, vals) in TCP_NAV_SWEEP_MS.iter().zip(rows) {
        e.push_row(vec![
            "tcp_8rx".into(),
            ms.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    // (c) UDP, 2 receivers: both flows suffer together.
    let rows = sweep(ctx, "fig10/udp_2rx", TCP_NAV_SWEEP_MS, |&ms, seed| {
        let out = Run::plan(&shared(q, seed, 2, true, ms))
            .execute()
            .expect("valid");
        vec![out.goodput_mbps(0), out.goodput_mbps(1)]
    });
    for (&ms, vals) in TCP_NAV_SWEEP_MS.iter().zip(rows) {
        e.push_row(vec![
            "udp_2rx".into(),
            ms.to_string(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
