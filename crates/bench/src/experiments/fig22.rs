//! Fig. 22 — False positives and false negatives of the RSSI-threshold
//! spoof detector as the threshold sweeps 0–5 dB. Around 1 dB both are
//! low, which is the paper's recommended operating point.

use greedy80211::{RssiStudy, RssiStudyConfig};
use sim::SimRng;

use crate::table::{ratio, Experiment};
use crate::RunCtx;

/// Generates the FP/FN curves.
///
/// Analytic-style study with a fixed internal seed (22): intentionally
/// not routed through the sweep runner.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig22",
        "Fig. 22: spoof-detector false positive / false negative vs RSSI threshold",
        &["threshold_db", "false_positive", "false_negative"],
    );
    let cfg = RssiStudyConfig {
        samples_per_link: (q.samples / 1_000).clamp(50, 500) as usize,
        ..RssiStudyConfig::default()
    };
    let mut rng = SimRng::new(22);
    let study = RssiStudy::generate(&cfg, &mut rng);
    for t10 in 0..=50u32 {
        if t10 % 2 != 0 {
            continue;
        }
        let t = t10 as f64 / 10.0;
        let (fp, fn_) = study.detector_accuracy(t);
        e.push_row(vec![format!("{t:.1}"), ratio(fp), ratio(fn_)]);
    }
    e
}
