//! Table VIII — Testbed-equivalent emulation of ACK spoofing: one AP
//! sends TCP to two receivers and disables MAC retransmissions toward
//! the normal one (exactly the paper's hardware emulation), over a lossy
//! channel. The victim's losses go straight to TCP.

use net::NetworkBuilder;
use phy::{ErrorModel, ErrorUnit, PhyParams, Position};

use crate::experiments::fer_to_byte_rate;
use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

fn run_case(q: &Quality, seed: u64, emulate_spoof: bool) -> Vec<f64> {
    let mut b = NetworkBuilder::new(PhyParams::dot11a())
        .seed(seed)
        .rts(false)
        .default_error(ErrorModel::new(ErrorUnit::Byte, fer_to_byte_rate(0.10)).expect("rate"));
    let ap = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(20.0, 0.0));
    let r2 = b.add_node(Position::new(20.0, 5.0));
    if emulate_spoof {
        // The paper modifies the sender: no MAC retransmissions toward
        // the normal receiver (r1), as if r2 spoofed every ACK.
        b.set_no_retx(ap, vec![r1]);
    }
    let f1 = b.tcp_flow(ap, r1, Default::default());
    let f2 = b.tcp_flow(ap, r2, Default::default());
    let mut net = b.build();
    let m = net.run(q.duration);
    vec![m.goodput_mbps(f1), m.goodput_mbps(f2)]
}

/// Runs baseline and emulated attack.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab8",
        "Table VIII: testbed emulation of ACK spoofing (TCP, shared AP, 802.11a, FER 10 %)",
        &["case", "R1(NR)_mbps", "R2(GR)_mbps"],
    );
    let rows = sweep(ctx, "tab8", &[()], |_, seed| {
        let mut row = run_case(q, seed, false);
        row.extend(run_case(q, seed, true));
        row
    });
    let vals = &rows[0];
    e.push_row(vec!["no_GR".into(), mbps(vals[0]), mbps(vals[1])]);
    e.push_row(vec!["emulated_GR".into(), mbps(vals[2]), mbps(vals[3])]);
    e
}
