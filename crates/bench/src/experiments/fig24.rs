//! Fig. 24 — GRC against ACK spoofing across the loss-rate sweep: with
//! the RSSI vetting enabled, both flows track the no-attack curves.

use greedy80211::{GreedyConfig, Run, Scenario};

use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// BER values swept.
const BERS: &[f64] = &[1e-5, 1e-4, 2e-4, 4.4e-4, 8e-4, 1.4e-3];

/// Runs the BER sweep for all three cases.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "fig24",
        "Fig. 24: GRC vs ACK spoofing across BER (TCP, 802.11b)",
        &[
            "BER", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR", "GRC_NR", "GRC_GR",
        ],
    );
    let rows = sweep(ctx, "fig24", BERS, |&ber, seed| {
        let mut s = Scenario {
            byte_error_rate: ber,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        let base = Run::plan(&s).execute().expect("valid");
        s.greedy = vec![(1, GreedyConfig::ack_spoofing(vec![base.receivers[0]], 1.0))];
        let attacked = Run::plan(&s).execute().expect("valid");
        s.grc = Some(true);
        let guarded = Run::plan(&s).execute().expect("valid");
        vec![
            base.goodput_mbps(0),
            base.goodput_mbps(1),
            attacked.goodput_mbps(0),
            attacked.goodput_mbps(1),
            guarded.goodput_mbps(0),
            guarded.goodput_mbps(1),
        ]
    });
    for (&ber, vals) in BERS.iter().zip(rows) {
        let mut row = vec![format!("{ber:.1e}")];
        row.extend(vals.iter().map(|&v| mbps(v)));
        e.push_row(row);
    }
    e
}
