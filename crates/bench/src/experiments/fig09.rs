//! Fig. 9 — Eight TCP flows with a growing number of greedy receivers
//! (CTS NAV +31 ms, GP 100 %). Beyond one greedy receiver only a single
//! one survives: the first to grab the channel re-reserves it forever.

use greedy80211::{GreedyConfig, NavInflationConfig, Run, Scenario};

use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

const PAIRS: usize = 8;

/// Runs the sweep over the number of greedy receivers.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut cols: Vec<String> = vec!["num_greedy".into()];
    cols.extend((0..PAIRS).map(|i| format!("R{i}_mbps")));
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut e = Experiment::new(
        "fig9",
        "Fig. 9: 8 TCP flows, varying number of greedy receivers (CTS NAV +31 ms)",
        &col_refs,
    );
    let points: Vec<usize> = (0..=PAIRS).collect();
    let rows = sweep(ctx, "fig9", &points, |&num_greedy, seed| {
        let mut s = Scenario {
            pairs: PAIRS,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        s.greedy = (0..num_greedy)
            .map(|i| {
                (
                    i,
                    GreedyConfig::nav_inflation(NavInflationConfig::cts_only(31_000, 1.0)),
                )
            })
            .collect();
        let out = Run::plan(&s).execute().expect("valid scenario");
        (0..PAIRS).map(|i| out.goodput_mbps(i)).collect()
    });
    for (&num_greedy, vals) in points.iter().zip(rows) {
        let mut row = vec![num_greedy.to_string()];
        row.extend(vals.iter().map(|&v| mbps(v)));
        e.push_row(row);
    }
    e
}
