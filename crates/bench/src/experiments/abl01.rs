//! Ablation 1 — the carrier-sense latency (collision window).
//!
//! The runtime makes a transmission visible to other stations one slot
//! after it starts, reproducing the paper's "two nodes both send if
//! their countdowns differ within 1 slot". This ablation sweeps the
//! latency (0 = idealized instant carrier sense) and reports the RTS
//! collision/timeout rate between two saturated senders — the knob
//! directly controls how much contention loss exists for misbehaviors
//! to exploit.

use greedy80211::{Run, Scenario, TransportKind};
use net::NetworkBuilder;
use phy::{PhyParams, Position};

use crate::table::{ratio, Experiment};
use crate::{sweep, sweep_scalar, Quality, RunCtx};

fn timeout_rate(q: &Quality, seed: u64, slots: u32) -> Vec<f64> {
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(seed)
        .cs_latency_slots(slots);
    let s1 = b.add_node(Position::new(0.0, 0.0));
    let r1 = b.add_node(Position::new(5.0, 0.0));
    let s2 = b.add_node(Position::new(0.0, 5.0));
    let r2 = b.add_node(Position::new(5.0, 5.0));
    b.udp_flow(s1, r1, 1024, 10_000_000);
    b.udp_flow(s2, r2, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(q.duration);
    let c1 = &m.node(s1).unwrap().counters;
    let c2 = &m.node(s2).unwrap().counters;
    let attempts = (c1.rts_sent.get() + c2.rts_sent.get()).max(1) as f64;
    let timeouts = (c1.timeouts.get() + c2.timeouts.get()) as f64;
    vec![timeouts / attempts]
}

/// Carrier-sense latencies swept, in slots.
const SLOTS: &[u32] = &[0, 1, 2, 4];

/// Runs the latency sweep, plus the paper-default fairness check.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "abl1",
        "Ablation: carrier-sense latency vs contention-loss rate (2 saturated UDP pairs)",
        &["cs_latency_slots", "rts_timeout_rate"],
    );
    let rows = sweep(ctx, "abl1/cs", SLOTS, |&slots, seed| {
        timeout_rate(q, seed, slots)
    });
    for (&slots, vals) in SLOTS.iter().zip(rows) {
        e.push_row(vec![slots.to_string(), ratio(vals[0])]);
    }
    // Sanity anchor: the default scenario's fairness is unaffected.
    let fair = sweep_scalar(ctx, "abl1/fair", &[()], |_, seed| {
        let s = Scenario {
            transport: TransportKind::SATURATING_UDP,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        let out = Run::plan(&s).execute().expect("valid");
        out.goodput_mbps(0) / out.goodput_mbps(1).max(1e-9)
    })[0];
    e.push_row(vec!["default_fairness_ratio".into(), ratio(fair)]);
    e
}
