//! Table VII — Testbed-equivalent: UDP throughput when the greedy
//! receiver inflates CTS and/or ACK NAVs to the maximum (802.11a,
//! 6 Mb/s, two pairs), with and without RTS/CTS.

use greedy80211::{GreedyConfig, InflatedFrames, NavInflationConfig, Run, Scenario, TransportKind};
use phy::PhyStandard;

use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

fn scenario(q: &Quality, seed: u64, rts: bool, frames: Option<InflatedFrames>) -> Vec<f64> {
    let mut s = Scenario {
        phy: PhyStandard::Dot11a,
        transport: TransportKind::SATURATING_UDP,
        rts,
        duration: q.duration,
        seed,
        ..Scenario::default()
    };
    if let Some(frames) = frames {
        s.greedy = vec![(
            1,
            GreedyConfig::nav_inflation(NavInflationConfig {
                inflate_us: 32_767,
                gp: 1.0,
                frames,
            }),
        )];
    }
    let out = Run::plan(&s).execute().expect("valid");
    vec![out.goodput_mbps(0), out.goodput_mbps(1)]
}

/// Runs all rows of the table.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab7",
        "Table VII: UDP throughput, GR inflates NAV to max (802.11a)",
        &["case", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR"],
    );
    let cases: [(&str, bool, InflatedFrames); 3] = [
        ("noRTS_inflate_ACK", false, InflatedFrames::ACK),
        ("RTS_inflate_CTS", true, InflatedFrames::CTS),
        (
            "RTS_inflate_CTS_ACK",
            true,
            InflatedFrames {
                cts: true,
                ack: true,
                rts: false,
                data: false,
            },
        ),
    ];
    let rows = sweep(ctx, "tab7", &cases, |&(_, rts, frames), seed| {
        let mut row = scenario(q, seed, rts, None);
        row.extend(scenario(q, seed, rts, Some(frames)));
        row
    });
    for (&(name, _, _), vals) in cases.iter().zip(rows) {
        e.push_row(vec![
            name.into(),
            mbps(vals[0]),
            mbps(vals[1]),
            mbps(vals[2]),
            mbps(vals[3]),
        ]);
    }
    e
}
