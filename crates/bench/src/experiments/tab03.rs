//! Table III — BER and the corresponding frame error rate per frame
//! type. Regenerated exactly from the error model: a per-byte process
//! over the frame plus 24 bytes of PLCP-equivalent overhead
//! (ACK/CTS 38, RTS 44, TCP ACK 112, TCP data 1136 total bytes).

use phy::{ErrorModel, ErrorUnit};

use crate::table::Experiment;
use crate::RunCtx;

/// Total byte counts entering the corruption process, per frame type.
const FRAME_BYTES: [(&str, usize); 4] = [
    ("ACK/CTS", 38),
    ("RTS", 44),
    ("TCP_ACK", 112),
    ("TCP_Data", 1136),
];

/// Regenerates the table (analytic; no simulation required).
pub fn run(_ctx: &RunCtx) -> Experiment {
    let mut e = Experiment::new(
        "tab3",
        "Table III: BER and the corresponding FER per frame type",
        &["BER", "ACK/CTS", "RTS", "TCP_ACK", "TCP_Data"],
    );
    for &ber in &[1e-5, 2e-4, 3.2e-4, 4.4e-4, 8e-4] {
        let em = ErrorModel::new(ErrorUnit::Byte, ber).expect("valid rate");
        let mut row = vec![format!("{ber:.1e}")];
        row.extend(
            FRAME_BYTES
                .iter()
                .map(|&(_, bytes)| format!("{:.3e}", em.fer(bytes))),
        );
        e.push_row(row);
    }
    e
}
