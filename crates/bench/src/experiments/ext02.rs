//! Extension 2 — DOMINO (sender-side baseline) vs GRC across
//! misbehavior types.
//!
//! DOMINO (Raya et al.) flags stations whose transmissions follow
//! shorter-than-nominal backoffs — the classic greedy *sender*. All
//! three greedy-*receiver* misbehaviors transmit with perfectly honest
//! timing, so DOMINO stays silent on them while GRC fires; conversely
//! GRC's NAV/RSSI rules say nothing about a backoff cheat. The paper's
//! motivation ("existing work focuses on sender-side misbehavior") in
//! one table.

use greedy80211::{
    DominoDetector, GrcObserver, GreedyConfig, GreedySenderPolicy, NavInflationConfig,
};
use net::NetworkBuilder;
use phy::{ErrorModel, ErrorUnit, PhyParams, Position};

use crate::table::Experiment;
use crate::{sweep, Quality, RunCtx};

#[derive(Clone, Copy, PartialEq)]
enum Attack {
    None,
    GreedySender,
    NavInflation,
    AckSpoof,
}

/// Returns `(domino_flagged, grc_nav_detections, grc_spoof_flags)`.
fn run_case(q: &Quality, seed: u64, attack: Attack) -> Vec<f64> {
    let params = PhyParams::dot11b();
    let mut b = NetworkBuilder::new(params).seed(seed);
    if attack == Attack::AckSpoof {
        b = b.default_error(ErrorModel::new(ErrorUnit::Byte, 2e-4).expect("rate"));
    }
    let mut handles = Vec::new();
    let mut grc_node = |b: &mut NetworkBuilder, pos: Position| {
        let (obs, h) = GrcObserver::new(params, true);
        let id = b.add_node_with_observer(pos, obs);
        handles.push(h);
        id
    };
    // Pair 0 is always honest; pair 1 hosts the attacker.
    let s0 = grc_node(&mut b, Position::new(0.0, 0.0));
    let r0 = grc_node(&mut b, Position::new(20.0, 0.0));
    let s1 = if attack == Attack::GreedySender {
        b.add_node_with_policy(Position::new(0.0, 20.0), GreedySenderPolicy::new(0.1))
    } else {
        grc_node(&mut b, Position::new(0.0, 20.0))
    };
    let r1 = match attack {
        Attack::NavInflation => b.add_node_with_policy(
            Position::new(45.0, 20.0),
            GreedyConfig::nav_inflation(NavInflationConfig::cts_only(10_000, 1.0)).into_policy(),
        ),
        Attack::AckSpoof => b.add_node_with_policy(
            Position::new(45.0, 20.0),
            GreedyConfig::ack_spoofing(vec![r0], 1.0).into_policy(),
        ),
        _ => grc_node(&mut b, Position::new(45.0, 20.0)),
    };
    b.udp_flow(s0, r0, 1024, 10_000_000);
    b.udp_flow(s1, r1, 1024, 10_000_000);
    let mut net = b.build();
    net.enable_trace(2_000_000);
    net.run(q.duration);
    let domino = DominoDetector::new(params);
    let trace = net.trace().expect("trace enabled");
    let report = domino.analyze(&trace);
    let nav: u64 = handles
        .iter()
        .map(|h| h.nav.borrow().total_detections())
        .sum();
    let flagged: u64 = handles.iter().map(|h| h.spoof.borrow().flagged).sum();
    let accepted: u64 = handles.iter().map(|h| h.spoof.borrow().accepted).sum();
    let flag_rate = flagged as f64 / (flagged + accepted).max(1) as f64;
    vec![report.flagged.len() as f64, nav as f64, flag_rate]
}

/// Runs the detector-coverage matrix.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "ext2",
        "Extension: detector coverage — DOMINO (sender baseline) vs GRC per misbehavior",
        &[
            "attack",
            "domino_flagged_nodes",
            "grc_nav_detections",
            "grc_spoof_flag_rate",
        ],
    );
    let cases = [
        ("none", Attack::None),
        ("greedy_sender", Attack::GreedySender),
        ("nav_inflation", Attack::NavInflation),
        ("ack_spoofing", Attack::AckSpoof),
    ];
    let rows = sweep(ctx, "ext2", &cases, |&(_, attack), seed| {
        run_case(q, seed, attack)
    });
    for (&(name, _), vals) in cases.iter().zip(rows) {
        e.push_row(vec![
            name.into(),
            format!("{:.0}", vals[0]),
            format!("{:.0}", vals[1]),
            format!("{:.3}", vals[2]),
        ]);
    }
    e
}
