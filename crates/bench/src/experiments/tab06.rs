//! Table VI — Testbed-equivalent: TCP throughput when the greedy
//! receiver inflates the NAV on the RTS frames of its TCP ACKs to the
//! maximum (32 767 µs). Two pairs, 802.11a at 6 Mb/s, RTS/CTS on —
//! mirroring the paper's MadWiFi setup in simulation.

use greedy80211::{InflatedFrames, NavInflationConfig, Run, Scenario};
use phy::PhyStandard;

use crate::experiments::nav_two_pair;
use crate::table::{mbps, Experiment};
use crate::{sweep, RunCtx};

/// Runs baseline and attack.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "tab6",
        "Table VI: TCP throughput, GR inflates NAV on RTS of TCP ACKs to max (802.11a)",
        &["case", "R1_mbps", "R2_mbps"],
    );
    let nav = NavInflationConfig {
        inflate_us: 32_767,
        gp: 1.0,
        frames: InflatedFrames {
            rts: true,
            ..InflatedFrames::default()
        },
    };
    let rows = sweep(ctx, "tab6", &[()], |_, seed| {
        let mut base = Scenario {
            phy: PhyStandard::Dot11a,
            duration: q.duration,
            seed,
            ..Scenario::default()
        };
        base.greedy.clear();
        let base = Run::plan(&base).execute().expect("valid");
        let mut attack = nav_two_pair(false, nav.clone(), q, seed);
        attack.phy = PhyStandard::Dot11a;
        let attack = Run::plan(&attack).execute().expect("valid");
        vec![
            base.goodput_mbps(0),
            base.goodput_mbps(1),
            attack.goodput_mbps(0),
            attack.goodput_mbps(1),
        ]
    });
    let vals = &rows[0];
    e.push_row(vec!["no_GR".into(), mbps(vals[0]), mbps(vals[1])]);
    e.push_row(vec!["R2_GR".into(), mbps(vals[2]), mbps(vals[3])]);
    e
}
