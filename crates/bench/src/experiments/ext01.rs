//! Extension (paper §IX, future work) — misbehaviors under Automatic
//! Rate Fallback.
//!
//! The victim's link is rate-dependent: clean at 1–2 Mb/s, lossy at
//! 5.5 Mb/s, very lossy at 11 Mb/s. The paper predicts:
//!
//! * **ACK spoofing gets worse under auto-rate**: spoofed ACKs hide the
//!   victim's losses from its sender's ARF, which therefore never steps
//!   down from a rate the channel cannot carry;
//! * **fake ACKs pay less under auto-rate**: the greedy receiver's own
//!   fake ACKs pin its sender at a rate it cannot decode, destroying
//!   the goodput the misbehavior was meant to boost.

use greedy80211::GreedyConfig;
use mac::ArfConfig;
use net::NetworkBuilder;
use phy::{ErrorModel, ErrorUnit, PhyParams, Position};

use crate::experiments::fer_to_byte_rate;
use crate::table::{mbps, Experiment};
use crate::{sweep, Quality, RunCtx};

/// Frame error rates per 802.11b rate for the degraded link.
const RATE_FER: [(u64, f64); 4] = [
    (1_000_000, 0.0),
    (2_000_000, 0.02),
    (5_500_000, 0.4),
    (11_000_000, 0.85),
];

fn degraded_link(b: &mut NetworkBuilder, tx: mac::NodeId, rx: mac::NodeId) {
    for (rate, fer) in RATE_FER {
        let em = ErrorModel::new(ErrorUnit::Byte, fer_to_byte_rate(fer)).expect("rate");
        b.link_rate_error(tx, rx, rate, em);
    }
    // Fixed-rate (None) frames travel at 11 Mb/s: same worst-case loss.
    let em = ErrorModel::new(ErrorUnit::Byte, fer_to_byte_rate(0.85)).expect("rate");
    b.link_error(tx, rx, em);
}

/// Spoofing × ARF: returns `(victim, greedy)` goodput.
fn spoof_case(q: &Quality, seed: u64, arf: bool, spoof: bool) -> Vec<f64> {
    let mut b = NetworkBuilder::new(PhyParams::dot11b()).seed(seed);
    let s0 = b.add_node(Position::new(0.0, 0.0));
    let s1 = b.add_node(Position::new(0.0, 20.0));
    let r0 = b.add_node(Position::new(20.0, 0.0));
    let r1 = if spoof {
        b.add_node_with_policy(
            Position::new(45.0, 20.0),
            GreedyConfig::ack_spoofing(vec![r0], 1.0).into_policy(),
        )
    } else {
        b.add_node(Position::new(45.0, 20.0))
    };
    degraded_link(&mut b, s0, r0);
    if arf {
        b.set_auto_rate(s0, ArfConfig::dot11b());
        b.set_auto_rate(s1, ArfConfig::dot11b());
        b.set_auto_rate(r0, ArfConfig::dot11b());
        b.set_auto_rate(r1, ArfConfig::dot11b());
    }
    let f0 = b.tcp_flow(s0, r0, Default::default());
    let f1 = b.tcp_flow(s1, r1, Default::default());
    let mut net = b.build();
    let m = net.run(q.duration);
    vec![m.goodput_mbps(f0), m.goodput_mbps(f1)]
}

/// Fake ACK × ARF: the *greedy receiver's own* link degrades with rate.
/// Returns `(normal, greedy)` goodput.
fn fake_case(q: &Quality, seed: u64, arf: bool, fake: bool) -> Vec<f64> {
    let mut b = NetworkBuilder::new(PhyParams::dot11b())
        .seed(seed)
        .rts(false);
    let s0 = b.add_node(Position::new(0.0, 0.0));
    let s1 = b.add_node(Position::new(0.0, 20.0));
    let r0 = b.add_node(Position::new(20.0, 0.0));
    let r1 = if fake {
        b.add_node_with_policy(
            Position::new(20.0, 20.0),
            GreedyConfig::fake_acks(1.0).into_policy(),
        )
    } else {
        b.add_node(Position::new(20.0, 20.0))
    };
    degraded_link(&mut b, s1, r1);
    if arf {
        b.set_auto_rate(s0, ArfConfig::dot11b());
        b.set_auto_rate(s1, ArfConfig::dot11b());
    }
    let f0 = b.udp_flow(s0, r0, 1024, 10_000_000);
    let f1 = b.udp_flow(s1, r1, 1024, 10_000_000);
    let mut net = b.build();
    let m = net.run(q.duration);
    vec![m.goodput_mbps(f0), m.goodput_mbps(f1)]
}

/// `(ARF on, attack on)` grid shared by both studies.
const GRID: [(bool, bool); 4] = [(false, false), (false, true), (true, false), (true, true)];

/// Runs both interaction studies.
pub fn run(ctx: &RunCtx) -> Experiment {
    let q = &ctx.quality;
    let mut e = Experiment::new(
        "ext1",
        "Extension: misbehaviors under Automatic Rate Fallback (802.11b rate ladder)",
        &["study", "rate_ctrl", "attack", "victim/NR_mbps", "GR_mbps"],
    );
    let spoof_rows = sweep(ctx, "ext1/spoofing", &GRID, |&(arf, spoof), seed| {
        spoof_case(q, seed, arf, spoof)
    });
    for (&(arf, spoof), vals) in GRID.iter().zip(spoof_rows) {
        e.push_row(vec![
            "spoofing".into(),
            if arf { "ARF" } else { "fixed_11M" }.into(),
            if spoof { "spoof" } else { "none" }.into(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    let fake_rows = sweep(ctx, "ext1/fake_acks", &GRID, |&(arf, fake), seed| {
        fake_case(q, seed, arf, fake)
    });
    for (&(arf, fake), vals) in GRID.iter().zip(fake_rows) {
        e.push_row(vec![
            "fake_acks".into(),
            if arf { "ARF" } else { "fixed_11M" }.into(),
            if fake { "fake" } else { "none" }.into(),
            mbps(vals[0]),
            mbps(vals[1]),
        ]);
    }
    e
}
