//! Acceptance bars for the `repro intensity` attack-intensity campaign:
//!
//! 1. Degenerate intensities collapse to honesty: a zero-strength attack
//!    (`inflate_us = 0`, `gp = 0`) is byte-identical to the honest run,
//!    and unit intensity reproduces the historical full-strength ROC
//!    cells knob for knob (the PR that added the axis changed nothing).
//! 2. Every artifact is byte-identical at `--jobs 1` and `--jobs 8`,
//!    and the reported knee is consistent with the frontier it
//!    summarizes: the criterion holds at the knee and every stronger
//!    point, and fails one grid step below.
//! 3. The campaign survives a checkpoint → resume round-trip: CSVs from
//!    a resumed sweep are byte-identical to the uninterrupted ones, and
//!    a mid-intensity attacked run's windowed guard evidence digests
//!    stably into the `detect` audit layer across checkpoint resume.

use std::fs;
use std::path::{Path, PathBuf};

use detsci::{IntensityPoint, KneeCriterion};
use gr_bench::roc::{guard_windows, measure_class, windowed_scenario, Guard, CELLS};
use gr_bench::{cc, IntensityCampaign, Quality, RunCtx};
use greedy80211::detect::WindowStat;
use greedy80211::{Axis, CampaignSpec, Checkpoint, GreedyConfig, Run, RunOutcome};
use sim::{RunKey, SimDuration};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gr-intensity").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file under `root`, as (relative path, bytes), sorted by path.
fn dir_files(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, base: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        let mut entries: Vec<_> = fs::read_dir(dir)
            .expect("readable dir")
            .map(|e| e.expect("entry").path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                walk(&p, base, out);
            } else {
                let rel = p.strip_prefix(base).expect("under base");
                out.push((
                    rel.to_string_lossy().into_owned(),
                    fs::read(&p).expect("readable file"),
                ));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out
}

/// Every guard window of the run, flattened to a comparable series.
fn window_series(out: &RunOutcome) -> Vec<(u16, &'static str, u64, f64, f64, u64)> {
    let mut rows = Vec::new();
    for (node, snap) in &out.grc {
        for (name, track) in [("nav", &snap.nav.windows), ("spoof", &snap.spoof.windows)] {
            let Some(track) = track else { continue };
            for WindowStat {
                idx,
                peak,
                sum,
                samples,
            } in track.stats()
            {
                rows.push((node.0, name, idx, peak, sum, samples));
            }
        }
    }
    rows
}

fn test_quality() -> Quality {
    Quality {
        seeds: vec![1, 2],
        duration: SimDuration::from_millis(600),
        samples: 100,
    }
}

/// A zero-strength attack must be behaviorally honest. The scenario
/// builder deliberately parks greedy receivers 25 m further out than
/// honest ones (the spoof detector's SNR margin), so an attacked run is
/// never byte-identical to the *honest-class* run — but with placement
/// fixed, every inert config must be indistinguishable from every
/// other: NAV inflation by 0 µs, NAV inflation that never fires
/// (`gp = 0`), zero-probability ACK spoofing, and zero-probability fake
/// ACKs all produce the same guard evidence and the same audit root.
/// This pins the bottom of the intensity axis: a zero-intensity policy
/// neither acts nor draws RNG (`SimRng::chance` short-circuits at the
/// endpoints), whatever family it came from.
#[test]
fn zero_intensity_attacks_are_byte_identical_across_families() {
    let q = test_quality();
    let s = windowed_scenario("udp", &q, SimDuration::from_millis(100), cc::LOSSY_BER);
    let victim = s.build().expect("valid scenario").receivers[0];
    let inert_configs = [
        Axis::NavInflation
            .receiver_config(0.0, &[])
            .expect("receiver axis"),
        GreedyConfig::nav_inflation(greedy80211::NavInflationConfig::cts_only(
            cc::NAV_INFLATE_US,
            0.0,
        )),
        Axis::AckSpoof
            .receiver_config(0.0, &[victim])
            .expect("receiver axis"),
        Axis::FakeAck
            .receiver_config(0.0, &[])
            .expect("receiver axis"),
    ];
    let mut baseline: Option<(Vec<_>, u64)> = None;
    for cfg in inert_configs {
        assert!(cfg.is_inert(), "config not inert at zero: {cfg:?}");
        let mut s = s.clone();
        s.greedy = vec![(1, cfg.clone())];
        let run = Run::plan(&s)
            .seeded(5)
            .audit_every(SimDuration::from_millis(300))
            .execute()
            .expect("valid scenario");
        let observed = (window_series(&run), run.audit.root_digest());
        match &baseline {
            None => baseline = Some(observed),
            Some(gold) => {
                assert_eq!(
                    gold.0, observed.0,
                    "inert config perturbed the guard evidence: {cfg:?}"
                );
                assert_eq!(
                    gold.1, observed.1,
                    "inert config perturbed the audit ladder: {cfg:?}"
                );
            }
        }
    }
}

/// Unit intensity must reproduce the historical full-strength cells
/// knob for knob: `measure_class(.., 1.0, true)` against an inline
/// reconstruction of the original attack configs (literal 10 ms NAV
/// inflation, literal `gp = 1.0` spoofing) under the same key. This is
/// the backward-compatibility pin for the pre-axis ROC campaign.
#[test]
fn unit_intensity_reproduces_the_historical_cells() {
    let q = test_quality();
    let window = SimDuration::from_millis(100);
    for (detector, guard, ber, cfg_of) in [
        (
            "nav",
            Guard::Nav,
            0.0,
            (|_victim| {
                GreedyConfig::nav_inflation(greedy80211::NavInflationConfig::cts_only(
                    cc::NAV_INFLATE_US,
                    1.0,
                ))
            }) as fn(mac::NodeId) -> GreedyConfig,
        ),
        ("spoof", Guard::Spoof, cc::LOSSY_BER, |victim| {
            GreedyConfig::ack_spoofing(vec![victim], 1.0)
        }),
    ] {
        let cell = CELLS
            .iter()
            .find(|c| c.detector == detector && c.mix == "udp")
            .expect("cell exists");
        let key = RunKey::new("intensity-pin", 0, 0);
        let via_axis = measure_class(cell, &q, window, key.clone(), 1.0, true);

        let mut s = windowed_scenario("udp", &q, window, ber);
        let victim = s.build().expect("valid scenario").receivers[0];
        s.greedy = vec![(1, cfg_of(victim))];
        let run = Run::plan(&s).keyed(key).execute().expect("valid scenario");
        let windows = guard_windows(&run, guard);
        assert!(!windows.is_empty(), "{detector}: no guard evidence");
        assert_eq!(
            via_axis.windows, windows,
            "{detector}: unit intensity diverged from the historical attack"
        );
        assert_eq!(
            via_axis.stats,
            windows.iter().map(|w| w.peak).collect::<Vec<_>>(),
            "{detector}: stats are not the window peaks"
        );
    }
}

/// The campaign's CSVs are byte-identical at any `--jobs` width, and
/// the knee each cell reports is consistent with its own frontier: the
/// detection criterion holds at the knee and every stronger grid point,
/// and fails at the grid point immediately below (the frontier is
/// "silent one step below the knee").
#[test]
fn artifacts_are_jobs_invariant_and_knees_bracket_the_frontier() {
    let quality = test_quality();
    let campaign = |jobs| {
        let mut c = IntensityCampaign::new(quality.clone(), jobs).with_points(3);
        c.window = SimDuration::from_millis(100);
        c
    };
    let dir1 = tmp("jobs1");
    let dir8 = tmp("jobs8");
    let report = campaign(1).run(&dir1).unwrap();
    campaign(8).run(&dir8).unwrap();
    let files1 = dir_files(&dir1);
    let files8 = dir_files(&dir8);
    assert!(
        files1.iter().any(|(p, _)| p.ends_with("knees.csv")),
        "campaign must write the knee summary"
    );
    assert_eq!(
        files1.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        files8.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        "artifact sets must match"
    );
    for ((path, a), (_, b)) in files1.iter().zip(&files8) {
        assert_eq!(a, b, "{path} differs between --jobs 1 and --jobs 8");
    }

    let criterion = KneeCriterion::default();
    let as_point = |p: &gr_bench::intensity::FrontierPoint| IntensityPoint {
        intensity: p.intensity,
        tpr: p.op.tpr,
        fpr: p.op.fpr,
    };
    assert!(
        report.cells.iter().any(|cf| cf.knee.is_some()),
        "at least one cell must become reliably detectable"
    );
    for cf in &report.cells {
        let Some(knee) = cf.knee else { continue };
        let ki = cf
            .points
            .iter()
            .position(|p| p.intensity == knee)
            .expect("knee lies on the grid");
        for p in &cf.points[ki..] {
            assert!(
                criterion.holds(&as_point(p)),
                "{}/{}: criterion fails at intensity {} above the knee {knee}",
                cf.cell.detector,
                cf.cell.mix,
                p.intensity
            );
        }
        if ki > 0 {
            let below = &cf.points[ki - 1];
            assert!(
                !criterion.holds(&as_point(below)),
                "{}/{}: frontier already fires at {} one step below the knee {knee}",
                cf.cell.detector,
                cf.cell.mix,
                below.intensity
            );
        }
    }
    for d in [&dir1, &dir8] {
        let _ = fs::remove_dir_all(d);
    }
}

/// Checkpoint → resume round-trip at the campaign level: a recording
/// pass freezes every simulation mid-sweep, and a resuming pass —
/// restoring each run from its snapshot and simulating only the tail —
/// writes byte-identical frontier CSVs.
#[test]
fn campaign_resumes_mid_sweep_byte_identically() {
    let quality = Quality {
        seeds: vec![1],
        duration: SimDuration::from_millis(600),
        samples: 100,
    };
    let mut campaign = IntensityCampaign::new(quality.clone(), 2).with_points(2);
    campaign.window = SimDuration::from_millis(100);

    let gold_dir = tmp("resume-gold");
    let gold_ctx = RunCtx::with_jobs(quality.clone(), 2).with_checkpoints(CampaignSpec::record(
        &gold_dir,
        Some(SimDuration::from_millis(200)),
        None,
    ));
    let gold = campaign.run_with(&gold_ctx, &gold_dir).unwrap();
    let snaps = fs::read_dir(gold_dir.join("checkpoints"))
        .expect("checkpoints recorded")
        .count();
    assert!(snaps > 0, "recording pass left no checkpoint files");

    let resumed_dir = tmp("resume-replay");
    let resume_ctx =
        RunCtx::with_jobs(quality, 2).with_checkpoints(CampaignSpec::resume_from(&gold_dir));
    let resumed = campaign.run_with(&resume_ctx, &resumed_dir).unwrap();
    assert_eq!(gold.csvs.len(), resumed.csvs.len());
    for (a, b) in gold.csvs.iter().zip(&resumed.csvs) {
        assert_eq!(
            fs::read(a).unwrap(),
            fs::read(b).unwrap(),
            "{} differs after mid-sweep resume",
            a.file_name().unwrap().to_string_lossy()
        );
    }
    for d in [&gold_dir, &resumed_dir] {
        let _ = fs::remove_dir_all(d);
    }
}

/// A *mid*-intensity attacked run (NAV inflated by 2 ms, 20 % of full
/// strength) carries partial guard evidence; that evidence must survive
/// resume from every mid-run snapshot and digest deterministically into
/// the `detect` layer of the audit ladder.
#[test]
fn mid_intensity_guard_evidence_survives_checkpoint_and_audits() {
    let dir = tmp("mid-ckpt");
    let q = test_quality();
    let mut s = windowed_scenario("udp", &q, SimDuration::from_millis(100), 0.0);
    s.greedy = vec![(
        1,
        Axis::NavInflation
            .receiver_config(0.2, &[])
            .expect("receiver axis"),
    )];
    let gold = Run::plan(&s)
        .seeded(9)
        .checkpoint_every(SimDuration::from_millis(200))
        .audit_every(SimDuration::from_millis(200))
        .execute()
        .expect("valid scenario");
    let gold_series = window_series(&gold);
    assert!(
        gold_series
            .iter()
            .any(|(_, _, _, _, _, samples)| *samples > 0),
        "mid-intensity attack left no guard evidence"
    );
    let audit_text = gold.audit.to_text();
    assert!(
        audit_text.contains("detect"),
        "audit ladder must digest the detect layer:\n{audit_text}"
    );
    let again = Run::plan(&s)
        .seeded(9)
        .audit_every(SimDuration::from_millis(200))
        .execute()
        .expect("valid scenario");
    assert_eq!(
        gold.audit.root_digest(),
        again.audit.root_digest(),
        "audit root must be stable across identical runs"
    );
    assert!(gold.checkpoints.len() >= 2, "mid-run snapshots expected");
    for (at, bytes) in &gold.checkpoints {
        let path = dir.join(format!("{}ms.snap", at.as_nanos() / 1_000_000));
        Checkpoint::decode(bytes)
            .expect("checkpoint decodes")
            .write(&path)
            .expect("checkpoint writes");
        let resumed = Run::resume(&path).expect("checkpoint resumes");
        assert_eq!(
            window_series(&resumed),
            gold_series,
            "window stats diverged after resume at {at:?}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
