//! Checkpoint → resume round-trip over real experiments (the issue's
//! acceptance bar): a campaign recorded with mid-run checkpoints, then
//! resumed — each run restoring its snapshot and simulating only the
//! tail — must emit byte-identical CSVs, at any `--jobs` width.

use std::fs;
use std::path::{Path, PathBuf};

use gr_bench::{registry, Quality, RunCtx};
use greedy80211::CampaignSpec;
use sim::SimDuration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gr-ckpt-resume").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn csv_for(id: &str, ctx: &RunCtx, out: &Path) -> Vec<u8> {
    let (_, gen) = registry()
        .into_iter()
        .find(|(rid, _)| *rid == id)
        .expect("id in registry");
    let experiment = gen(ctx);
    experiment.write_csv(out).unwrap();
    fs::read(out.join(format!("{id}.csv"))).unwrap()
}

#[test]
fn recorded_campaigns_resume_to_byte_identical_csvs() {
    for id in ["fig2", "fig6", "tab5"] {
        let dir = tmp(id);
        let camp = dir.join("campaign");
        // Record pass: sequential, checkpoint + audit every 500 ms of
        // virtual time (quick runs last 2 s, so snapshots land mid-run).
        let record = RunCtx::with_jobs(Quality::quick(), 1).with_checkpoints(CampaignSpec::record(
            &camp,
            Some(SimDuration::from_millis(500)),
            Some(SimDuration::from_millis(500)),
        ));
        let gold = csv_for(id, &record, &dir.join("rec"));
        let n_ckpts = fs::read_dir(camp.join("checkpoints")).unwrap().count();
        assert!(n_ckpts > 0, "{id}: no checkpoints recorded");
        assert!(
            fs::read_dir(camp.join("audit")).unwrap().count() > 0,
            "{id}: no audit ladders recorded"
        );
        // Resume passes: every run restores its checkpoint and simulates
        // only the tail, sequentially and across 8 workers.
        for jobs in [1usize, 8] {
            let resume = RunCtx::with_jobs(Quality::quick(), jobs)
                .with_checkpoints(CampaignSpec::resume_from(&camp));
            let out = csv_for(id, &resume, &dir.join(format!("jobs{jobs}")));
            assert_eq!(out, gold, "{id}: resumed CSV differs at jobs={jobs}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
