//! Checkpoint → resume round-trip over real experiments (the issue's
//! acceptance bar): a campaign recorded with mid-run checkpoints, then
//! resumed — each run restoring its snapshot and simulating only the
//! tail — must emit byte-identical CSVs, at any `--jobs` width.

use std::fs;
use std::path::{Path, PathBuf};

use gr_bench::{registry, Quality, RunCtx};
use greedy80211::{CampaignSpec, CcConfig, Checkpoint, Run, RunOutcome, Scenario};
use sim::SimDuration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gr-ckpt-resume").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn csv_for(id: &str, ctx: &RunCtx, out: &Path) -> Vec<u8> {
    let (_, gen) = registry()
        .into_iter()
        .find(|(rid, _)| *rid == id)
        .expect("id in registry");
    let experiment = gen(ctx);
    experiment.write_csv(out).unwrap();
    fs::read(out.join(format!("{id}.csv"))).unwrap()
}

#[test]
fn recorded_campaigns_resume_to_byte_identical_csvs() {
    for id in ["fig2", "fig6", "tab5"] {
        let dir = tmp(id);
        let camp = dir.join("campaign");
        // Record pass: sequential, checkpoint + audit every 500 ms of
        // virtual time (quick runs last 2 s, so snapshots land mid-run).
        let record = RunCtx::with_jobs(Quality::quick(), 1).with_checkpoints(CampaignSpec::record(
            &camp,
            Some(SimDuration::from_millis(500)),
            Some(SimDuration::from_millis(500)),
        ));
        let gold = csv_for(id, &record, &dir.join("rec"));
        let n_ckpts = fs::read_dir(camp.join("checkpoints")).unwrap().count();
        assert!(n_ckpts > 0, "{id}: no checkpoints recorded");
        assert!(
            fs::read_dir(camp.join("audit")).unwrap().count() > 0,
            "{id}: no audit ladders recorded"
        );
        // Resume passes: every run restores its checkpoint and simulates
        // only the tail, sequentially and across 8 workers.
        for jobs in [1usize, 8] {
            let resume = RunCtx::with_jobs(Quality::quick(), jobs)
                .with_checkpoints(CampaignSpec::resume_from(&camp));
            let out = csv_for(id, &resume, &dir.join(format!("jobs{jobs}")));
            assert_eq!(out, gold, "{id}: resumed CSV differs at jobs={jobs}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// One CSV line of the transport-visible outcome: goodputs, loss
/// machinery counters, and the time-weighted window average.
fn outcome_csv(out: &RunOutcome) -> String {
    let mut line = String::new();
    for i in 0..out.flows.len() {
        let m = out.metrics.flow(out.flows[i]).expect("flow metrics");
        line.push_str(&format!(
            "{:.6},{},{},{:.6};",
            out.goodput_mbps(i),
            m.retransmissions,
            m.timeouts,
            m.avg_cwnd.unwrap_or(f64::NAN),
        ));
    }
    line
}

#[test]
fn cubic_and_bbr_resume_mid_recovery_to_byte_identical_outcomes() {
    // The zoo's stateful controllers (CUBIC's epoch anchor, BBR's filter
    // banks and mode machine) must survive freeze/thaw mid-loss-episode:
    // a lossy 2 s run checkpointed every 500 ms, resumed from a mid-run
    // snapshot, must reproduce the uninterrupted run's transport metrics
    // byte for byte.
    for cc in [CcConfig::cubic(), CcConfig::bbr()] {
        let dir = tmp(&format!("cc-{}", cc.name()));
        let s = Scenario {
            cc,
            // Lossy enough that recovery episodes straddle the barriers.
            byte_error_rate: 3e-4,
            duration: SimDuration::from_secs(2),
            ..Scenario::default()
        };
        let gold = Run::plan(&s)
            .checkpoint_every(SimDuration::from_millis(500))
            .execute()
            .expect("valid scenario");
        let gold_csv = outcome_csv(&gold);
        let retx: u64 = gold
            .flows
            .iter()
            .map(|f| gold.metrics.flow(*f).unwrap().retransmissions)
            .sum();
        assert!(
            retx > 0,
            "{}: the lossy run must actually exercise recovery",
            cc.name()
        );
        assert!(
            gold.checkpoints.len() >= 3,
            "{}: mid-run snapshots",
            cc.name()
        );
        // Resume from every mid-run snapshot, not just the first: later
        // barriers freeze deeper controller state (BBR past startup,
        // CUBIC mid-epoch).
        for (at, bytes) in &gold.checkpoints {
            let path = dir.join(format!("{}ms.snap", at.as_nanos() / 1_000_000));
            Checkpoint::decode(bytes)
                .expect("checkpoint decodes")
                .write(&path)
                .expect("checkpoint writes");
            let resumed = Run::resume(&path).expect("checkpoint resumes");
            assert_eq!(
                outcome_csv(&resumed),
                gold_csv,
                "{}: resume at {at:?} diverged",
                cc.name()
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
