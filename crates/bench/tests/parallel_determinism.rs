//! The tentpole guarantee: a campaign's output is a pure function of
//! `(experiment, quality)` — the `--jobs` worker count, the execution
//! order of the jobs, and whatever else ran in the process beforehand
//! must not change a single byte of the results.

use gr_bench::{experiments, Experiment, Quality, RunCtx};
use sim::SimDuration;

/// Small-but-real fidelity: two seeds so the median path is exercised,
/// short runs so the suite stays fast.
fn test_quality() -> Quality {
    Quality {
        seeds: vec![1, 2],
        duration: SimDuration::from_millis(300),
        samples: 2_000,
    }
}

fn csv_bytes(e: &Experiment, dir: &std::path::Path) -> Vec<u8> {
    std::fs::create_dir_all(dir).expect("create csv dir");
    e.write_csv(dir).expect("write csv");
    std::fs::read(dir.join(format!("{}.csv", e.id))).expect("read csv back")
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_csv_bytes() {
    let sequential = experiments::fig17::run(&RunCtx::sequential(test_quality()));
    let parallel = experiments::fig17::run(&RunCtx::with_jobs(test_quality(), 4));
    assert_eq!(sequential.rows, parallel.rows, "row values diverged");

    let base = std::env::temp_dir().join(format!("gr-bench-det-{}", std::process::id()));
    let a = csv_bytes(&sequential, &base.join("jobs1"));
    let b = csv_bytes(&parallel, &base.join("jobs4"));
    std::fs::remove_dir_all(&base).ok();
    assert_eq!(a, b, "CSV bytes differ between --jobs 1 and --jobs 4");
}

#[test]
fn multi_sweep_experiment_is_jobs_invariant() {
    // abl1 runs two labelled sweeps back to back — the case where
    // execution-order-derived seeds would alias or reorder.
    let sequential = experiments::abl01::run(&RunCtx::sequential(test_quality()));
    let parallel = experiments::abl01::run(&RunCtx::with_jobs(test_quality(), 4));
    assert_eq!(sequential.rows, parallel.rows);
}

#[test]
fn rng_streams_are_independent_of_surrounding_work() {
    // Each run's stream is keyed by (label, point, seed) — not by any
    // process-global RNG state — so running another experiment first
    // must not perturb the results.
    let alone = experiments::tab05::run(&RunCtx::sequential(test_quality()));

    let ctx = RunCtx::with_jobs(test_quality(), 2);
    let _other = experiments::abl01::run(&ctx);
    let after_other = experiments::tab05::run(&ctx);

    assert_eq!(alone.rows, after_other.rows, "cross-experiment RNG bleed");
}
