//! End-to-end tests for the conformance harness: whitelist semantics
//! under real greedy scenarios, and (behind `--features inject-nav-bug`)
//! the planted-fault drill proving the checker catches and the fuzzer
//! shrinks a genuine MAC bug.

use gr_bench::fuzz;
#[cfg(not(feature = "inject-nav-bug"))]
use greedy80211::Run;
use greedy80211::{GreedyConfig, NavInflationConfig, Scenario};
use sim::{RunKey, SimDuration};

/// Runs `scenario` once under the checker and returns its report.
#[cfg(not(feature = "inject-nav-bug"))]
fn check_run(scenario: &Scenario, job: conform::ConformJob) -> conform::ConformReport {
    {
        let rec = obs::ObsSpec {
            capacity: 0,
            probe_interval: None,
            filter: obs::Filter::all(),
        }
        .recorder();
        let _obs_guard = obs::ambient::install(rec);
        let _cf_guard = conform::ambient::install(job.clone());
        Run::plan(scenario).execute().expect("scenario runs");
    }
    let mut reports = job.drain();
    assert_eq!(reports.len(), 1, "exactly one checked run");
    reports.pop().unwrap().1
}

/// The drill scenario shared by the fault-injection tests: one
/// NAV-inflating greedy receiver, so NAV genuinely gates access beyond
/// physical carrier sense (in a fully-connected honest topology the two
/// coincide and ignoring NAV is unobservable).
fn nav_drill_scenario() -> Scenario {
    let mut scenario = Scenario {
        duration: SimDuration::from_millis(300),
        ..Scenario::default()
    };
    scenario.greedy.push((
        0,
        GreedyConfig::nav_inflation(NavInflationConfig::cts_only(32_000, 1.0)),
    ));
    scenario
}

/// A NAV-inflating greedy receiver passes conformance *only* because its
/// declared quirk whitelists the NAV rules for it; the identical run
/// with the whitelist removed must fail. This is the guarantee that the
/// checker genuinely observes the misbehavior rather than missing it.
#[cfg(not(feature = "inject-nav-bug"))]
#[test]
fn greedy_run_is_clean_only_via_the_whitelist() {
    let scenario = nav_drill_scenario();
    let honored = check_run(&scenario, conform::ConformJob::new(None));
    assert!(
        honored.is_clean(),
        "whitelisted greedy run must be clean; got: {}",
        honored.summary()
    );
    assert!(
        honored.whitelisted > 0,
        "the declared quirk never fired — the whitelist was not exercised"
    );

    let rearmed = check_run(
        &scenario,
        conform::ConformJob::new(None).without_whitelist(),
    );
    assert!(
        !rearmed.is_clean(),
        "with the whitelist removed the same run must violate"
    );
    let first = rearmed.first().expect("at least one violation");
    assert_eq!(first.rule, conform::RuleId::NavDurationBound);
    assert!(first.to_string().contains("nav-duration-bound"));
}

/// An honest run is clean with or without the whitelist — the whitelist
/// only ever exempts declared quirks, never masks real violations.
#[cfg(not(feature = "inject-nav-bug"))]
#[test]
fn honest_run_is_clean_without_any_whitelist() {
    let scenario = Scenario {
        duration: SimDuration::from_millis(300),
        ..Scenario::default()
    };
    let report = check_run(
        &scenario,
        conform::ConformJob::new(None).without_whitelist(),
    );
    assert!(
        report.is_clean(),
        "honest run violated: {}",
        report.summary()
    );
    assert_eq!(report.whitelisted, 0);
    assert!(report.events_checked > 1000);
}

/// Fault-injection drill: with the planted MAC bug compiled in
/// (stations ignore their virtual carrier and transmit inside other
/// stations' NAV reservations), the checker must flag the run and the
/// fuzzer must shrink the violation to one 10 ms virtual-time bracket
/// blaming the MAC layer.
#[cfg(feature = "inject-nav-bug")]
#[test]
fn planted_nav_bug_is_caught_and_shrunk() {
    let case = fuzz::FuzzCase {
        key: RunKey::new("navbug", 0, 0),
        scenario: nav_drill_scenario(),
        desc: "planted NAV bug drill".into(),
    };
    let dir = std::env::temp_dir().join("gr-navbug-test");
    let v = fuzz::run_case(case, &dir).expect("case runs");
    assert!(!v.is_clean(), "planted NAV bug went undetected");
    let first = &v.violations[0];
    assert!(
        matches!(
            first.rule,
            conform::RuleId::NavNoTx | conform::RuleId::NavMonotone | conform::RuleId::DifsAccess
        ),
        "unexpected first rule: {first}"
    );
    let (lo, hi) = v.bracket_ms.expect("violation was shrunk");
    assert!(hi - lo <= 10, "bracket wider than 10 ms: [{lo}, {hi})");
    assert_eq!(v.layer, Some("mac"), "bug must be pinned to the MAC layer");
    // The intensity shrink runs too and must report the planted fault as
    // *attack-independent* — the `(0, 0]` sentinel: a MAC that ignores
    // NAV violates even with the greedy knob scaled to zero, because the
    // greedy receiver's distant placement leaves links where only
    // virtual carrier sense serializes access. This is the shrink
    // distinguishing "bug in the attack" (a genuine bracket, exercised
    // by `fuzz::tests::violating_greedy_case_shrinks_to_an_intensity_bracket`)
    // from "bug in the MAC".
    let (ilo, ihi) = v
        .intensity_bracket
        .expect("greedy case gets an intensity bracket");
    assert_eq!(
        (ilo, ihi),
        (0.0, 0.0),
        "planted MAC bug must be flagged attack-independent, got ({ilo}, {ihi}]"
    );
}

/// Guards against an accidental `--features inject-nav-bug` in a normal
/// build: without the feature the drill scenario is clean (the same run
/// that *must* violate when the bug is compiled in).
#[cfg(not(feature = "inject-nav-bug"))]
#[test]
fn nav_bug_drill_scenario_is_clean_without_injection() {
    let case = fuzz::FuzzCase {
        key: RunKey::new("navbug", 0, 0),
        scenario: nav_drill_scenario(),
        desc: "planted NAV bug drill".into(),
    };
    let dir = std::env::temp_dir().join("gr-navbug-test");
    let v = fuzz::run_case(case, &dir).expect("case runs");
    assert!(v.is_clean(), "violations: {:?}", v.violations);
}
